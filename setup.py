"""Setup shim for environments without the `wheel` package.

`pip install -e .` requires building a PEP 660 wheel; offline boxes that
lack the `wheel` distribution can instead run `python setup.py develop`.
All metadata lives in pyproject.toml.
"""
from setuptools import setup

setup()
