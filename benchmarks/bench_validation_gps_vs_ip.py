"""§2.2 validation — GPS coordinates dominate IP geolocation.

The paper issued identical controversial queries with the same GPS
coordinate from 50 PlanetLab machines and observed 94% of the search
results identical.  This bench reruns that experiment (plus the no-GPS
control) against the simulated engine.
"""

from repro.core.validation import run_gps_validation
from repro.queries.controversial import controversial_queries

SEED = 20151028


def test_validation_gps_dominates_ip(benchmark, render_sink):
    result = benchmark.pedantic(
        lambda: run_gps_validation(
            SEED, queries=controversial_queries()[:10], machine_count=50
        ),
        rounds=1,
        iterations=1,
    )

    # Paper: "94% of the search results received by the machines are
    # identical".
    assert result.result_agreement.mean > 0.90
    assert result.pairwise_jaccard.mean > 0.95

    control = run_gps_validation(
        SEED, queries=controversial_queries()[:10], machine_count=50, gps=None
    )
    # Without the GPS fix the engine falls back to IP geolocation and
    # agreement drops — GPS is what the engine personalizes on.
    assert control.result_agreement.mean < result.result_agreement.mean - 0.05

    render_sink(
        "validation_gps_vs_ip",
        "Validation — 50 machines, identical queries\n"
        f"  same spoofed GPS: {result.result_agreement.mean:.1%} of results "
        "identical  (paper: ~94%)\n"
        f"  identical pages:  {result.identical_page_fraction:.1%}\n"
        f"  no GPS (IP only): {control.result_agreement.mean:.1%} of results "
        "identical\n"
        "conclusion: the engine personalizes on the provided GPS "
        "coordinates, not the client IP.",
    )
