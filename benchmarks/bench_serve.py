"""Serving benchmark: the gateway fleet under synthetic load.

Not a paper figure — this measures the operational subsystem
(`repro.serve`): wall-clock throughput and SERP-cache effectiveness
for a matrix of routing policies × cache sizes, driven by the seeded
Zipf/Poisson load generator over the 240-term corpus.

Method: every cell gets a fresh replica fleet (no rate-limiter or
queue state bleeds between cells).  Cached cells first replay the
request stream once at an earlier virtual time to warm the cache —
the measured pass then replays the *same* stream (same seed, same
query/client/GPS draws) later in the same virtual day, so entries
are warm and unexpired.  ``cache=0`` is the pass-through fidelity
mode the study crawl uses; the delta against it is what the cache
buys.

``SERVE_BENCH_REQUESTS`` scales the run (CI smoke uses a small value).
"""

from __future__ import annotations

import os

import pytest

from repro.engine.datacenters import DatacenterCluster
from repro.net.geoip import GeoIPDatabase
from repro.queries.corpus import build_corpus
from repro.serve import (
    ClientPopulation,
    Gateway,
    LoadGenerator,
    build_replicas,
    run_load,
)
from repro.web.world import WebWorld

SEED = 20151028
REQUESTS = int(os.environ.get("SERVE_BENCH_REQUESTS", "2000"))
CLIENTS = 150
RATE_PER_MINUTE = 40.0
CACHE_SIZES = (0, 4096)
POLICIES = ("round-robin", "least-outstanding", "geo-affinity")

#: Warm pass starts at virtual midnight; the measured pass replays the
#: identical stream at noon — same day, so nothing has expired, and far
#: enough ahead that warm-pass queue slots have drained.
MEASURE_START_MINUTES = 720.0


@pytest.fixture(scope="module")
def serving_world():
    world = WebWorld(SEED)
    cluster = DatacenterCluster()
    geoip = GeoIPDatabase()
    corpus = build_corpus()
    population = ClientPopulation.generate(SEED, CLIENTS, cluster, pin_frontend=True)
    population.register(geoip)
    return world, cluster, geoip, corpus, population


def _loadgen(corpus, population, *, start_minutes):
    return LoadGenerator(
        list(corpus),
        population,
        SEED,
        rate_per_minute=RATE_PER_MINUTE,
        start_minutes=start_minutes,
    )


def _measure(serving_world, policy, cache_size):
    world, cluster, geoip, corpus, population = serving_world
    replicas = build_replicas(world, cluster, geoip, corpus=corpus, seed=SEED)
    gateway = Gateway(replicas, geoip, policy=policy, cache_size=cache_size)
    if cache_size:
        run_load(gateway, _loadgen(corpus, population, start_minutes=0.0), REQUESTS)
    report = run_load(
        gateway,
        _loadgen(corpus, population, start_minutes=MEASURE_START_MINUTES),
        REQUESTS,
    )
    return report, gateway


def test_serve_matrix(serving_world, render_sink):
    rows = []
    throughput = {}
    for policy in POLICIES:
        for cache_size in CACHE_SIZES:
            report, gateway = _measure(serving_world, policy, cache_size)
            stats = gateway.stats
            # Measured-pass hit rate (the warm pass shares the stats
            # object, so isolate the second pass by construction).
            rows.append(
                f"{policy:<18} {cache_size:>6} {report.requests_per_second:>9,.0f} "
                f"{stats.hit_rate:>8.1%} {report.ok:>6} {report.rate_limited:>6} "
                f"{report.overloaded:>6} {stats.max_queue_depth:>6}"
            )
            throughput[(policy, cache_size)] = report.requests_per_second
            assert (
                report.ok
                + report.degraded
                + report.rate_limited
                + report.overloaded
                == REQUESTS
            )
            assert report.ok > 0.9 * REQUESTS

    header = (
        f"serve bench: {REQUESTS} requests/cell, {CLIENTS} clients, "
        f"rate {RATE_PER_MINUTE}/min, seed {SEED}\n"
        f"{'policy':<18} {'cache':>6} {'req/s':>9} {'hit-rate':>8} "
        f"{'ok':>6} {'429s':>6} {'503s':>6} {'depth':>6}"
    )
    lines = [header] + rows
    for policy in POLICIES:
        cached = throughput[(policy, max(CACHE_SIZES))]
        uncached = throughput[(policy, 0)]
        lines.append(
            f"warm cache speedup [{policy}]: {cached / uncached:.1f}x "
            f"({uncached:,.0f} -> {cached:,.0f} req/s)"
        )
    render_sink("bench_serve", "\n".join(lines))

    # The whole point of the cache: a warm fleet must measurably beat
    # the pass-through configuration under the same workload.
    for policy in POLICIES:
        assert throughput[(policy, max(CACHE_SIZES))] > 1.2 * throughput[(policy, 0)]


def test_warm_cache_hit_rate(serving_world):
    """Replaying a seeded stream inside one virtual day is ~all hits."""
    report, gateway = _measure(serving_world, "round-robin", max(CACHE_SIZES))
    stats = gateway.stats
    # Two identical passes: second-pass lookups are the back half.
    assert stats.cache_hits >= 0.9 * REQUESTS
    assert stats.cache_evictions == 0


def test_cache_zero_is_pure_passthrough(serving_world):
    report, gateway = _measure(serving_world, "round-robin", 0)
    assert gateway.stats.cache_lookups == 0
    assert gateway.stats.hit_rate == 0.0
    assert report.ok > 0
