"""Figure 8 — personalization consistency over 5 days.

Paper findings this bench checks:
* personalization is stable over time (flat per-day curves);
* at state/national granularity there is a wide gulf between the
  baseline's control (noise floor) and every other location;
* at county granularity some locations "cluster" near the baseline,
  receiving nearly identical results.
"""

from repro.core.consistency import ConsistencyAnalysis
from repro.stats.summaries import summarize


def test_fig8_consistency_over_time(benchmark, bench_dataset, bench_report, render_sink):
    series_by_granularity = benchmark(
        lambda: {
            granularity: bench_report.fig8_series(granularity)
            for granularity in ("county", "state", "national")
        }
    )

    lines = []
    for granularity in ("county", "state", "national"):
        series = series_by_granularity[granularity]
        assert len(series.days) == 5

        # Stability: day-to-day movement of the mean curve is small.
        analysis = ConsistencyAnalysis(bench_dataset)
        assert analysis.day_to_day_stability(granularity) < 2.5

        floor = summarize(series.noise_floor).mean
        means = series.location_means()

        if granularity in ("state", "national"):
            # "A wide gulf between the baseline and other locations."
            above = [m for m in means.values() if m > floor + 2.0]
            assert len(above) >= len(means) * 0.8, granularity

        lines.append(bench_report.render_fig8(granularity))
        lines.append("")

    # County-level clustering: SOME locations receive near-identical
    # results (pairwise, independent of the baseline draw).
    analysis = ConsistencyAnalysis(bench_dataset)
    groups = analysis.cluster_groups("county", margin=1.0)
    assert groups, "expected at least one county-level cluster"
    clustered_count = sum(len(group) for group in groups)
    total = len(bench_dataset.locations("county"))
    # ... and not all of them (otherwise there is nothing to explain).
    assert clustered_count < total

    lines.append(
        "county-level clusters (pairwise differences at the noise floor):\n"
        + "\n".join(
            "  {" + ", ".join(n.split("/")[-1] for n in group) + "}"
            for group in groups
        )
        + "\n(paper: 'some locations cluster at the county-level')"
    )
    render_sink("fig8_consistency", "\n".join(lines))
