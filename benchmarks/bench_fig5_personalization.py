"""Figure 5 — average personalization across query types/granularities.

Paper findings this bench checks:
* local queries are much more personalized than controversial and
  politician queries (which sit near the noise floor);
* Jaccard shows 18-34% of local results varying by location;
* after subtracting noise, 6-10 local URLs are reordered;
* personalization increases with distance, with the largest jump
  between county and state granularity.
"""

#: Paper Fig. 5 approximate local-query values per granularity.
PAPER_LOCAL = {
    "county": {"jaccard": 0.82, "edit": 6.0},
    "state": {"jaccard": 0.72, "edit": 9.5},
    "national": {"jaccard": 0.66, "edit": 10.5},
}


def test_fig5_personalization(benchmark, bench_report, render_sink):
    rows = benchmark(bench_report.fig5_rows)
    cells = {(r["category"], r["granularity"]): r for r in rows}

    # Local dominates the other categories at every granularity.
    for granularity in ("county", "state", "national"):
        local = cells[("local", granularity)]
        for category in ("controversial", "politician"):
            assert local["edit_mean"] > cells[(category, granularity)]["edit_mean"] + 2

    # Controversial/politician differences sit near their noise floors.
    for category in ("controversial", "politician"):
        for granularity in ("county", "state"):
            row = cells[(category, granularity)]
            assert row["edit_mean"] - row["noise_edit"] < 1.0

    # Monotone growth with distance; biggest jump county -> state.
    county = cells[("local", "county")]["edit_mean"]
    state = cells[("local", "state")]["edit_mean"]
    national = cells[("local", "national")]["edit_mean"]
    assert county < state < national
    assert (state - county) > (national - state)

    # 18-34% of local results vary by location (Jaccard 0.66-0.82).
    for granularity, expected in PAPER_LOCAL.items():
        row = cells[("local", granularity)]
        assert abs(row["jaccard_mean"] - expected["jaccard"]) < 0.15, granularity
        assert abs(row["edit_mean"] - expected["edit"]) < 3.0, granularity

    # Net reordering after noise subtraction: paper reports 6-10 URLs at
    # state/national scale.
    for granularity in ("state", "national"):
        row = cells[("local", granularity)]
        net = row["edit_mean"] - row["noise_edit"]
        assert 4.0 < net < 12.0

    lines = [bench_report.render_fig5(), "", "paper reference (local queries):"]
    for granularity, expected in PAPER_LOCAL.items():
        row = cells[("local", granularity)]
        lines.append(
            f"  {granularity:8s} paper J~{expected['jaccard']:.2f}/E~{expected['edit']:.1f}"
            f"   measured J{row['jaccard_mean']:.2f}/E{row['edit_mean']:.2f}"
        )
    render_sink("fig5_personalization", "\n".join(lines))
