"""Figure 3 — per-term noise for local queries across granularities.

Paper findings this bench checks:
* a divide between brand names (low noise, e.g. "Starbucks") and
  generic terms (high noise, e.g. "School");
* per-term noise roughly uniform across granularities.
"""

from repro.queries.corpus import build_corpus


def test_fig3_per_term_noise(benchmark, bench_report, render_sink):
    rows = benchmark(bench_report.fig3_rows)
    assert len(rows) == 33  # every local term

    corpus = build_corpus()
    by_term = {r["term"]: r for r in rows}

    brand_values = [
        r["national"] for r in rows if corpus.get(r["term"]).is_brand
    ]
    generic_values = [
        r["national"] for r in rows if not corpus.get(r["term"]).is_brand
    ]
    brand_mean = sum(brand_values) / len(brand_values)
    generic_mean = sum(generic_values) / len(generic_values)
    # Paper: "brand names like Starbucks tend to be less noisy than
    # generic terms like school".
    assert brand_mean < generic_mean - 0.5

    # Specific paper examples.
    assert by_term["Starbucks"]["national"] < by_term["School"]["national"]

    # Noise per term is location-independent (county vs national).
    for r in rows:
        assert abs(r["county"] - r["national"]) < 2.5, r["term"]

    lines = [bench_report.render_fig3(), ""]
    lines.append(
        f"brand mean noise {brand_mean:.2f} < generic mean noise "
        f"{generic_mean:.2f}  (paper: brands are less noisy)"
    )
    render_sink("fig3_noise_terms", "\n".join(lines))
