"""Figure 4 — noise attributed to Maps/News result types (local, county).

Paper findings this bench checks:
* Maps results are responsible for ~25% of local-query noise;
* News results cause almost zero local-query noise;
* the reverse holds for controversial queries (News 6-17%, Maps ~0).
"""

from repro.core.noise import NoiseAnalysis
from repro.core.parser import ResultType


def test_fig4_noise_by_result_type(benchmark, bench_dataset, bench_report, render_sink):
    rows = benchmark(bench_report.fig4_rows)
    assert len(rows) == 33

    total_all = sum(r["all"] for r in rows)
    total_maps = sum(r["maps"] for r in rows)
    total_news = sum(r["news"] for r in rows)

    maps_share = total_maps / total_all
    # Paper: "Maps results are responsible for around 25% of noise".
    assert 0.10 < maps_share < 0.45
    # Paper: "News results cause almost zero noise" for local queries.
    assert total_news / total_all < 0.02

    # Reverse composition for controversial queries: noise from News,
    # not Maps (paper §3.1 closing paragraph: 6-17% due to News).
    noise = NoiseAnalysis(bench_dataset)
    controversial = noise.cell("controversial", "county")
    assert controversial.type_share(ResultType.MAPS) == 0.0

    lines = [bench_report.render_fig4(), ""]
    lines.append(
        f"Maps share of local noise: {maps_share:.1%}  (paper: ~25%)\n"
        f"News share of local noise: {total_news / total_all:.1%}  (paper: ~0%)"
    )
    render_sink("fig4_noise_types", "\n".join(lines))
