"""Crawl-executor benchmark: worker-count sweep with parity proof.

Not a paper figure — this seeds the repo's perf trajectory.  Each cell
runs the same study config with a different number of crawl worker
processes; the sweep asserts every parallel dataset is byte-identical
to the sequential baseline and writes per-worker-count throughput to
``BENCH_crawl.json`` (machine-readable history for future perf PRs).

Run standalone for the full sweep::

    PYTHONPATH=src python benchmarks/bench_crawl.py --workers 1,2,4,8

or via pytest for the smoke tier (``CRAWL_BENCH_WORKERS`` /
``CRAWL_BENCH_SCALE`` scale it up)::

    PYTHONPATH=src python -m pytest benchmarks/bench_crawl.py -q
"""

from __future__ import annotations

import os
import sys
from pathlib import Path

from repro.parallel.bench import main, run_crawl_bench

WORKER_COUNTS = tuple(
    int(part)
    for part in os.environ.get("CRAWL_BENCH_WORKERS", "1,2").split(",")
    if part
)
SCALE = os.environ.get("CRAWL_BENCH_SCALE", "smoke")
OUT = Path(os.environ.get("CRAWL_BENCH_OUT", "BENCH_crawl.json"))


def test_crawl_worker_sweep(render_sink):
    """Sweep worker counts; parallel must stay byte-identical."""
    report = run_crawl_bench(worker_counts=WORKER_COUNTS, scale=SCALE, out=OUT)
    render_sink("bench_crawl", report.render())
    assert report.parity_ok, "parallel dataset differs from sequential baseline"
    assert all(cell.pages == report.cells[0].pages for cell in report.cells)
    # Injection-off overhead of the always-wired fault layer (calm
    # plan): must be recorded and byte-identical to the plain run.
    assert report.fault_layer is not None
    assert report.fault_layer["byte_identical_to_sequential"]
    # Tracing-off overhead of the always-wired obs layer: recorded, and
    # neither the disabled-tracer re-run nor the traced run may perturb
    # the dataset.
    assert report.obs_layer is not None
    assert report.obs_layer["byte_identical_to_sequential"]
    assert report.obs_layer["traced_byte_identical_to_sequential"]
    assert report.obs_layer["trace_spans"] > 0
    # Supervision overhead: the clean supervised run and the
    # kill-one-worker run must both merge back byte-identical, and the
    # injected kill must actually have been recovered from.
    assert report.supervise_layer is not None
    assert report.supervise_layer["byte_identical_to_sequential"]
    assert report.supervise_layer["kill_recover"]["byte_identical_to_sequential"]
    assert report.supervise_layer["kill_recover"]["recoveries"] >= 1


def test_crawl_worker_sweep_via_gateway(render_sink):
    """Same sweep with the serving gateway in the crawl path."""
    report = run_crawl_bench(
        worker_counts=WORKER_COUNTS, scale=SCALE, route_via_gateway=True
    )
    render_sink("bench_crawl_gateway", report.render())
    assert report.parity_ok, "gateway-path parallel dataset differs from sequential"


if __name__ == "__main__":
    sys.exit(main())
