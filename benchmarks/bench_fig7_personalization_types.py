"""Figure 7 — personalization decomposed by result type.

Paper findings this bench checks:
* for local queries, Maps explains only 18-27% of the differences —
  the vast majority of changes hit "typical" results;
* for controversial queries, 6-18% of the edit distance is attributable
  to News, and the fraction grows from county to nation;
* politicians show small totals everywhere.
"""


def test_fig7_type_decomposition(benchmark, bench_report, render_sink):
    rows = benchmark(bench_report.fig7_rows)
    cells = {(r["category"], r["granularity"]): r for r in rows}

    # Local: Maps share 18-27% (we accept 10-40%), Other dominates.
    for granularity in ("county", "state", "national"):
        row = cells[("local", granularity)]
        maps_share = row["maps"] / row["total"]
        assert 0.10 < maps_share < 0.40, (granularity, maps_share)
        assert row["other"] > row["maps"] + row["news"]

    # Controversial: News component grows with granularity.
    news_by_granularity = [
        cells[("controversial", g)]["news"] for g in ("county", "state", "national")
    ]
    assert news_by_granularity[-1] >= news_by_granularity[0]
    national_controversial = cells[("controversial", "national")]
    news_share = national_controversial["news"] / national_controversial["total"]
    assert 0.03 < news_share < 0.35

    # Politicians: small totals.
    for granularity in ("county", "state", "national"):
        assert cells[("politician", granularity)]["total"] < 3.0

    lines = [bench_report.render_fig7(), ""]
    local_national = cells[("local", "national")]
    lines.append(
        f"Maps share of local personalization (national): "
        f"{local_national['maps'] / local_national['total']:.1%}  (paper: 18-27%)\n"
        f"News share of controversial personalization (national): "
        f"{news_share:.1%}  (paper: 6-18%)"
    )
    render_sink("fig7_personalization_types", "\n".join(lines))
