"""Extension experiments (the paper's §5 future-work directions).

Three additional experiments the paper sketches but does not run:

* **cross-engine audit** — "our methodology can easily be extended to
  other search engines": the same probes against a second engine with
  its own ranking policy and markup dialect;
* **session carryover** — direct measurement of the 10-minute history
  personalization the 11-minute waits control for;
* **content analysis** — "additional content analysis on the search
  results": locality share, source diversity, and the advocacy-balance
  Filter-Bubble check.
"""

from repro.core.carryover import run_carryover_experiment
from repro.core.content import ContentAnalysis
from repro.core.crossengine import compare_engines
from repro.core.experiment import StudyConfig
from repro.queries.corpus import build_corpus
from repro.queries.model import QueryCategory

SEED = 20151028


def _cross_engine_config():
    corpus = build_corpus()
    local = corpus.by_category(QueryCategory.LOCAL)
    queries = (
        [q for q in local if not q.is_brand][:8]
        + [q for q in local if q.is_brand][:3]
        + corpus.by_category(QueryCategory.CONTROVERSIAL)[:5]
        + corpus.by_category(QueryCategory.POLITICIAN)[:5]
    )
    return StudyConfig.small(queries, seed=SEED, days=1, locations_per_granularity=6)


def test_cross_engine_audit(benchmark, render_sink):
    comparison = benchmark.pedantic(
        lambda: compare_engines(_cross_engine_config()), rounds=1, iterations=1
    )
    # Both engines personalize locally; strengths differ; pages overlap
    # partially (same web, different rankers).
    for audit in comparison.audits:
        assert audit.local_net_by_granularity["national"] > 1.0
    assert 0.4 < comparison.overlap.mean < 0.99
    assert comparison.rbo.mean < comparison.overlap.mean + 0.05
    render_sink("extension_cross_engine", comparison.render())


def test_session_carryover(benchmark, render_sink):
    result = benchmark.pedantic(
        lambda: run_carryover_experiment(
            SEED, waits_minutes=(1.0, 3.0, 5.0, 8.0, 9.5, 11.0, 15.0)
        ),
        rounds=1,
        iterations=1,
    )
    inside = [p for p in result.points if p.wait_minutes < 10]
    outside = [p for p in result.points if p.wait_minutes > 10]
    assert all(p.contaminated for p in inside)
    assert all(not p.contaminated for p in outside)
    assert result.cutoff_wait() == 11.0
    render_sink("extension_carryover", result.render())


def test_content_analysis(benchmark, bench_dataset, render_sink):
    analysis = ContentAnalysis(bench_dataset)
    locality = benchmark.pedantic(
        lambda: {
            category: analysis.locality_share(category)
            for category in ("local", "controversial", "politician")
        },
        rounds=1,
        iterations=1,
    )
    # Local queries surface the most locally scoped content; the
    # advocacy mix shows no geolocal slant (the Filter-Bubble null).
    assert locality["local"].mean > locality["controversial"].mean
    assert locality["local"].mean > locality["politician"].mean
    spread = analysis.advocacy_balance_spread("national")
    assert spread < 0.2

    lines = ["Content analysis (paper §5 future work)"]
    for category, stats in locality.items():
        entropy = analysis.source_entropy(category)
        lines.append(
            f"  {category:13s} locality share {stats.mean:.3f} ± {stats.std:.3f}   "
            f"source entropy {entropy.mean:.2f} bits"
        )
    lines.append("\nsource mix for local queries:")
    for source_type, share in analysis.source_mix("local").items():
        lines.append(f"  {source_type.value:14s} {share:.1%}")
    lines.append(
        f"\nadvocacy-balance spread across national locations: {spread:.3f} "
        "(0 = no geolocal slant — the Filter-Bubble null)"
    )
    render_sink("extension_content", "\n".join(lines))


def test_pagination_depth(benchmark, render_sink):
    """Personalization at deeper result pages (paper parses page 1 only)."""
    from repro.core.pagination import run_pagination_experiment

    result = benchmark.pedantic(
        lambda: run_pagination_experiment(SEED, pages=(0, 1), location_count=6),
        rounds=1,
        iterations=1,
    )
    first, second = result.cells
    # Deeper pages drain the local candidate pool: cross-location overlap
    # drops rather than recovering.
    assert second.jaccard.mean < first.jaccard.mean
    render_sink("extension_pagination", result.render())


def test_temporal_churn(benchmark, bench_dataset, render_sink):
    """Day-over-day churn: same location, consecutive days."""
    from repro.core.churn import ChurnAnalysis

    analysis = ChurnAnalysis(bench_dataset)
    cells = benchmark.pedantic(
        lambda: {
            category: analysis.cell(category, "national")
            for category in ("local", "controversial", "politician")
        },
        rounds=1,
        iterations=1,
    )
    # Local rankings are time-stable: churn ~ the same-time noise floor.
    residual = analysis.churn_vs_noise("local", "national")
    assert abs(residual) < 2.0
    # Controversial churn includes the rotating news pool.
    news_share = analysis.news_share("controversial", "national")
    assert 0.0 <= news_share <= 1.0

    lines = ["Day-over-day churn (same location, consecutive days)"]
    for category, cell in cells.items():
        lines.append(
            f"  {category:13s} edit {cell.edit.mean:5.2f}  "
            f"jaccard {cell.jaccard.mean:.3f}  news-part {cell.news_edit.mean:.2f}  "
            f"(n={cell.comparisons})"
        )
    lines.append(
        f"\nlocal churn minus same-time noise: {residual:+.2f} "
        "(≈0: rankings are time-stable, Fig. 8's flat lines)\n"
        f"news share of controversial churn: {news_share:.1%}"
    )
    render_sink("extension_churn", "\n".join(lines))


def test_rank_weighted_personalization(benchmark, bench_dataset, render_sink):
    """Fig. 5 re-measured with top-weighted rank metrics (RBO, tau)."""
    from repro.core.comparisons import iter_treatment_pairs
    from repro.core.rank_metrics import kendall_tau, rank_biased_overlap
    from repro.stats.summaries import summarize

    def measure():
        rows = {}
        for granularity in ("county", "state", "national"):
            rbo_values, tau_values = [], []
            for record_pair in _treatment_record_pairs(bench_dataset, granularity):
                a, b = record_pair
                rbo_values.append(rank_biased_overlap(a.urls, b.urls))
                tau_values.append(kendall_tau(a.urls, b.urls))
            rows[granularity] = (summarize(rbo_values), summarize(tau_values))
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    # The top-weighted view shows the same distance gradient.
    assert (
        rows["county"][0].mean > rows["state"][0].mean > rows["national"][0].mean
    )
    lines = ["Rank-weighted local personalization (top-weighted overlap)"]
    lines.append(f"{'granularity':12s} {'RBO':>8s} {'Kendall tau':>12s}")
    for granularity, (rbo, tau) in rows.items():
        lines.append(f"{granularity:12s} {rbo.mean:8.3f} {tau.mean:12.3f}")
    lines.append(
        "RBO drops with distance like Jaccard/edit — the gradient is not an "
        "artifact of unweighted metrics."
    )
    render_sink("extension_rank_weighted", "\n".join(lines))


def _treatment_record_pairs(dataset, granularity):
    import itertools

    grouped = {}
    for record in dataset.filter(category="local", granularity=granularity):
        if record.copy_index != 0:
            continue
        grouped.setdefault((record.query, record.day), []).append(record)
    for records in grouped.values():
        records.sort(key=lambda r: r.location_name)
        yield from itertools.combinations(records, 2)


def test_multi_seed_replication(benchmark, render_sink):
    """The structural findings hold across independent synthetic worlds."""
    from repro.core.replication import replicate

    result = benchmark.pedantic(
        lambda: replicate([1001, 2002, 3003], locations_per_granularity=6),
        rounds=1,
        iterations=1,
    )
    assert result.gradient_fraction() == 1.0
    assert result.jump_fraction() >= 2 / 3
    for outcome in result.outcomes:
        assert outcome.local_net["national"] > 2.0
        assert outcome.politician_net_national < 2.0
    render_sink("extension_replication", result.render())


def test_positional_volatility(benchmark, bench_dataset, render_sink):
    """Where on the page personalization lands: top stable, bottom hot."""
    from repro.core.positions import PositionalAnalysis

    analysis = PositionalAnalysis(bench_dataset)
    profile = benchmark.pedantic(
        lambda: analysis.volatility_profile("local", "national"),
        rounds=1,
        iterations=1,
    )
    split = analysis.top_vs_bottom("local", "national", split=4)
    assert split["top"] < split["bottom"]

    suggestion_noise = analysis.suggestion_overlap("local", "county", noise=True)
    assert suggestion_noise.mean == 1.0  # suggestions carry zero noise
    suggestion_pers = analysis.suggestion_overlap("local", "national")
    assert suggestion_pers.mean < 1.0  # ... but are location-personalized

    lines = [analysis.render_profile("local", "national"), ""]
    lines.append(
        f"top-4 volatility {split['top']:.2f} vs below-fold {split['bottom']:.2f}\n"
        f"suggestion-strip overlap: noise {suggestion_noise.mean:.3f}, "
        f"national personalization {suggestion_pers.mean:.3f}"
    )
    render_sink("extension_positions", "\n".join(lines))
    assert len(profile) >= 10


def test_personalization_significance(benchmark, bench_dataset, render_sink):
    """Formal version of Fig. 5: personalization vs noise distributions."""
    from repro.core.personalization import PersonalizationAnalysis

    analysis = PersonalizationAnalysis(bench_dataset)
    results = benchmark.pedantic(
        lambda: {
            (category, granularity): analysis.significance(category, granularity)
            for category in ("local", "controversial", "politician")
            for granularity in ("county", "state", "national")
        },
        rounds=1,
        iterations=1,
    )
    # Local personalization is overwhelmingly significant everywhere.
    for granularity in ("county", "state", "national"):
        assert results[("local", granularity)].p_value < 1e-6
    # Controversial/politician at county scale: indistinguishable from
    # noise or only weakly different (the paper's "difficult to claim").
    lines = ["Mann-Whitney U: personalization vs noise (edit distances)"]
    for (category, granularity), r in results.items():
        ci = analysis.edit_confidence_interval(category, granularity, seed=1)
        lines.append(
            f"  {category:13s} {granularity:8s} z={r.z_score:+7.2f} "
            f"p={r.p_value:.2e}  mean edit {ci}"
        )
    render_sink("extension_significance", "\n".join(lines))
