"""Figure 2 — average noise across query types and granularities.

Paper findings this bench checks:
* local queries are much noisier than controversial and politician
  queries (composition and ordering);
* local queries have higher variance;
* noise is independent of location (uniform across granularities).
"""

from repro.core.report import CATEGORY_ORDER, GRANULARITY_ORDER

#: Paper Fig. 2 approximate values (read off the plot): edit-distance
#: noise per category, roughly constant across granularities.
PAPER_EDIT_NOISE = {"local": 2.2, "controversial": 0.4, "politician": 0.3}


def test_fig2_noise(benchmark, bench_report, render_sink):
    rows = benchmark(bench_report.fig2_rows)
    assert len(rows) == 9

    cells = {(r["category"], r["granularity"]): r for r in rows}

    # Local queries much noisier than the other categories everywhere.
    for granularity in GRANULARITY_ORDER:
        local = cells[("local", granularity)]
        for category in ("controversial", "politician"):
            other = cells[(category, granularity)]
            assert local["edit_mean"] > other["edit_mean"] + 0.5
            assert local["jaccard_mean"] < other["jaccard_mean"]
            # Higher variance for local queries too.
            assert local["edit_std"] > other["edit_std"]

    # Noise is uniform across granularities.
    for category in CATEGORY_ORDER:
        values = [cells[(category, g)]["edit_mean"] for g in GRANULARITY_ORDER]
        assert max(values) - min(values) < 1.5

    # Magnitudes in the paper's ballpark (shape, not exact numbers).
    for category, expected in PAPER_EDIT_NOISE.items():
        measured = cells[(category, "county")]["edit_mean"]
        assert abs(measured - expected) < max(1.5, expected), (category, measured)

    lines = [bench_report.render_fig2(), ""]
    lines.append("paper reference (edit-distance noise, all granularities):")
    for category, expected in PAPER_EDIT_NOISE.items():
        measured = cells[(category, "county")]["edit_mean"]
        lines.append(f"  {category:13s} paper ~{expected:.1f}   measured {measured:.2f}")
    render_sink("fig2_noise", "\n".join(lines))
