"""§3.2 demographics — no demographic feature explains result similarity.

The paper correlated 25 demographic features against pairwise
county-level result similarity and found nothing.  This bench reruns
that analysis on the benchmark dataset.
"""

from repro.core.demographics_analysis import DemographicsAnalysis
from repro.geo.demographics import DEMOGRAPHIC_FEATURES

SEED = 20151028


def test_demographics_null_result(benchmark, bench_dataset, bench_study, render_sink):
    analysis = DemographicsAnalysis(
        bench_dataset, bench_study.regions_by_name(), seed=SEED
    )
    correlations = benchmark.pedantic(
        lambda: analysis.all_feature_correlations(iterations=300),
        rounds=1,
        iterations=1,
    )
    assert len(correlations) == len(DEMOGRAPHIC_FEATURES)

    # No strong demographic correlate, and at most a couple of
    # chance-level significance hits across 25 features.
    assert all(abs(c.spearman_rho) < 0.6 for c in correlations)
    strongly_significant = [c for c in correlations if c.p_value < 0.01]
    assert len(strongly_significant) <= 4

    lines = ["Demographics — correlation with county-level result similarity"]
    lines.append(f"{'feature':30s} {'pearson':>8s} {'spearman':>9s} {'p':>6s}")
    for c in sorted(correlations, key=lambda c: c.p_value):
        lines.append(
            f"{c.feature:30s} {c.pearson_r:+8.3f} {c.spearman_rho:+9.3f} {c.p_value:6.3f}"
        )
    distance = analysis.distance_correlation(iterations=300)
    lines.append(
        f"{distance.feature:30s} {distance.pearson_r:+8.3f} "
        f"{distance.spearman_rho:+9.3f} {distance.p_value:6.3f}"
    )
    lines.append(
        f"\n{len(strongly_significant)}/25 features at p<0.01 — the paper's "
        "null finding: demographics do not drive location personalization.\n"
        "(substrate note: physical distance does correlate here because the "
        "simulated engine's\nlocal retrieval is spatial; the paper found no "
        "distance correlation either — see EXPERIMENTS.md)"
    )
    render_sink("demographics", "\n".join(lines))
