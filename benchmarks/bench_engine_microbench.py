"""Micro-benchmarks of the hot paths.

Not a paper figure — these track the throughput of the pieces the
full study leans on: serving a page, parsing a page, and comparing two
pages.  Useful when tuning the engine or the parser.
"""

import pytest

from repro.core.metrics import edit_distance, jaccard_index
from repro.core.parser import parse_serp_html
from repro.engine import DatacenterCluster, SearchEngine, SearchRequest
from repro.geo.coords import LatLon
from repro.net.geoip import GeoIPDatabase
from repro.net.ip import IPv4Address
from repro.queries.corpus import build_corpus
from repro.web.world import WebWorld

CLEVELAND = LatLon(41.4993, -81.6944)


@pytest.fixture(scope="module")
def engine():
    world = WebWorld(99)
    return SearchEngine(
        world, DatacenterCluster(), GeoIPDatabase(), corpus=build_corpus(), seed=99
    )


def _request(engine, nonce):
    return SearchRequest(
        query_text="School",
        client_ip=IPv4Address.parse("192.0.2.10"),
        frontend_ip=engine.cluster[0].frontend_ip,
        timestamp_minutes=10.0,
        gps=CLEVELAND,
        nonce=nonce,
    )


def test_engine_serves_pages(benchmark, engine):
    counter = iter(range(10**9))
    # Every iteration re-serves the same virtual instant; restoring the
    # limiter from a pristine snapshot keeps the per-IP rate limit (a
    # real behaviour, tested elsewhere) from tripping mid-benchmark.
    pristine = engine.ratelimiter.clone_state()

    def serve():
        engine.ratelimiter.restore(pristine)
        return engine.handle(_request(engine, next(counter)))

    response = benchmark(serve)
    assert response.ok


def test_parser_throughput(benchmark, engine):
    html = engine.handle(_request(engine, 1)).html
    parsed = benchmark(parse_serp_html, html)
    assert len(parsed.results) >= 12


def test_metrics_throughput(benchmark, engine):
    page_a = parse_serp_html(engine.handle(_request(engine, 1)).html).urls()
    page_b = parse_serp_html(engine.handle(_request(engine, 2)).html).urls()

    def compare():
        return jaccard_index(page_a, page_b), edit_distance(page_a, page_b)

    jaccard, edit = benchmark(compare)
    assert 0.0 <= jaccard <= 1.0
    assert edit >= 0
