"""Shared benchmark fixtures.

``bench_dataset`` is one medium-scale crawl reused by every figure
benchmark: all 33 local terms plus controversial/politician samples,
10 locations per granularity, 5 days, paired controls — big enough
that every figure's shape is stable, small enough to build in well
under a minute.

Every benchmark renders its figure into ``benchmarks/_rendered/`` so a
run leaves the full paper-vs-measured evidence on disk.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core.experiment import StudyConfig
from repro.core.report import StudyReport
from repro.core.runner import Study
from repro.queries.corpus import build_corpus
from repro.queries.model import QueryCategory

BENCH_SEED = 20151028

RENDER_DIR = Path(__file__).parent / "_rendered"


@pytest.fixture(scope="session")
def bench_config() -> StudyConfig:
    corpus = build_corpus()
    queries = (
        corpus.by_category(QueryCategory.LOCAL)
        + corpus.by_category(QueryCategory.CONTROVERSIAL)[:20]
        + corpus.by_category(QueryCategory.POLITICIAN)[:20]
    )
    return StudyConfig.small(
        queries, seed=BENCH_SEED, days=5, locations_per_granularity=10
    )


@pytest.fixture(scope="session")
def bench_study(bench_config) -> Study:
    return Study(bench_config)


@pytest.fixture(scope="session")
def bench_dataset(bench_study):
    return bench_study.run()


@pytest.fixture(scope="session")
def bench_report(bench_dataset) -> StudyReport:
    return StudyReport(bench_dataset)


@pytest.fixture(scope="session")
def render_sink():
    """Write a rendered figure to benchmarks/_rendered/<name>.txt."""
    RENDER_DIR.mkdir(exist_ok=True)

    def _write(name: str, text: str) -> None:
        (RENDER_DIR / f"{name}.txt").write_text(text + "\n", encoding="utf-8")
        print()  # keep -s output readable
        print(text)

    return _write
