"""Table 1 — example controversial search terms.

The paper's Table 1 lists 18 controversial terms verbatim; this bench
regenerates the table from the corpus and times corpus construction.
"""

from repro.queries.controversial import CONTROVERSIAL_TERMS, TABLE1_TERMS
from repro.queries.corpus import build_corpus
from repro.queries.model import QueryCategory


def test_table1_controversial_terms(benchmark, render_sink):
    corpus = benchmark(build_corpus)

    # Paper: 240 queries — 33 local, 87 controversial, 120 politicians.
    counts = corpus.counts()
    assert counts[QueryCategory.LOCAL] == 33
    assert counts[QueryCategory.CONTROVERSIAL] == 87
    assert counts[QueryCategory.POLITICIAN] == 120

    # Table 1's example terms appear verbatim in the corpus.
    controversial = {q.text for q in corpus.by_category(QueryCategory.CONTROVERSIAL)}
    for term in TABLE1_TERMS:
        assert term in controversial

    lines = ["Table 1 — example controversial search terms (verbatim)"]
    lines.extend(f"  {term}" for term in TABLE1_TERMS)
    lines.append(
        f"\n(corpus: {len(CONTROVERSIAL_TERMS)} controversial terms total, "
        f"{len(corpus)} queries overall)"
    )
    render_sink("table1", "\n".join(lines))
