"""Figure 6 — per-term personalization for local queries.

Paper findings this bench checks:
* personalization varies dramatically by query — at national scale the
  per-term spread covers several-to-most results on the page;
* generic terms ("School", "Post Office") are more personalized than
  brand names;
* the county -> state personalization jump is visible per term.
"""

from repro.queries.corpus import build_corpus


def test_fig6_per_term_personalization(benchmark, bench_report, render_sink):
    rows = benchmark(bench_report.fig6_rows)
    assert len(rows) == 33

    corpus = build_corpus()
    national = {r["term"]: r["national"] for r in rows}

    # Dramatic per-term variation (paper: "between 5 and 17").
    assert max(national.values()) - min(national.values()) > 6
    assert max(national.values()) > 10

    # Generic terms beat brands.
    brand_mean = sum(
        v for t, v in national.items() if corpus.get(t).is_brand
    ) / sum(1 for t in national if corpus.get(t).is_brand)
    generic_mean = sum(
        v for t, v in national.items() if not corpus.get(t).is_brand
    ) / sum(1 for t in national if not corpus.get(t).is_brand)
    assert generic_mean > brand_mean + 3

    # Specific paper examples sit on the right sides of the divide.
    assert national["School"] > national["Starbucks"]
    assert national["Post Office"] > national["Wendy's"]

    # County -> state jump per generic term.
    jumps = [
        r["state"] - r["county"]
        for r in rows
        if not corpus.get(r["term"]).is_brand
    ]
    assert sum(jumps) / len(jumps) > 1.0

    lines = [bench_report.render_fig6(), ""]
    lines.append(
        f"brand mean {brand_mean:.1f} vs generic mean {generic_mean:.1f} at national "
        "scale\n(paper: generics like 'school' exhibit higher personalization "
        "than brand names)"
    )
    render_sink("fig6_personalization_terms", "\n".join(lines))
