"""Ablations — why each design choice (engine + methodology) is there.

DESIGN.md §6 names five load-bearing choices; each ablation flips one
and shows the behaviour it was responsible for:

1. grid snapping        -> county-level result clustering (Fig. 8a)
2. Maps-card gating     -> the dominant local-noise component (Fig. 4)
3. A/B score jitter     -> the noise floor itself (Fig. 2)
4. GPS priority         -> the 94% validation result (§2.2)
5. datacenter pinning   -> the paper's noise control #2 (§2.2)
"""

import pytest

from repro.core.consistency import ConsistencyAnalysis
from repro.core.experiment import StudyConfig
from repro.core.noise import NoiseAnalysis
from repro.core.parser import ResultType
from repro.core.runner import Study
from repro.core.validation import run_gps_validation
from repro.queries.controversial import controversial_queries
from repro.queries.corpus import build_corpus

SEED = 1337


def _base_config(**calibration_overrides):
    corpus = build_corpus()
    queries = [
        corpus.get("School"),
        corpus.get("Coffee"),
        corpus.get("Hospital"),
        corpus.get("Bank"),
        corpus.get("Starbucks"),
        corpus.get("Gay Marriage"),
    ]
    config = StudyConfig.small(queries, seed=SEED, days=2, locations_per_granularity=8)
    if calibration_overrides:
        config = config.with_overrides(
            calibration=config.calibration.with_overrides(**calibration_overrides)
        )
    return config


@pytest.fixture(scope="module")
def baseline_dataset():
    return Study(_base_config()).run()


def test_ablation_grid_snapping(benchmark, baseline_dataset, render_sink):
    unsnapped = benchmark.pedantic(
        lambda: Study(_base_config(snap_to_grid=False)).run(), rounds=1, iterations=1
    )
    with_snap = ConsistencyAnalysis(baseline_dataset).cluster_groups("county", margin=1.0)
    without_snap = ConsistencyAnalysis(unsnapped).cluster_groups("county", margin=1.0)
    clustered_with = sum(map(len, with_snap))
    clustered_without = sum(map(len, without_snap))
    assert clustered_with >= clustered_without
    render_sink(
        "ablation_snapping",
        "Ablation 1 — grid snapping off\n"
        f"  county locations in noise-floor clusters: "
        f"{clustered_with} (snapping on) vs {clustered_without} (off)\n"
        "  snapping is the mechanism behind Fig. 8a's clusters.",
    )


def test_ablation_maps_gate(benchmark, baseline_dataset, render_sink):
    deterministic = benchmark.pedantic(
        lambda: Study(_base_config(maps_prob_generic=1.0)).run(), rounds=1, iterations=1
    )
    base_share = NoiseAnalysis(baseline_dataset).cell("local", "county").type_share(
        ResultType.MAPS
    )
    ablated_share = NoiseAnalysis(deterministic).cell("local", "county").type_share(
        ResultType.MAPS
    )
    assert ablated_share < base_share
    render_sink(
        "ablation_maps_gate",
        "Ablation 2 — Maps card always present (no per-request gate)\n"
        f"  Maps share of local noise: {base_share:.1%} (gated) -> "
        f"{ablated_share:.1%} (always on)\n"
        "  presence flicker, not content, is the dominant Maps noise.",
    )


def test_ablation_zero_jitter(benchmark, render_sink):
    quiet = benchmark.pedantic(
        lambda: Study(
            _base_config(
                ab_jitter_local=0.0,
                ab_jitter_national=0.0,
                maps_prob_generic=1.0,
                maps_prob_brand=0.0,
            )
        ).run(),
        rounds=1,
        iterations=1,
    )
    noise = NoiseAnalysis(quiet)
    for category in ("local", "controversial"):
        assert noise.cell(category, "county").edit.mean == 0.0
    render_sink(
        "ablation_zero_jitter",
        "Ablation 3 — A/B jitter zeroed (and card gates made deterministic)\n"
        "  treatment/control noise collapses to exactly 0 — the jitter IS the "
        "noise floor.",
    )


def test_ablation_gps_priority(benchmark, render_sink):
    with_gps = benchmark.pedantic(
        lambda: run_gps_validation(
            SEED, queries=controversial_queries()[:6], machine_count=25
        ),
        rounds=1,
        iterations=1,
    )
    ip_only = run_gps_validation(
        SEED, queries=controversial_queries()[:6], machine_count=25, gps=None
    )
    assert with_gps.result_agreement.mean > ip_only.result_agreement.mean
    render_sink(
        "ablation_gps_priority",
        "Ablation 4 — remove the GPS fix (engine falls back to IP)\n"
        f"  result agreement across 25 vantage points: "
        f"{with_gps.result_agreement.mean:.1%} (GPS) vs "
        f"{ip_only.result_agreement.mean:.1%} (IP fallback)\n"
        "  the engine personalizes on GPS when present — the paper's §2.2 "
        "validation.",
    )


def test_ablation_datacenter_pinning(benchmark, baseline_dataset, render_sink):
    unpinned = benchmark.pedantic(
        lambda: Study(_base_config().with_overrides(pin_datacenter=False)).run(),
        rounds=1,
        iterations=1,
    )
    pinned_noise = NoiseAnalysis(baseline_dataset).cell("local", "county").edit.mean
    unpinned_noise = NoiseAnalysis(unpinned).cell("local", "county").edit.mean
    assert unpinned_noise > pinned_noise
    render_sink(
        "ablation_dns_pinning",
        "Ablation 5 — DNS not pinned (requests rotate over datacenters)\n"
        f"  local noise floor: {pinned_noise:.2f} (pinned) -> "
        f"{unpinned_noise:.2f} (rotating)\n"
        "  index skew across datacenters inflates noise; the paper pins DNS "
        "to avoid it.",
    )
