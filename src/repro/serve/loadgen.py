"""Seeded load generation: synthetic users querying the gateway.

A :class:`ClientPopulation` models mobile searchers scattered across
the US: each client gets a CGNAT-range IP registered in the GeoIP
database, a home location jittered around a state centroid, a stable
DNS answer (which datacenter frontend its requests reach), and a flag
for whether its browser grants the Geolocation API.  A
:class:`LoadGenerator` then draws a Poisson request stream over the
query corpus with Zipf-distributed popularity — the skew that makes a
SERP cache earn its keep — entirely from derived seeds, so two runs
with one seed produce byte-identical request streams.

For fleet-scale runs, :class:`LazyClientPopulation` models the same
user space *without materialising it*: every client attribute is a
pure hash of ``(seed, index)`` computed on first touch, the GeoIP side
is a :class:`LazyClientGeoIP` view that derives homes on lookup, and
the load generator switches to an analytic Zipf sampler whose memory
is bounded by the distribution's head rather than the population — a
million-user id space costs the same as a hundred-user one.

:func:`run_load` is the measurement driver shared by the
``serve-bench`` CLI command and ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import bisect
import math
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.engine.datacenters import DatacenterCluster
from repro.engine.request import ResponseStatus, SearchRequest
from repro.geo.coords import LatLon
from repro.geo.usa import US_STATES
from repro.net.geoip import GeoIPDatabase
from repro.net.ip import IPv4Address
from repro.queries.model import Query
from repro.seeding import derive_rng, stable_hash, stable_unit
from repro.serve.gateway import Gateway
from repro.serve.stats import GatewayStats

__all__ = [
    "SyntheticClient",
    "ClientPopulation",
    "LazyClientPopulation",
    "LazyClientGeoIP",
    "ZipfSampler",
    "LoadGenerator",
    "LoadReport",
    "run_load",
]

#: Client IPs are carved out of 100.64.0.0/10 — the carrier-grade NAT
#: range real mobile traffic arrives from.
_CLIENT_IP_BASE = IPv4Address((100 << 24) | (64 << 16))

#: Addresses available in that /10 after the base (the population cap).
_CLIENT_IP_SPACE = (1 << 22) - 1


@dataclass(frozen=True)
class SyntheticClient:
    """One simulated searcher."""

    ip: IPv4Address
    home: LatLon
    uses_gps: bool
    frontend_ip: IPv4Address
    """The datacenter IP this client's cached DNS answer points at."""


class ClientPopulation:
    """A deterministic population of synthetic clients."""

    def __init__(self, clients: Sequence[SyntheticClient]):
        if not clients:
            raise ValueError("population needs at least one client")
        self.clients: List[SyntheticClient] = list(clients)

    @classmethod
    def generate(
        cls,
        seed: int,
        count: int,
        cluster: DatacenterCluster,
        *,
        gps_fraction: float = 0.8,
        pin_frontend: bool = False,
    ) -> "ClientPopulation":
        """Sample ``count`` clients spread over US state centroids.

        Args:
            gps_fraction: Share of clients whose browser grants the
                Geolocation API; the rest are located by GeoIP.
            pin_frontend: Give every client the first datacenter's
                frontend IP (one DNS answer — the paper's pinning),
                instead of a stable per-client answer.
        """
        rng = derive_rng(seed, "serve-clients", count)
        states = sorted(US_STATES)
        clients: List[SyntheticClient] = []
        for i in range(count):
            centroid = US_STATES[rng.choice(states)]
            home = LatLon(
                max(-90.0, min(90.0, centroid.lat + rng.uniform(-0.7, 0.7))),
                max(-180.0, min(180.0, centroid.lon + rng.uniform(-0.7, 0.7))),
            )
            frontend = (
                cluster[0] if pin_frontend else cluster[rng.randrange(len(cluster))]
            )
            clients.append(
                SyntheticClient(
                    ip=_CLIENT_IP_BASE + (i + 1),
                    home=home,
                    uses_gps=rng.random() < gps_fraction,
                    frontend_ip=frontend.frontend_ip,
                )
            )
        return cls(clients)

    def register(self, geoip: GeoIPDatabase) -> None:
        """Give every client IP a GeoIP entry at its home location."""
        for client in self.clients:
            geoip.add_host(client.ip, client.home)

    def __len__(self) -> int:
        return len(self.clients)

    def __iter__(self):
        return iter(self.clients)

    def __getitem__(self, index: int) -> SyntheticClient:
        return self.clients[index]


class LazyClientPopulation:
    """A million-user id space that is never materialised.

    Duck-type compatible with :class:`ClientPopulation` where the load
    generator needs it (``len``, indexing), but every client is a pure
    function of ``(seed, index)`` computed on touch via
    :func:`~repro.seeding.stable_hash` — no RNG sequence to replay, no
    per-client storage, and identical attributes whether client 999999
    is the first or the millionth one asked for.  Pair it with
    :class:`LazyClientGeoIP` so the GeoIP side stays lazy too.
    """

    #: Duck-type marker the load generator keys its lazy path on.
    lazy = True

    def __init__(
        self,
        seed: int,
        count: int,
        cluster: DatacenterCluster,
        *,
        gps_fraction: float = 0.8,
        pin_frontend: bool = False,
    ):
        if count < 1:
            raise ValueError("population needs at least one client")
        if count > _CLIENT_IP_SPACE:
            raise ValueError(
                f"population exceeds the CGNAT client range "
                f"({count} > {_CLIENT_IP_SPACE})"
            )
        self.seed = seed
        self.count = count
        self.cluster = cluster
        self.gps_fraction = gps_fraction
        self.pin_frontend = pin_frontend
        self._states = sorted(US_STATES)

    def client(self, index: int) -> SyntheticClient:
        """Derive client ``index`` — O(1), no stored state."""
        if not 0 <= index < self.count:
            raise IndexError(f"client index out of range: {index}")
        seed = self.seed
        name = self._states[
            stable_hash("lazy-client-state", seed, index) % len(self._states)
        ]
        centroid = US_STATES[name]
        home = LatLon(
            max(-90.0, min(90.0, centroid.lat
                           + 1.4 * stable_unit("lazy-client-lat", seed, index)
                           - 0.7)),
            max(-180.0, min(180.0, centroid.lon
                            + 1.4 * stable_unit("lazy-client-lon", seed, index)
                            - 0.7)),
        )
        frontend = (
            self.cluster[0]
            if self.pin_frontend
            else self.cluster[
                stable_hash("lazy-client-frontend", seed, index)
                % len(self.cluster)
            ]
        )
        return SyntheticClient(
            ip=_CLIENT_IP_BASE + (index + 1),
            home=home,
            uses_gps=stable_unit("lazy-client-gps", seed, index)
            < self.gps_fraction,
            frontend_ip=frontend.frontend_ip,
        )

    def geoip_view(self) -> "LazyClientGeoIP":
        """A GeoIP database that derives client homes on lookup."""
        return LazyClientGeoIP(self)

    def register(self, geoip: GeoIPDatabase) -> None:
        raise TypeError(
            "a lazy population is never registered host-by-host; "
            "use geoip_view() for an on-demand GeoIP database"
        )

    def __len__(self) -> int:
        return self.count

    def __getitem__(self, index: int) -> SyntheticClient:
        return self.client(index)


class LazyClientGeoIP(GeoIPDatabase):
    """GeoIP over a lazy population: homes derived at lookup time.

    Client-range addresses resolve to the derived home (bit-identical
    to what eager registration would have stored); anything else falls
    through to the normal host/subnet tables, so datacenter fleets can
    still be registered on top.
    """

    def __init__(self, population: LazyClientPopulation):
        super().__init__()
        self._population = population

    def lookup(self, ip: IPv4Address) -> Optional[LatLon]:
        index = ip.value - _CLIENT_IP_BASE.value - 1
        if 0 <= index < len(self._population):
            return self._population.client(index).home
        return super().lookup(ip)


class ZipfSampler:
    """Inverse-CDF Zipf over ranks ``0..n-1`` with O(head) memory.

    The first ``head`` ranks use exact cumulative weights (they carry
    nearly all the mass under search-like exponents); the tail mass is
    the Euler–Maclaurin midpoint approximation of ``sum(k^-s)``, and
    tail draws invert that integral in closed form.  Everything is a
    pure function of the uniform draw, so a lazy million-user sweep
    samples identically across runs without a million-entry table.
    """

    def __init__(self, n: int, exponent: float = 1.0, *, head: int = 4096):
        if n < 1:
            raise ValueError("sampler needs at least one rank")
        self.n = n
        self.exponent = exponent
        self.head = min(head, n)
        total = 0.0
        self._head_cdf: List[float] = []
        for rank in range(self.head):
            total += 1.0 / (rank + 1) ** exponent
            self._head_cdf.append(total)
        self._head_mass = total
        self._tail_mass = self._tail_integral(self.head + 0.5, n + 0.5)
        self.total_mass = self._head_mass + self._tail_mass

    def _tail_integral(self, lo: float, hi: float) -> float:
        """``∫ x^-s dx`` over ``[lo, hi]`` (midpoint bounds)."""
        if hi <= lo:
            return 0.0
        s = self.exponent
        if abs(s - 1.0) < 1e-12:
            return math.log(hi) - math.log(lo)
        return (hi ** (1.0 - s) - lo ** (1.0 - s)) / (1.0 - s)

    def sample(self, u: float) -> int:
        """The rank for a uniform draw ``u`` in ``[0, 1)``."""
        target = u * self.total_mass
        if target < self._head_mass or self.head == self.n:
            rank = bisect.bisect_left(self._head_cdf, target)
            return min(rank, self.head - 1)
        # Invert the tail integral from head+0.5 up to the target mass.
        remaining = target - self._head_mass
        s = self.exponent
        lo = self.head + 0.5
        if abs(s - 1.0) < 1e-12:
            x = math.exp(math.log(lo) + remaining)
        else:
            x = (lo ** (1.0 - s) + (1.0 - s) * remaining) ** (1.0 / (1.0 - s))
        rank = int(x - 0.5)
        return max(self.head, min(rank, self.n - 1))


class LoadGenerator:
    """A seeded Poisson request stream over a query corpus.

    Query popularity is Zipf over a seed-shuffled ranking of the
    corpus (exponent ``zipf_exponent``), client activity likewise —
    skew on both axes, as in real search logs.
    """

    def __init__(
        self,
        queries: Sequence[Query],
        population: ClientPopulation,
        seed: int,
        *,
        rate_per_minute: float = 30.0,
        zipf_exponent: float = 1.0,
        gps_jitter_degrees: float = 0.004,
        start_minutes: float = 0.0,
    ):
        if not queries:
            raise ValueError("load generator needs a non-empty corpus")
        if rate_per_minute <= 0:
            raise ValueError("rate must be positive")
        self.queries = list(queries)
        self.population = population
        self.seed = seed
        self.rate_per_minute = rate_per_minute
        self.gps_jitter_degrees = gps_jitter_degrees
        self.start_minutes = start_minutes

        rank_rng = derive_rng(seed, "serve-popularity")
        query_order = list(range(len(self.queries)))
        rank_rng.shuffle(query_order)
        self._query_cdf = _zipf_cdf(len(self.queries), zipf_exponent)
        self._query_by_rank = query_order
        if getattr(population, "lazy", False):
            # Lazy path: no million-entry shuffle or CDF.  Rank equals
            # client index — lazy client attributes are already
            # hash-random in the index, so no shuffle is needed to
            # decorrelate popularity from geography.
            self._client_sampler: Optional[ZipfSampler] = ZipfSampler(
                len(population), zipf_exponent
            )
            self._client_cdf: List[float] = []
            self._client_by_rank: List[int] = []
        else:
            self._client_sampler = None
            client_order = list(range(len(population)))
            rank_rng.shuffle(client_order)
            self._client_cdf = _zipf_cdf(len(population), zipf_exponent)
            self._client_by_rank = client_order

    def _pick_client_index(self, rng) -> int:
        if self._client_sampler is not None:
            return self._client_sampler.sample(rng.random())
        return _pick(self._client_by_rank, self._client_cdf, rng)

    def requests(self, count: int) -> Iterator[SearchRequest]:
        """Yield ``count`` requests with non-decreasing virtual times."""
        rng = derive_rng(self.seed, "serve-arrivals")
        now = self.start_minutes
        for i in range(count):
            query = self.queries[_pick(self._query_by_rank, self._query_cdf, rng)]
            client = self.population[self._pick_client_index(rng)]
            gps: Optional[LatLon] = None
            if client.uses_gps:
                gps = LatLon(
                    max(-90.0, min(90.0, client.home.lat
                                   + rng.uniform(-self.gps_jitter_degrees,
                                                 self.gps_jitter_degrees))),
                    max(-180.0, min(180.0, client.home.lon
                                    + rng.uniform(-self.gps_jitter_degrees,
                                                  self.gps_jitter_degrees))),
                )
            yield SearchRequest(
                query_text=query.text,
                client_ip=client.ip,
                frontend_ip=client.frontend_ip,
                timestamp_minutes=now,
                gps=gps,
                cookie_id=None,
                nonce=stable_hash("serve-loadgen-nonce", self.seed, i),
            )
            now += rng.expovariate(self.rate_per_minute)


def _zipf_cdf(n: int, exponent: float) -> List[float]:
    """Cumulative Zipf weights for ranks ``0..n-1``."""
    total = 0.0
    cdf: List[float] = []
    for rank in range(n):
        total += 1.0 / (rank + 1) ** exponent
        cdf.append(total)
    return cdf


def _pick(by_rank: List[int], cdf: List[float], rng) -> int:
    rank = bisect.bisect_left(cdf, rng.random() * cdf[-1])
    return by_rank[min(rank, len(by_rank) - 1)]


@dataclass
class LoadReport:
    """What one measured load run produced."""

    requests: int
    wall_seconds: float
    ok: int = 0
    degraded: int = 0
    """Stale-store answers served with the DEGRADED flag.  Counted
    apart from ``ok``: a degraded page is yesterday's bytes, and a
    summary that folds it into successes hides the fleet limping."""
    rate_limited: int = 0
    overloaded: int = 0
    stats: GatewayStats = field(default_factory=GatewayStats)

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def render(self) -> str:
        lines = [
            f"load run: {self.requests} requests in {self.wall_seconds:.2f}s wall "
            f"-> {self.requests_per_second:,.0f} req/s",
            f"  responses         ok={self.ok} degraded={self.degraded} "
            f"rate-limited={self.rate_limited} "
            f"overloaded={self.overloaded}",
            self.stats.render(),
        ]
        return "\n".join(lines)


def run_load(gateway: Gateway, loadgen: LoadGenerator, count: int) -> LoadReport:
    """Drive ``count`` generated requests through ``gateway``, timed.

    ``gateway`` is duck-typed: anything with ``submit`` and ``stats``
    works, including a :class:`~repro.serve.fleet.GatewayFleet`.
    """
    report = LoadReport(requests=count, wall_seconds=0.0, stats=gateway.stats)
    started = time.perf_counter()
    for request in loadgen.requests(count):
        result = gateway.submit(request)
        status = result.response.status
        if result.degraded:
            report.degraded += 1
        elif status is ResponseStatus.OK:
            report.ok += 1
        elif status is ResponseStatus.RATE_LIMITED:
            report.rate_limited += 1
        else:
            report.overloaded += 1
    report.wall_seconds = time.perf_counter() - started
    return report
