"""Seeded load generation: synthetic users querying the gateway.

A :class:`ClientPopulation` models mobile searchers scattered across
the US: each client gets a CGNAT-range IP registered in the GeoIP
database, a home location jittered around a state centroid, a stable
DNS answer (which datacenter frontend its requests reach), and a flag
for whether its browser grants the Geolocation API.  A
:class:`LoadGenerator` then draws a Poisson request stream over the
query corpus with Zipf-distributed popularity — the skew that makes a
SERP cache earn its keep — entirely from derived seeds, so two runs
with one seed produce byte-identical request streams.

:func:`run_load` is the measurement driver shared by the
``serve-bench`` CLI command and ``benchmarks/bench_serve.py``.
"""

from __future__ import annotations

import bisect
import time
from dataclasses import dataclass, field
from typing import Iterator, List, Optional, Sequence

from repro.engine.datacenters import DatacenterCluster
from repro.engine.request import ResponseStatus, SearchRequest
from repro.geo.coords import LatLon
from repro.geo.usa import US_STATES
from repro.net.geoip import GeoIPDatabase
from repro.net.ip import IPv4Address
from repro.queries.model import Query
from repro.seeding import derive_rng, stable_hash
from repro.serve.gateway import Gateway
from repro.serve.stats import GatewayStats

__all__ = ["SyntheticClient", "ClientPopulation", "LoadGenerator", "LoadReport", "run_load"]

#: Client IPs are carved out of 100.64.0.0/10 — the carrier-grade NAT
#: range real mobile traffic arrives from.
_CLIENT_IP_BASE = IPv4Address((100 << 24) | (64 << 16))


@dataclass(frozen=True)
class SyntheticClient:
    """One simulated searcher."""

    ip: IPv4Address
    home: LatLon
    uses_gps: bool
    frontend_ip: IPv4Address
    """The datacenter IP this client's cached DNS answer points at."""


class ClientPopulation:
    """A deterministic population of synthetic clients."""

    def __init__(self, clients: Sequence[SyntheticClient]):
        if not clients:
            raise ValueError("population needs at least one client")
        self.clients: List[SyntheticClient] = list(clients)

    @classmethod
    def generate(
        cls,
        seed: int,
        count: int,
        cluster: DatacenterCluster,
        *,
        gps_fraction: float = 0.8,
        pin_frontend: bool = False,
    ) -> "ClientPopulation":
        """Sample ``count`` clients spread over US state centroids.

        Args:
            gps_fraction: Share of clients whose browser grants the
                Geolocation API; the rest are located by GeoIP.
            pin_frontend: Give every client the first datacenter's
                frontend IP (one DNS answer — the paper's pinning),
                instead of a stable per-client answer.
        """
        rng = derive_rng(seed, "serve-clients", count)
        states = sorted(US_STATES)
        clients: List[SyntheticClient] = []
        for i in range(count):
            centroid = US_STATES[rng.choice(states)]
            home = LatLon(
                max(-90.0, min(90.0, centroid.lat + rng.uniform(-0.7, 0.7))),
                max(-180.0, min(180.0, centroid.lon + rng.uniform(-0.7, 0.7))),
            )
            frontend = (
                cluster[0] if pin_frontend else cluster[rng.randrange(len(cluster))]
            )
            clients.append(
                SyntheticClient(
                    ip=_CLIENT_IP_BASE + (i + 1),
                    home=home,
                    uses_gps=rng.random() < gps_fraction,
                    frontend_ip=frontend.frontend_ip,
                )
            )
        return cls(clients)

    def register(self, geoip: GeoIPDatabase) -> None:
        """Give every client IP a GeoIP entry at its home location."""
        for client in self.clients:
            geoip.add_host(client.ip, client.home)

    def __len__(self) -> int:
        return len(self.clients)

    def __iter__(self):
        return iter(self.clients)

    def __getitem__(self, index: int) -> SyntheticClient:
        return self.clients[index]


class LoadGenerator:
    """A seeded Poisson request stream over a query corpus.

    Query popularity is Zipf over a seed-shuffled ranking of the
    corpus (exponent ``zipf_exponent``), client activity likewise —
    skew on both axes, as in real search logs.
    """

    def __init__(
        self,
        queries: Sequence[Query],
        population: ClientPopulation,
        seed: int,
        *,
        rate_per_minute: float = 30.0,
        zipf_exponent: float = 1.0,
        gps_jitter_degrees: float = 0.004,
        start_minutes: float = 0.0,
    ):
        if not queries:
            raise ValueError("load generator needs a non-empty corpus")
        if rate_per_minute <= 0:
            raise ValueError("rate must be positive")
        self.queries = list(queries)
        self.population = population
        self.seed = seed
        self.rate_per_minute = rate_per_minute
        self.gps_jitter_degrees = gps_jitter_degrees
        self.start_minutes = start_minutes

        rank_rng = derive_rng(seed, "serve-popularity")
        query_order = list(range(len(self.queries)))
        rank_rng.shuffle(query_order)
        self._query_cdf = _zipf_cdf(len(self.queries), zipf_exponent)
        self._query_by_rank = query_order
        client_order = list(range(len(population)))
        rank_rng.shuffle(client_order)
        self._client_cdf = _zipf_cdf(len(population), zipf_exponent)
        self._client_by_rank = client_order

    def requests(self, count: int) -> Iterator[SearchRequest]:
        """Yield ``count`` requests with non-decreasing virtual times."""
        rng = derive_rng(self.seed, "serve-arrivals")
        now = self.start_minutes
        for i in range(count):
            query = self.queries[_pick(self._query_by_rank, self._query_cdf, rng)]
            client = self.population[_pick(self._client_by_rank, self._client_cdf, rng)]
            gps: Optional[LatLon] = None
            if client.uses_gps:
                gps = LatLon(
                    max(-90.0, min(90.0, client.home.lat
                                   + rng.uniform(-self.gps_jitter_degrees,
                                                 self.gps_jitter_degrees))),
                    max(-180.0, min(180.0, client.home.lon
                                    + rng.uniform(-self.gps_jitter_degrees,
                                                  self.gps_jitter_degrees))),
                )
            yield SearchRequest(
                query_text=query.text,
                client_ip=client.ip,
                frontend_ip=client.frontend_ip,
                timestamp_minutes=now,
                gps=gps,
                cookie_id=None,
                nonce=stable_hash("serve-loadgen-nonce", self.seed, i),
            )
            now += rng.expovariate(self.rate_per_minute)


def _zipf_cdf(n: int, exponent: float) -> List[float]:
    """Cumulative Zipf weights for ranks ``0..n-1``."""
    total = 0.0
    cdf: List[float] = []
    for rank in range(n):
        total += 1.0 / (rank + 1) ** exponent
        cdf.append(total)
    return cdf


def _pick(by_rank: List[int], cdf: List[float], rng) -> int:
    rank = bisect.bisect_left(cdf, rng.random() * cdf[-1])
    return by_rank[min(rank, len(by_rank) - 1)]


@dataclass
class LoadReport:
    """What one measured load run produced."""

    requests: int
    wall_seconds: float
    ok: int = 0
    rate_limited: int = 0
    overloaded: int = 0
    stats: GatewayStats = field(default_factory=GatewayStats)

    @property
    def requests_per_second(self) -> float:
        return self.requests / self.wall_seconds if self.wall_seconds > 0 else 0.0

    def render(self) -> str:
        lines = [
            f"load run: {self.requests} requests in {self.wall_seconds:.2f}s wall "
            f"-> {self.requests_per_second:,.0f} req/s",
            f"  responses         ok={self.ok} rate-limited={self.rate_limited} "
            f"overloaded={self.overloaded}",
            self.stats.render(),
        ]
        return "\n".join(lines)


def run_load(gateway: Gateway, loadgen: LoadGenerator, count: int) -> LoadReport:
    """Drive ``count`` generated requests through ``gateway``, timed."""
    report = LoadReport(requests=count, wall_seconds=0.0, stats=gateway.stats)
    started = time.perf_counter()
    for request in loadgen.requests(count):
        result = gateway.submit(request)
        status = result.response.status
        if status is ResponseStatus.OK:
            report.ok += 1
        elif status is ResponseStatus.RATE_LIMITED:
            report.rate_limited += 1
        else:
            report.overloaded += 1
    report.wall_seconds = time.perf_counter() - started
    return report
