"""The gateway's SERP cache: LRU capacity + virtual-day TTL.

Cache key
---------
``(dialect, query slug, snapped grid cell, virtual day)`` — extended
with the result-page index and the datacenter identity, because both
change the served bytes (pagination windows; per-datacenter index
skew).  The grid cell comes from the *same* snapping the geo-ranker
applies before local retrieval, so the cache's sharing boundary is
exactly the engine's location-quantisation boundary: two users whose
GPS fixes land in one snap cell were always going to receive the same
local candidates.

Determinism
-----------
A hit must be bit-identical to what the engine would serve.  The engine
output additionally depends on per-request entropy (the nonce feeding
the A/B bucket and the Maps-card gate) and on the raw coordinates
echoed in the page footer — so the *gateway* canonicalises cacheable
requests (GPS snapped to the cell centre, nonce derived from the cache
key) before they reach a replica.  Hit or miss, every request mapping
to one key yields the same bytes; the cache only decides whether the
engine computes them again.

Expiry
------
Entries carry a virtual-clock deadline at the next day rollover:
day-keyed ranking inputs (news pools, day-gated cards) change at
midnight, so a SERP must not outlive the virtual day it was computed
in.  Expiry is lazy (checked on lookup) plus swept on insert, and LRU
eviction bounds capacity.

Stale store
-----------
Expired entries are *retired*, not discarded: the most recent page per
day-less key (query × cell × page × datacenter) moves into a bounded
stale store, which :meth:`SerpCache.get_stale` serves when the gateway
has no live replica to ask — degraded mode.  The day is deliberately
dropped from the stale key: a degraded lookup wants "the last good
page for this query here", whatever day it was computed on, and the
response is flagged ``degraded`` so nobody mistakes it for current.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Optional, Tuple

from repro.engine.request import SearchResponse
from repro.geo.coords import LatLon
from repro.serve.stats import GatewayStats
from repro.web.grid import GeoGrid

__all__ = ["CacheKey", "SerpCache", "MINUTES_PER_DAY"]

MINUTES_PER_DAY = 24 * 60

#: (dialect name, query slug, cell ix, cell iy, virtual day, page, datacenter)
CacheKey = Tuple[str, str, int, int, int, int, str]


class SerpCache:
    """A bounded, deterministic response cache over virtual time.

    Args:
        capacity: Maximum live entries; ``0`` disables the cache
            entirely (every lookup misses, nothing is stored).
        cell_miles: Edge length of the location-snapping cell — use the
            engine's ``snap_cell_miles`` so cache sharing matches the
            ranker's quantisation.
        stats: Counter sink (usually the gateway's
            :class:`~repro.serve.stats.GatewayStats`).
    """

    def __init__(
        self,
        capacity: int,
        *,
        cell_miles: float = 1.7,
        stats: Optional[GatewayStats] = None,
    ):
        if capacity < 0:
            raise ValueError(f"capacity must be non-negative, got {capacity}")
        self.capacity = capacity
        self.grid = GeoGrid(cell_miles)
        self.stats = stats if stats is not None else GatewayStats()
        self._entries: "OrderedDict[CacheKey, Tuple[SearchResponse, float]]" = (
            OrderedDict()
        )
        # Day-less key -> last expired response (LRU, bounded by
        # ``capacity``): the degraded-mode inventory.
        self._stale: "OrderedDict[Tuple, SearchResponse]" = OrderedDict()

    # -- keys -----------------------------------------------------------------

    def key_for(
        self,
        dialect_name: str,
        query_text: str,
        location: LatLon,
        day: int,
        *,
        page: int = 0,
        datacenter: str = "",
    ) -> CacheKey:
        """Build the cache key for one request's identity."""
        cell = self.grid.cell_of(location)
        slug = "-".join(query_text.strip().lower().split())
        return (dialect_name, slug, cell.ix, cell.iy, day, page, datacenter)

    def canonical_location(self, key: CacheKey) -> LatLon:
        """The snap-cell centre every request under ``key`` is served as."""
        from repro.web.grid import GridCell

        return self.grid.cell_center(GridCell(key[2], key[3]))

    # -- lookup / insert -------------------------------------------------------

    def get(self, key: CacheKey, now_minutes: float) -> Optional[SearchResponse]:
        """The live entry for ``key``, or ``None`` (counted as a miss)."""
        if self.capacity == 0:
            self.stats.cache_misses += 1
            return None
        entry = self._entries.get(key)
        if entry is not None:
            response, expires_at = entry
            if now_minutes >= expires_at:
                self._retire(key, response)
                del self._entries[key]
                self.stats.cache_expirations += 1
            else:
                self._entries.move_to_end(key)
                self.stats.cache_hits += 1
                return response
        self.stats.cache_misses += 1
        return None

    def put(self, key: CacheKey, response: SearchResponse, now_minutes: float) -> None:
        """Store ``response`` until ``key``'s virtual day rolls over."""
        if self.capacity == 0:
            return
        day = key[4]
        expires_at = (day + 1) * MINUTES_PER_DAY
        if now_minutes >= expires_at:
            return  # already stale: the request's own day has passed
        self._entries[key] = (response, expires_at)
        self._entries.move_to_end(key)
        self._sweep_expired(now_minutes)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.stats.cache_evictions += 1

    def _sweep_expired(self, now_minutes: float) -> None:
        stale = [
            key
            for key, (_, expires_at) in self._entries.items()
            if now_minutes >= expires_at
        ]
        for key in stale:
            self._retire(key, self._entries[key][0])
            del self._entries[key]
            self.stats.cache_expirations += 1

    # -- stale store (degraded mode) -------------------------------------------

    @staticmethod
    def _stale_key(key: CacheKey) -> Tuple:
        """``key`` minus its virtual day (index 4)."""
        return (key[0], key[1], key[2], key[3], key[5], key[6])

    def _retire(self, key: CacheKey, response: SearchResponse) -> None:
        """Move an expired entry into the bounded stale store."""
        stale_key = self._stale_key(key)
        self._stale[stale_key] = response
        self._stale.move_to_end(stale_key)
        while len(self._stale) > self.capacity:
            self._stale.popitem(last=False)

    def get_stale(self, key: CacheKey) -> Optional[SearchResponse]:
        """The last expired response matching ``key`` ignoring its day.

        Degraded-mode lookup: live entries never appear here (serve
        those via :meth:`get`), and ``None`` means this query/cell has
        never been cached — degradation has nothing to offer.
        """
        return self._stale.get(self._stale_key(key))

    # -- introspection ---------------------------------------------------------

    def peek(self, key: CacheKey, now_minutes: float) -> Optional[SearchResponse]:
        """The live entry for ``key`` without touching stats or LRU order.

        Anti-entropy backfill reads peer caches through this: copying
        inventory between shards is repair traffic, not serving
        traffic, so it must not inflate hit rates or refresh recency.
        Expired entries read as absent (retirement stays lazy).
        """
        if self.capacity == 0:
            return None
        entry = self._entries.get(key)
        if entry is None:
            return None
        response, expires_at = entry
        if now_minutes >= expires_at:
            return None
        return response

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._entries

    def keys(self):
        """Live keys in LRU order (oldest first)."""
        return list(self._entries.keys())

    def clear(self) -> None:
        self._entries.clear()
        self._stale.clear()
