"""The serve-chaos harness: hurt the fleet, audit the accounting.

The crawl side has ``repro chaos``: run under a fault plan, then prove
every injected fault is accounted for in the recovery ledger.  This is
the serving analogue over the virtual clock.  :class:`ServeChaos`
drives a seeded load stream through a :class:`~repro.serve.fleet.
GatewayFleet` whose :class:`~repro.faults.plan.FaultPlan` serve gates
crash shards, black out replicas, wipe and slow caches, and partition
the front tier — then checks the fleet's outcome partition:

    served fresh + served stale + shed + failed == offered

Nothing may vanish, nothing may double-count, no matter which faults
fired or how the degradation ladder rerouted around them.  The ledger
the harness returns is JSON-able (the CI artifact) and renders
human-readably; :meth:`ServeChaosReport.unaccounted` is the exit-code
signal the ``repro chaos-serve`` command gates on.

Determinism: the fault schedule keys on request nonces and the load
stream on the seed, so two runs of one configuration produce identical
ledgers — byte-for-byte — which the chaos tests pin.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.obs.telemetry import format_kv_rows
from repro.serve.fleet import GatewayFleet
from repro.serve.loadgen import LoadGenerator, LoadReport, run_load

__all__ = ["ServeChaos", "ServeChaosReport"]


@dataclass
class ServeChaosReport:
    """One chaos run's ledger: outcomes, ladder activity, injections."""

    offered: int
    served_fresh: int
    served_stale: int
    shed: int
    failed: int
    rerouted: int
    fleet_stale_served: int
    backfills: int
    backfilled_entries: int
    hot_promotions: int
    brownout_entries: int
    brownout_shed: int
    wall_seconds: float
    faults_injected: Dict[str, int] = field(default_factory=dict)
    shard_requests: Dict[str, int] = field(default_factory=dict)

    def unaccounted(self) -> int:
        """Offered requests missing from the outcome partition.

        Zero is the invariant; positive means requests vanished,
        negative means something double-counted.  Either is a bug.
        """
        return self.offered - (
            self.served_fresh + self.served_stale + self.shed + self.failed
        )

    def to_dict(self) -> dict:
        from dataclasses import asdict

        raw = asdict(self)
        raw["unaccounted"] = self.unaccounted()
        return raw

    def render(self) -> str:
        rows = [
            (
                "outcomes",
                f"fresh={self.served_fresh} "
                f"stale={self.served_stale} shed={self.shed} "
                f"failed={self.failed}",
            ),
            (
                "accounting",
                f"unaccounted={self.unaccounted()} "
                f"({'OK' if self.unaccounted() == 0 else 'VIOLATION'})",
            ),
            (
                "ladder",
                f"rerouted={self.rerouted} "
                f"fleet-stale={self.fleet_stale_served} "
                f"backfills={self.backfills} "
                f"backfilled-entries={self.backfilled_entries}",
            ),
            (
                "brownout",
                f"entries={self.brownout_entries} "
                f"shed={self.brownout_shed}",
            ),
        ]
        if self.faults_injected:
            kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.faults_injected.items())
            )
            rows.append(("faults injected", kinds))
        else:
            rows.append(("faults injected", "(none)"))
        if self.shard_requests:
            share = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.shard_requests.items())
            )
            rows.append(("per-shard", share))
        title = (
            f"serve-chaos ledger: {self.offered} offered in "
            f"{self.wall_seconds:.2f}s wall"
        )
        return "\n".join([title] + format_kv_rows(rows))


class ServeChaos:
    """Drive chaos load through a fleet and build the audit ledger."""

    def __init__(self, fleet: GatewayFleet, loadgen: LoadGenerator):
        self.fleet = fleet
        self.loadgen = loadgen

    def run(
        self, count: int, *, events: Optional[str] = None
    ) -> ServeChaosReport:
        """Serve ``count`` requests; return the accounting ledger.

        With ``events``, the fleet journals one wide event per request
        (``serve`` stream) plus its control transitions
        (``serve.control``) to that path — the log the telemetry plane
        queries.  The log id derives from (loadgen seed, count), so a
        repeated configuration writes identical bytes.
        """
        if events is None:
            load = run_load(self.fleet, self.loadgen, count)
            return self.report(load)
        from repro.obs.events import EventLog, EventRecorder, NULL_RECORDER
        from repro.obs.trace import format_id
        from repro.seeding import stable_hash

        log = EventLog(
            events,
            log_id=format_id(
                stable_hash("serve-events", self.loadgen.seed, count)
            ),
            meta={"seed": self.loadgen.seed, "count": count},
        )
        recorder = EventRecorder()
        recorder.attach(log)
        self.fleet.events = recorder
        try:
            load = run_load(self.fleet, self.loadgen, count)
        finally:
            self.fleet.events = NULL_RECORDER
            recorder.detach()
            log.close()
        return self.report(load)

    def report(self, load: LoadReport) -> ServeChaosReport:
        """Fold the fleet's counters into a ledger for one run."""
        stats = self.fleet.stats
        return ServeChaosReport(
            offered=stats.requests,
            served_fresh=stats.served_fresh,
            served_stale=stats.served_stale,
            shed=stats.shed,
            failed=stats.failed,
            rerouted=stats.rerouted,
            fleet_stale_served=stats.fleet_stale_served,
            backfills=stats.backfills,
            backfilled_entries=stats.backfilled_entries,
            hot_promotions=stats.hot_promotions,
            brownout_entries=stats.brownout_entries,
            brownout_shed=stats.brownout_shed,
            wall_seconds=load.wall_seconds,
            faults_injected=dict(stats.faults_injected),
            shard_requests=dict(stats.shard_requests),
        )
