"""The serve bench: fleet throughput sweep with a perf trajectory.

Mirrors the crawl bench's history mechanics (``repro.parallel.bench``):
each run appends one stamped entry to ``BENCH_serve.json`` in the
trajectory-v1 format — UTC timestamp plus git sha, last
:data:`~repro.parallel.bench.TRAJECTORY_KEEP` entries kept — via the
*shared* :func:`~repro.parallel.bench.write_trajectory_entry` helper,
and :func:`serve_regression_message` is the CI gate comparing the new
single-gateway throughput against the latest comparable entry.

The sweep itself builds a fresh :class:`~repro.serve.fleet.
GatewayFleet` per cell over one shared world (engines share a ranker,
so cell cost is serving state, not index construction), drives the
same lazy-population load stream through each, and records the outcome
partition — with ``degraded`` counted apart from ``ok``, never folded
into successes.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional, Sequence

from repro.serve.fleet import build_fleet
from repro.serve.loadgen import (
    LazyClientPopulation,
    LoadGenerator,
    run_load,
)

__all__ = [
    "ServeBenchCell",
    "ServeBenchReport",
    "run_serve_bench",
    "serve_regression_message",
    "load_trajectory",  # re-export: the serve gate reads the same format
]


def load_trajectory(path):
    """Entries of a trajectory file, oldest first (shared format)."""
    # Imported lazily: repro.parallel pulls in the crawl executor,
    # which imports the serve gateway — a cycle at module-import time.
    from repro.parallel.bench import load_trajectory as _load

    return _load(path)

DEFAULT_FLEET_SIZES: Sequence[int] = (1, 2)


@dataclass
class ServeBenchCell:
    """One measured (fleet size, replication) configuration."""

    gateways: int
    replication: int
    requests: int
    wall_seconds: float
    requests_per_second: float
    ok: int
    degraded: int
    rate_limited: int
    overloaded: int
    cache_hit_rate: float
    rerouted: int
    hot_promotions: int


@dataclass
class ServeBenchReport:
    """One sweep over fleet sizes; one trajectory entry when written."""

    benchmark: str = "serve"
    seed: int = 0
    clients: int = 0
    requests: int = 0
    rate_per_minute: float = 0.0
    routing: str = "round-robin"
    cache_size: int = 0
    replication: int = 1
    cells: List[ServeBenchCell] = field(default_factory=list)

    def to_dict(self) -> dict:
        return asdict(self)

    def write(self, path, *, keep: Optional[int] = None):
        """Append this report to the ``BENCH_serve.json`` trajectory.

        Same mechanics as the crawl bench (timestamp + git sha, last
        ``keep`` entries, default :data:`TRAJECTORY_KEEP`), through the
        shared helper.
        """
        from repro.parallel.bench import TRAJECTORY_KEEP, write_trajectory_entry

        return write_trajectory_entry(
            path,
            self.to_dict(),
            benchmark="serve",
            keep=TRAJECTORY_KEEP if keep is None else keep,
        )

    def render(self) -> str:
        lines = [
            f"serve bench: {self.requests} requests, {self.clients} "
            f"clients (lazy), rate={self.rate_per_minute}/min, "
            f"routing={self.routing}, cache={self.cache_size}, "
            f"R={self.replication}",
            f"{'gateways':>8} {'wall s':>8} {'req/s':>9} {'ok':>6} "
            f"{'degr':>5} {'rl':>5} {'shed':>5} {'hit-rate':>9} "
            f"{'reroute':>8}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.gateways:>8} {cell.wall_seconds:>8.2f} "
                f"{cell.requests_per_second:>9.1f} {cell.ok:>6} "
                f"{cell.degraded:>5} {cell.rate_limited:>5} "
                f"{cell.overloaded:>5} {cell.cache_hit_rate:>8.1%} "
                f"{cell.rerouted:>8}"
            )
        return "\n".join(lines)


def run_serve_bench(
    *,
    fleet_sizes: Sequence[int] = DEFAULT_FLEET_SIZES,
    replication: int = 2,
    requests: int = 2000,
    clients: int = 100_000,
    rate_per_minute: float = 40.0,
    routing: str = "round-robin",
    cache_size: int = 4096,
    queue_capacity: int = 32,
    seed: int = 0,
    out=None,
) -> ServeBenchReport:
    """Sweep fleet sizes over one load; append to the trajectory.

    The client population is lazy — ``clients`` can be a million
    without materialising anyone — and each cell gets a fresh fleet
    (fresh caches and queues) while the world, corpus, and ranking
    memos are shared across cells.
    """
    import time

    from repro.engine.datacenters import DatacenterCluster
    from repro.queries.corpus import build_corpus
    from repro.seeding import derive_seed
    from repro.web.world import WebWorld

    corpus = build_corpus()
    world = WebWorld(derive_seed(seed, "world"))
    cluster = DatacenterCluster()
    population = LazyClientPopulation(seed, clients, cluster)
    geoip = population.geoip_view()
    report = ServeBenchReport(
        seed=seed,
        clients=clients,
        requests=requests,
        rate_per_minute=rate_per_minute,
        routing=routing,
        cache_size=cache_size,
        replication=replication,
    )
    shared_ranker = None
    for size in fleet_sizes:
        fleet = build_fleet(
            world,
            cluster,
            geoip,
            count=size,
            corpus=corpus,
            seed=derive_seed(seed, "engine"),
            queue_capacity=queue_capacity,
            cache_size=cache_size,
            policy=routing,
            replication=replication,
            ranker=shared_ranker,
        )
        if shared_ranker is None:
            first = next(iter(fleet.shards.values()))
            shared_ranker = first.gateway.replicas[0].engine.ranker
        loadgen = LoadGenerator(
            list(corpus), population, seed, rate_per_minute=rate_per_minute
        )
        started = time.perf_counter()
        load = run_load(fleet, loadgen, requests)
        wall = time.perf_counter() - started
        shard_stats = [
            shard.gateway.stats for shard in fleet.shards.values()
        ]
        lookups = sum(s.cache_lookups for s in shard_stats)
        hits = sum(s.cache_hits for s in shard_stats)
        report.cells.append(
            ServeBenchCell(
                gateways=size,
                replication=min(replication, size),
                requests=requests,
                wall_seconds=wall,
                requests_per_second=requests / wall if wall > 0 else 0.0,
                ok=load.ok,
                degraded=load.degraded,
                rate_limited=load.rate_limited,
                overloaded=load.overloaded,
                cache_hit_rate=hits / lookups if lookups else 0.0,
                rerouted=fleet.stats.rerouted,
                hot_promotions=fleet.stats.hot_promotions,
            )
        )
    if out is not None:
        report.write(out)
    return report


def serve_regression_message(
    report: ServeBenchReport,
    history: Sequence[dict],
    *,
    threshold_pct: float,
) -> Optional[str]:
    """The serve-bench CI gate: None if within bounds, else a message.

    Compares the new single-gateway (``gateways == 1``) throughput
    against the most recent history entry with the same load shape.
    Pass the history loaded *before* this run appended its entry.  No
    comparable baseline passes — same contract as the crawl gate.
    """
    baseline = None
    for entry in reversed(list(history)):
        if (
            entry.get("seed") == report.seed
            and entry.get("clients") == report.clients
            and entry.get("requests") == report.requests
            and entry.get("rate_per_minute") == report.rate_per_minute
            and entry.get("routing") == report.routing
            and entry.get("cache_size") == report.cache_size
            and entry.get("replication") == report.replication
            and entry.get("cells")
        ):
            baseline = entry
            break
    if baseline is None:
        return None
    old_cell = next(
        (cell for cell in baseline["cells"] if cell.get("gateways") == 1),
        None,
    )
    new_cell = next(
        (cell for cell in report.cells if cell.gateways == 1), None
    )
    if old_cell is None or new_cell is None:
        return None
    old_rps = old_cell.get("requests_per_second")
    if not old_rps:
        return None
    new_rps = new_cell.requests_per_second
    if new_rps >= old_rps * (1.0 - threshold_pct / 100.0):
        return None
    return (
        f"PERF REGRESSION: gateways=1 throughput {new_rps:.1f} req/s is "
        f"{100.0 * (old_rps - new_rps) / old_rps:.1f}% below the committed "
        f"baseline {old_rps:.1f} req/s "
        f"(entry {baseline.get('git_sha') or '?'} at "
        f"{baseline.get('timestamp') or '?'}; threshold {threshold_pct:.0f}%)"
    )
