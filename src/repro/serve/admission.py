"""Admission control: bounded per-replica queues over virtual time.

Each replica serves one request at a time at a fixed virtual service
time (the paper's crawl budgeted ~6 wall seconds per query; the default
matches).  A bounded FIFO in front of it models the socket backlog:
requests that arrive while the replica is busy wait their turn, and
once ``capacity`` requests are in flight the queue exerts backpressure
— the gateway spills to the next replica in routing-preference order or
sheds the request outright.

The queue is a deque of *completion times*.  Because load sources
generate non-decreasing virtual arrival times, pruning completed work
from the front on every operation keeps each operation O(backlog).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

__all__ = ["QueueSlot", "ReplicaQueue", "DEFAULT_SERVICE_MINUTES"]

#: Virtual service time per request: ~6 seconds, the per-query budget
#: the paper's crawl schedule was engineered around.
DEFAULT_SERVICE_MINUTES = 0.1


@dataclass(frozen=True)
class QueueSlot:
    """The virtual timeline of one admitted request."""

    arrival_minutes: float
    start_minutes: float
    completion_minutes: float

    @property
    def wait_minutes(self) -> float:
        return self.start_minutes - self.arrival_minutes

    @property
    def latency_minutes(self) -> float:
        return self.completion_minutes - self.arrival_minutes


@dataclass
class ReplicaQueue:
    """A bounded single-server FIFO in virtual time."""

    capacity: int = 32
    service_minutes: float = DEFAULT_SERVICE_MINUTES
    _completions: Deque[float] = field(default_factory=deque, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError(f"queue capacity must be >= 1, got {self.capacity}")
        if self.service_minutes <= 0:
            raise ValueError("service time must be positive")

    def _prune(self, now_minutes: float) -> None:
        while self._completions and self._completions[0] <= now_minutes:
            self._completions.popleft()

    def depth(self, now_minutes: float) -> int:
        """Requests in flight (queued + serving) at ``now``."""
        self._prune(now_minutes)
        return len(self._completions)

    def projected_wait(self, now_minutes: float) -> float:
        """How long a request arriving now would queue before service."""
        self._prune(now_minutes)
        if not self._completions:
            return 0.0
        return self._completions[-1] - now_minutes

    def try_admit(self, now_minutes: float) -> Optional[QueueSlot]:
        """Admit one request, or ``None`` when the queue is full."""
        self._prune(now_minutes)
        if len(self._completions) >= self.capacity:
            return None
        start = self._completions[-1] if self._completions else now_minutes
        start = max(start, now_minutes)
        completion = start + self.service_minutes
        self._completions.append(completion)
        return QueueSlot(
            arrival_minutes=now_minutes,
            start_minutes=start,
            completion_minutes=completion,
        )

    # -- checkpointing -------------------------------------------------------

    def capture_state(self) -> dict:
        """JSON-able snapshot of the in-flight completion times."""
        return {"completions": list(self._completions)}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`capture_state`."""
        self._completions = deque(state["completions"])
