"""The production-style search-serving layer.

Everything the single-process crawl bypasses when it calls
``SearchEngine.handle()`` directly: a :class:`Gateway` fronting one
engine replica per datacenter, with pluggable routing policies
(round-robin / least-outstanding / geo-affinity), a deterministic SERP
cache (LRU + virtual-day TTL, keyed on the geo-ranker's snap cell),
bounded per-replica admission queues with retry and hedging, and a
seeded load generator for throughput measurement.

See ``docs/SERVING.md`` for the architecture and
``benchmarks/bench_serve.py`` for the numbers.
"""

from repro.serve.admission import DEFAULT_SERVICE_MINUTES, QueueSlot, ReplicaQueue
from repro.serve.bench import (
    ServeBenchCell,
    ServeBenchReport,
    run_serve_bench,
    serve_regression_message,
)
from repro.serve.cache import CacheKey, SerpCache
from repro.serve.chaos import ServeChaos, ServeChaosReport
from repro.serve.fleet import (
    BrownoutPolicy,
    FleetShard,
    GatewayFleet,
    HashRing,
    build_fleet,
    build_fleet_registry,
    shard_key_of,
)
from repro.serve.gateway import Gateway, GatewayResult, Replica, build_replicas
from repro.serve.loadgen import (
    ClientPopulation,
    LazyClientGeoIP,
    LazyClientPopulation,
    LoadGenerator,
    LoadReport,
    SyntheticClient,
    ZipfSampler,
    run_load,
)
from repro.serve.routing import (
    ROUTING_POLICIES,
    GeoAffinityPolicy,
    LeastOutstandingPolicy,
    RoundRobinPolicy,
    RoutingPolicy,
    make_policy,
)
from repro.serve.stats import FleetStats, GatewayStats, LatencyAccumulator

__all__ = [
    "DEFAULT_SERVICE_MINUTES",
    "QueueSlot",
    "ReplicaQueue",
    "CacheKey",
    "SerpCache",
    "Gateway",
    "GatewayResult",
    "Replica",
    "build_replicas",
    "BrownoutPolicy",
    "FleetShard",
    "GatewayFleet",
    "HashRing",
    "build_fleet",
    "build_fleet_registry",
    "shard_key_of",
    "ServeChaos",
    "ServeChaosReport",
    "ServeBenchCell",
    "ServeBenchReport",
    "run_serve_bench",
    "serve_regression_message",
    "ClientPopulation",
    "LazyClientGeoIP",
    "LazyClientPopulation",
    "LoadGenerator",
    "LoadReport",
    "SyntheticClient",
    "ZipfSampler",
    "run_load",
    "ROUTING_POLICIES",
    "GeoAffinityPolicy",
    "LeastOutstandingPolicy",
    "RoundRobinPolicy",
    "RoutingPolicy",
    "make_policy",
    "FleetStats",
    "GatewayStats",
    "LatencyAccumulator",
]
