"""Replica-selection policies for the serving gateway.

A policy orders the replica set by preference for one request; the
gateway dispatches to the first replica with queue room and spills down
the order under backpressure (the tail of the order also feeds request
hedging).  Three policies ship:

* **round-robin** — rotate through replicas regardless of state;
* **least-outstanding** — prefer the replica with the fewest in-flight
  requests (the classic load-balancer default);
* **geo-affinity** — prefer the replica whose datacenter is physically
  nearest the request's resolved location (serve Oregonians from The
  Dalles), falling back eastward down the distance order.

Policies only decide *where the computation runs*.  The ranking
identity a page depends on (the per-datacenter index skew) is keyed on
the DNS-resolved frontend IP the request carries — the paper's §2.2
control — so routing never changes served bytes; the parity test in
``tests/test_serve_gateway.py`` holds this line.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Dict, List, Sequence

from repro.geo.coords import LatLon, haversine_miles

if TYPE_CHECKING:  # pragma: no cover
    from repro.engine.request import SearchRequest
    from repro.serve.gateway import Replica

__all__ = [
    "RoutingPolicy",
    "RoundRobinPolicy",
    "LeastOutstandingPolicy",
    "GeoAffinityPolicy",
    "ROUTING_POLICIES",
    "make_policy",
]


class RoutingPolicy:
    """Base class: order replicas by preference for one request."""

    name = "abstract"

    def rank(
        self,
        replicas: Sequence["Replica"],
        request: "SearchRequest",
        location: LatLon,
        now_minutes: float,
    ) -> List["Replica"]:
        """Replicas in dispatch-preference order (best first)."""
        raise NotImplementedError

    def capture_state(self) -> dict:
        """JSON-able snapshot of per-instance state (most have none)."""
        return {}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`capture_state`."""


class RoundRobinPolicy(RoutingPolicy):
    """Rotate the starting replica one step per request."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def rank(self, replicas, request, location, now_minutes):
        start = self._next % len(replicas)
        self._next += 1
        return list(replicas[start:]) + list(replicas[:start])

    def capture_state(self) -> dict:
        return {"next": self._next}

    def restore_state(self, state: dict) -> None:
        self._next = state["next"]


class LeastOutstandingPolicy(RoutingPolicy):
    """Prefer the replica with the fewest in-flight requests."""

    name = "least-outstanding"

    def rank(self, replicas, request, location, now_minutes):
        return sorted(
            replicas,
            key=lambda replica: (replica.queue.depth(now_minutes), replica.name),
        )


class GeoAffinityPolicy(RoutingPolicy):
    """Prefer the replica whose datacenter is nearest the user."""

    name = "geo-affinity"

    def rank(self, replicas, request, location, now_minutes):
        return sorted(
            replicas,
            key=lambda replica: (
                haversine_miles(location, replica.datacenter.location),
                replica.name,
            ),
        )


#: Policy name → zero-argument factory (policies hold per-instance state).
ROUTING_POLICIES: Dict[str, Callable[[], RoutingPolicy]] = {
    RoundRobinPolicy.name: RoundRobinPolicy,
    LeastOutstandingPolicy.name: LeastOutstandingPolicy,
    GeoAffinityPolicy.name: GeoAffinityPolicy,
}


def make_policy(name: str) -> RoutingPolicy:
    """Instantiate a registered policy by name."""
    try:
        return ROUTING_POLICIES[name]()
    except KeyError:
        raise ValueError(
            f"unknown routing policy {name!r}; "
            f"known: {sorted(ROUTING_POLICIES)}"
        ) from None
