"""The serving gateway: replica routing, SERP cache, admission control.

Topology
--------
One :class:`Replica` per datacenter in the cluster, each wrapping its
own :class:`~repro.engine.frontend.SearchEngine` built over the *same*
synthetic web and engine seed — replicas are interchangeable compute,
exactly like frontends over a shared index.  The page a replica serves
is fully determined by the request (the per-datacenter index skew keys
on the DNS-resolved ``frontend_ip`` the request carries, not on which
replica executes it), so the choice of replica is purely a capacity
decision and every routing policy yields byte-identical datasets — the
property the parity test pins down.

Request path
------------
1. resolve a location (GPS fix → GeoIP → continental default) for
   routing and cache keying;
2. consult the SERP cache (when enabled): hits are served at the edge,
   misses *canonicalise* the request (GPS snapped to the cell centre,
   nonce derived from the cache key) so the computed bytes are
   deterministic per key — see :mod:`repro.serve.cache`;
3. admission control: dispatch to the first replica in routing
   preference order with queue room, spilling down the order under
   backpressure and shedding (``OVERLOADED``) when every queue is full;
   optionally hedge to a second replica when the projected queue wait
   crosses a threshold;
4. retry with escalating virtual-time backoff when a replica answers
   ``RATE_LIMITED``.

The gateway is duck-type compatible with
:class:`~repro.engine.frontend.SearchEngine` where the crawl plumbing
needs it (``.dialect`` and ``.handle()``), so
:class:`repro.core.browser.Network` can front either.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Union

from repro.engine.calibration import EngineCalibration
from repro.engine.datacenters import Datacenter, DatacenterCluster
from repro.engine.dialect import EngineDialect
from repro.engine.frontend import DEFAULT_LOCATION, SearchEngine
from repro.engine.request import ResponseStatus, SearchRequest, SearchResponse
from repro.faults.breaker import BreakerBoard
from repro.faults.retry import DEFAULT_RETRY_CAP_MINUTES, RetryPolicy
from repro.geo.coords import LatLon
from repro.net.geoip import GeoIPDatabase
from repro.obs.events import NULL_RECORDER
from repro.obs.trace import NULL_TRACER
from repro.queries.corpus import QueryCorpus
from repro.seeding import stable_hash
from repro.serve.admission import DEFAULT_SERVICE_MINUTES, ReplicaQueue
from repro.serve.cache import SerpCache
from repro.serve.routing import RoutingPolicy, make_policy
from repro.serve.stats import GatewayStats
from repro.web.world import WebWorld

__all__ = ["Replica", "GatewayResult", "Gateway", "build_replicas"]


@dataclass
class Replica:
    """One serving unit: a datacenter, its engine, and its queue."""

    datacenter: Datacenter
    engine: SearchEngine
    queue: ReplicaQueue

    @property
    def name(self) -> str:
        return self.datacenter.name


def build_replicas(
    world: WebWorld,
    cluster: DatacenterCluster,
    geoip: GeoIPDatabase,
    *,
    corpus: Optional[QueryCorpus] = None,
    calibration: Optional[EngineCalibration] = None,
    seed: int = 0,
    dialect: Optional[EngineDialect] = None,
    queue_capacity: int = 32,
    service_minutes: float = DEFAULT_SERVICE_MINUTES,
    ranker=None,
) -> List[Replica]:
    """One replica per datacenter, all over the same world and seed.

    Every replica's engine is constructed identically, so any of them
    serves any request with the same bytes; what replicas do *not*
    share is serving state (queues, per-replica rate limiters, session
    stores) — the operational surface the gateway manages.  Because
    scoring is a pure function of (world, calibration, seed), replicas
    *can* share one ranking memo layer: pass ``ranker`` to have every
    engine reuse it instead of warming a private copy per datacenter.
    """
    return [
        Replica(
            datacenter=datacenter,
            engine=SearchEngine(
                world,
                cluster,
                geoip,
                corpus=corpus,
                calibration=calibration,
                seed=seed,
                dialect=dialect,
                ranker=ranker,
            ),
            queue=ReplicaQueue(capacity=queue_capacity, service_minutes=service_minutes),
        )
        for datacenter in cluster
    ]


@dataclass(frozen=True)
class GatewayResult:
    """One request's outcome with its serving telemetry."""

    response: SearchResponse
    served_by: str
    """Replica name, or ``"cache"`` / ``"stale-cache"`` / ``"shed"``."""
    cache_hit: bool
    wait_minutes: float
    latency_minutes: float
    attempts: int
    hedged: bool
    degraded: bool = False
    """Served from the stale cache because no replica could take the
    request (the DEGRADED flag; also set on ``response.degraded``)."""


_OVERLOAD_HTML = (
    "<!DOCTYPE html>\n<html><body>"
    '<div id="overload"><h1>Server busy</h1>'
    "<p>Please retry your search shortly.</p></div>"
    "</body></html>\n"
)


class Gateway:
    """Routes, caches, and admission-controls search traffic.

    Args:
        replicas: The serving fleet (see :func:`build_replicas`).
        geoip: Database used to resolve GPS-less requests for routing
            and cache keying.
        policy: A :class:`~repro.serve.routing.RoutingPolicy` instance
            or registered policy name.
        cache_size: SERP-cache capacity; ``0`` disables caching *and*
            request canonicalisation — the byte-parity mode the study
            crawl uses.
        cell_miles: Cache-key snap cell (use the engine's
            ``snap_cell_miles``).
        max_retries: Re-dispatches after a ``RATE_LIMITED`` response.
        retry_backoff_minutes: Virtual backoff before the first retry
            (the base of the shared :class:`RetryPolicy` — capped
            exponential, no longer unbounded doubling).
        retry_policy: Full override of the retry schedule; when given,
            ``retry_backoff_minutes`` is ignored.
        hedge_after_minutes: Projected queue wait beyond which a
            duplicate request is dispatched to the next-preferred
            replica (``None`` disables hedging).
        breakers: Optional per-replica (per-datacenter) circuit
            breakers: replicas whose breaker is open are skipped in
            preference order, and replica outcomes feed the breaker
            state machine.  Off by default — breaker decisions depend
            on the full traffic stream, so they are a serving-path
            feature, not for parity-checked study crawls.
        serve_stale_when_down: Degraded mode — when admission finds no
            replica at all (every queue full or every breaker open), a
            cacheable request is answered from the *stale* SERP store
            (last expired page for the same query/cell/datacenter,
            ignoring the virtual day) with the ``DEGRADED`` flag set,
            instead of shedding.  Requires an enabled cache to have any
            inventory; session-carrying requests still shed.
    """

    def __init__(
        self,
        replicas: List[Replica],
        geoip: GeoIPDatabase,
        *,
        policy: Union[str, RoutingPolicy] = "round-robin",
        cache_size: int = 0,
        cell_miles: float = 1.7,
        max_retries: int = 2,
        retry_backoff_minutes: float = 1.5,
        retry_policy: Optional[RetryPolicy] = None,
        hedge_after_minutes: Optional[float] = None,
        stats: Optional[GatewayStats] = None,
        breakers: Optional[BreakerBoard] = None,
        serve_stale_when_down: bool = False,
    ):
        if not replicas:
            raise ValueError("a gateway needs at least one replica")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        self.replicas = list(replicas)
        self.geoip = geoip
        self.policy = make_policy(policy) if isinstance(policy, str) else policy
        self.stats = stats if stats is not None else GatewayStats()
        self.cache = SerpCache(cache_size, cell_miles=cell_miles, stats=self.stats)
        self.max_retries = max_retries
        self.retry_policy = retry_policy or RetryPolicy(
            base_minutes=retry_backoff_minutes,
            cap_minutes=max(DEFAULT_RETRY_CAP_MINUTES, retry_backoff_minutes),
        )
        self.hedge_after_minutes = hedge_after_minutes
        self.breakers = breakers
        self.serve_stale_when_down = serve_stale_when_down
        self.cluster = replicas[0].engine.cluster
        # Virtual instant until which every replica is unreachable (a
        # fleet-injected blackout); 0.0 = no blackout, the normal case.
        self._replicas_down_until = 0.0
        # Live serving traces only (the serve bench).  A parity-mode
        # study crawl leaves this disabled: per-shard gateway telemetry
        # is not canonical, so crawl traces reconstruct gateway spans
        # at merge time via repro.obs.replay instead.
        self.tracer = NULL_TRACER
        # Wide-event recorder for the bare-gateway ``gateway`` stream;
        # fleets leave this detached (the front tier emits instead).
        self.events = NULL_RECORDER

    # -- SearchEngine-compatible surface --------------------------------------

    @property
    def dialect(self) -> EngineDialect:
        return self.replicas[0].engine.dialect

    def handle(self, request: SearchRequest) -> SearchResponse:
        """Serve one request (the :class:`Network`-facing entry point)."""
        return self.submit(request).response

    # -- full gateway surface ----------------------------------------------------

    def submit(self, request: SearchRequest) -> GatewayResult:
        """Serve one request, returning response plus serving telemetry."""
        self.stats.requests += 1
        location = self._resolve_location(request)
        now = request.timestamp_minutes
        tracing = self.tracer.enabled
        if tracing:
            self.tracer.begin(
                "gateway.request", start=now, query=request.query_text
            )

        dispatch_request = request
        key = None
        if self.cache.capacity > 0:
            if request.cookie_id is not None:
                # Session state personalises the page; never cache it.
                self.stats.cache_bypasses += 1
                if tracing:
                    self.tracer.event("cache.bypass", at=now)
            else:
                key = self.cache.key_for(
                    self.dialect.name,
                    request.query_text,
                    location,
                    request.day,
                    page=request.page,
                    datacenter=self.cluster.by_ip(request.frontend_ip).name,
                )
                cached = self.cache.get(key, now)
                if cached is not None:
                    self.stats.queue_wait.record(0.0)
                    self.stats.total.record(0.0)
                    result = GatewayResult(
                        response=cached,
                        served_by="cache",
                        cache_hit=True,
                        wait_minutes=0.0,
                        latency_minutes=0.0,
                        attempts=0,
                        hedged=False,
                    )
                    if self.events.enabled:
                        self._emit_event(request, result)
                    if tracing:
                        self.tracer.event("cache.hit", at=now)
                        self.tracer.end(served_by="cache")
                    return result
                if tracing:
                    self.tracer.event("cache.miss", at=now)
                dispatch_request = replace(
                    request,
                    gps=self.cache.canonical_location(key),
                    nonce=stable_hash("serve-canonical-nonce", *key),
                )

        result = self._dispatch(dispatch_request, location, key)
        if key is not None and result.response.ok and not result.degraded:
            self.cache.put(key, result.response, now)
        if self.events.enabled:
            self._emit_event(request, result)
        if tracing:
            self.tracer.end(served_by=result.served_by, attempts=result.attempts)
        return result

    def _emit_event(self, request: SearchRequest, result: GatewayResult) -> None:
        """Write this request's ``gateway`` wide event."""
        if result.degraded:
            outcome = "served_stale"
        elif result.response.ok:
            outcome = "served_fresh"
        elif result.response.status is ResponseStatus.OVERLOADED:
            outcome = "shed"
        else:
            outcome = "failed"
        if result.cache_hit:
            cache = "hit"
        elif request.cookie_id is not None:
            cache = "bypass"
        elif result.degraded:
            cache = "stale"
        else:
            cache = "miss"
        extra = {}
        span = self.tracer.current_span_id()
        if span is not None:
            extra["span"] = span
        self.events.emit(
            "gateway",
            key=(request.nonce,),
            outcome=outcome,
            cache=cache,
            served_by=result.served_by,
            latency=round(result.latency_minutes, 6),
            wait=round(result.wait_minutes, 6),
            attempts=result.attempts,
            hedged=result.hedged,
            status=result.response.status.name,
            **request.wide_dims(),
            **extra,
        )

    # -- internals -----------------------------------------------------------------

    def _resolve_location(self, request: SearchRequest) -> LatLon:
        """GPS fix → GeoIP → continental default.

        Routing-grade resolution only: the engine re-resolves with full
        session semantics when it builds the page.
        """
        if request.gps is not None:
            return request.gps
        by_ip = self.geoip.lookup(request.client_ip)
        if by_ip is not None:
            return by_ip
        return DEFAULT_LOCATION

    def _dispatch(
        self,
        request: SearchRequest,
        location: LatLon,
        key=None,
    ) -> GatewayResult:
        """Admission control + routing + RATE_LIMITED retries."""
        arrival = request.timestamp_minutes
        attempt_request = request
        response: Optional[SearchResponse] = None
        served_by = "shed"
        wait = latency = 0.0
        hedged_any = False
        attempts = 0

        for attempt in range(self.max_retries + 1):
            attempts = attempt + 1
            now = attempt_request.timestamp_minutes
            if now < self._replicas_down_until:
                # Replica blackout: admission sees an empty fleet and
                # falls through to the stale/shed ladder below.
                preference = []
            else:
                preference = self.policy.rank(
                    self.replicas, attempt_request, location, now
                )
            if self.breakers is not None:
                # Replicas with an open breaker are skipped outright;
                # recovery happens inside allow(), which flips an open
                # breaker to half-open after its cooldown and admits
                # the probe requests that can close it again.
                preference = [
                    replica
                    for replica in preference
                    if self.breakers.allow(replica.name, now)
                ]
            chosen = slot = None
            for index, replica in enumerate(preference):
                admitted = replica.queue.try_admit(now)
                if admitted is not None:
                    chosen, slot = replica, admitted
                    break
            if chosen is None:
                if self.serve_stale_when_down and key is not None:
                    stale = self.cache.get_stale(key)
                    if stale is not None:
                        # Degraded mode: nothing can take the request
                        # (queues full and/or breakers open), but we
                        # hold a previously served page for this
                        # query/cell — better a flagged-stale SERP than
                        # an error page.
                        self.stats.degraded_served += 1
                        if self.tracer.enabled:
                            self.tracer.event("gateway.degraded", at=now)
                        return GatewayResult(
                            response=replace(stale, degraded=True),
                            served_by="stale-cache",
                            cache_hit=False,
                            wait_minutes=0.0,
                            latency_minutes=0.0,
                            attempts=attempts,
                            hedged=hedged_any,
                            degraded=True,
                        )
                self.stats.rejected += 1
                if self.tracer.enabled:
                    self.tracer.event("gateway.shed", at=now)
                return GatewayResult(
                    response=SearchResponse(
                        status=ResponseStatus.OVERLOADED, html=_OVERLOAD_HTML
                    ),
                    served_by="shed",
                    cache_hit=False,
                    wait_minutes=0.0,
                    latency_minutes=0.0,
                    attempts=attempts,
                    hedged=hedged_any,
                )

            hedged = self._maybe_hedge(preference, index, slot, now)
            if hedged is not None:
                hedged_any = True
                hedged_replica, hedged_slot = hedged
                if hedged_slot.completion_minutes < slot.completion_minutes:
                    chosen, slot = hedged_replica, hedged_slot

            self.stats.record_dispatch(chosen.name, chosen.queue.depth(now))
            if self.tracer.enabled:
                self.tracer.begin("gateway.queue", start=now)
                self.tracer.end(end=slot.start_minutes)
                self.tracer.begin(
                    "gateway.service", start=slot.start_minutes, replica=chosen.name
                )
                self.tracer.end(end=slot.completion_minutes)
            # The replica computes the page deterministically; a hedged
            # duplicate occupies capacity but the bytes are modelled once.
            response = chosen.engine.handle(attempt_request)
            served_by = chosen.name
            wait = slot.wait_minutes
            latency = slot.completion_minutes - arrival

            if response.status is not ResponseStatus.RATE_LIMITED:
                if self.breakers is not None:
                    self.breakers.record_success(chosen.name, now)
                break
            if self.breakers is not None:
                self.breakers.record_failure(chosen.name, now)
            self.stats.rate_limited += 1
            if attempt < self.max_retries:
                self.stats.retries += 1
                if self.tracer.enabled:
                    self.tracer.event("gateway.retry", at=now, replica=chosen.name)
                attempt_request = replace(
                    attempt_request,
                    timestamp_minutes=now
                    + self.retry_policy.delay_minutes(
                        attempt, "gateway", request.nonce
                    ),
                )

        assert response is not None
        self.stats.queue_wait.record(wait)
        self.stats.service.record(slot.completion_minutes - slot.start_minutes)
        self.stats.total.record(latency)
        return GatewayResult(
            response=response,
            served_by=served_by,
            cache_hit=False,
            wait_minutes=wait,
            latency_minutes=latency,
            attempts=attempts,
            hedged=hedged_any,
        )

    def _maybe_hedge(self, preference, chosen_index, slot, now):
        """Dispatch a duplicate to the next replica when the wait is long.

        Returns the ``(replica, slot)`` of the hedge, or ``None``.
        """
        if self.hedge_after_minutes is None:
            return None
        if slot.wait_minutes <= self.hedge_after_minutes:
            return None
        for replica in preference[chosen_index + 1 :]:
            hedged_slot = replica.queue.try_admit(now)
            if hedged_slot is not None:
                self.stats.hedges += 1
                if self.tracer.enabled:
                    self.tracer.event("gateway.hedge", at=now, replica=replica.name)
                return replica, hedged_slot
        return None

    # -- fleet levers ---------------------------------------------------------

    def blackout(self, until_minutes: float) -> None:
        """Mark every replica unreachable until the given virtual time.

        The cache keeps serving; misses walk the degraded ladder
        (stale store, then shed).  Overlapping blackouts extend rather
        than shorten each other.  Used by the serve-chaos injector.
        """
        self._replicas_down_until = max(self._replicas_down_until, until_minutes)

    @property
    def blackout_until(self) -> float:
        """Virtual instant the current replica blackout ends (0 = none)."""
        return self._replicas_down_until

    # -- health ---------------------------------------------------------------

    def replica_health(self, now_minutes: float) -> dict:
        """Per-replica health report, driven by the breaker board.

        Breaker state maps onto operational health: CLOSED replicas are
        ``healthy``, OPEN ones ``quarantined`` (skipped by routing until
        their cooldown), HALF_OPEN ones in ``probation`` (admitting
        probe traffic that can close the breaker).  Without breakers
        every replica reports healthy — there is nothing tracking
        failure.  Queue depth rides along as the load signal.
        """
        from repro.faults.breaker import BreakerState

        health_by_state = {
            BreakerState.CLOSED: "healthy",
            BreakerState.OPEN: "quarantined",
            BreakerState.HALF_OPEN: "probation",
        }
        report = {}
        for replica in self.replicas:
            state = (
                self.breakers.state_of(replica.name)
                if self.breakers is not None
                else BreakerState.CLOSED
            )
            report[replica.name] = {
                "health": health_by_state[state],
                "breaker": state.value,
                "queue_depth": replica.queue.depth(now_minutes),
            }
        return report

    # -- checkpointing -------------------------------------------------------

    def capture_state(self, now_minutes: float) -> dict:
        """JSON-able snapshot of all mutable serving state.

        Only parity mode (``cache_size=0``) is checkpointable: SERP
        cache entries are whole HTML pages, and a cached crawl is not
        byte-reproducible anyway.
        """
        if self.cache.capacity > 0:
            raise ValueError(
                "gateway state with an enabled SERP cache is not "
                "checkpointable; run with cache_size=0"
            )
        state = {
            "replicas": {
                replica.name: {
                    "engine": replica.engine.capture_state(now_minutes),
                    "queue": replica.queue.capture_state(),
                }
                for replica in self.replicas
            },
            "policy": self.policy.capture_state(),
            "stats": self.stats.capture_state(),
        }
        if self.breakers is not None:
            state["breakers"] = self.breakers.capture_state()
        return state

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`capture_state`."""
        for replica in self.replicas:
            snapshot = state["replicas"][replica.name]
            replica.engine.restore_state(snapshot["engine"])
            replica.queue.restore_state(snapshot["queue"])
        self.policy.restore_state(state["policy"])
        self.stats.restore_state(state["stats"])
        if self.breakers is not None and "breakers" in state:
            self.breakers.restore_state(state["breakers"])
