"""The gateway fleet: consistent-hash sharding that survives chaos.

One :class:`~repro.serve.gateway.Gateway` is a single point of failure
— the paper lost data every time one of its 245 vantage points died.
:class:`GatewayFleet` puts N gateway *shards* behind a consistent-hash
front tier so the SERP cache partitions by canonicalised
(query, grid-cell) key, each key replicated on R shards, and the fleet
keeps answering while individual shards are being hurt on purpose.

Sharding
--------
The ring hashes each shard name at ``vnodes`` points; a key's owners
are the first R distinct shards clockwise from the key's hash.  The
shard key is the cache key *minus its virtual day* — a query/cell pair
must not migrate between shards at midnight, or every day rollover
would cold-start the whole cache.  Virtue of consistent hashing:
adding or removing one shard remaps only the keys adjacent to its
vnodes (~1/N of the keyspace), which the remap-bound test pins.

Zipf head keys get special treatment: once a key's request count
crosses ``hot_key_threshold`` it is *promoted* — routed round-robin
across every live shard instead of its R owners, so each shard's cache
independently warms the head and no single owner melts under the most
popular queries.

Degradation ladder
------------------
Failover is deterministic and observable.  In order:

1. **reroute** — primary owner down/partitioned: walk the remaining
   owners (replica shards) in ring order;
2. **anti-entropy backfill** — a crashed shard rejoins with an empty
   cache and copies its owned (and hot) live entries back from peers;
3. **serve stale** — no replica behind a shard can take the request:
   the shard's day-less stale store answers with DEGRADED (the
   gateway-level rung), and when *every* owner of a key is dark the
   front tier scans live peers' stale stores (the fleet-level rung);
4. **brownout/shed** — a windowed SLO controller watches the bad-
   outcome fraction and, past threshold, deterministically sheds a
   fraction of traffic until the window recovers.

Every rung shows up as tracer events (``fleet.*``) and counters in
:class:`~repro.serve.stats.FleetStats`, whose four outcome counters
partition offered requests exactly — the accounting invariant the
chaos harness audits.

Faults are injected per request from the
:class:`~repro.faults.plan.FaultPlan` serve gates, keyed on the request
nonce and targeted at the key's primary owner — the schedule is a pure
function of (plan seed, offered stream), independent of fleet size or
shard interleaving.

Byte parity
-----------
With replication 1, hot promotion off, and no fault plan, each key
routes to exactly one shard whose gateway is configured like the
single-gateway path — so the response stream is byte-identical to one
:class:`Gateway` serving alone (replicas are interchangeable compute;
the cache canonicalises before they run).  The parity test pins this.
"""

from __future__ import annotations

import bisect
from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.engine.request import ResponseStatus, SearchResponse
from repro.faults.plan import FaultKind, FaultPlan
from repro.obs.events import NULL_RECORDER
from repro.obs.metrics import MetricsRegistry
from repro.obs.slo import is_bad_serve_outcome
from repro.obs.trace import NULL_TRACER
from repro.seeding import stable_hash, stable_unit
from repro.serve.admission import DEFAULT_SERVICE_MINUTES
from repro.serve.cache import CacheKey
from repro.serve.gateway import (
    Gateway,
    GatewayResult,
    _OVERLOAD_HTML,
    build_replicas,
)
from repro.serve.stats import FleetStats

__all__ = [
    "HashRing",
    "BrownoutPolicy",
    "FleetShard",
    "GatewayFleet",
    "build_fleet",
    "build_fleet_registry",
    "shard_key_of",
]

#: The day-less shard key: cache key minus index 4 (virtual day).
ShardKey = Tuple[str, str, int, int, int, str]


def shard_key_of(key: CacheKey) -> ShardKey:
    """The ring key for a cache key — stable across day rollovers."""
    return (key[0], key[1], key[2], key[3], key[5], key[6])


class HashRing:
    """Consistent hashing over shard names with virtual nodes.

    Each shard is hashed at ``vnodes`` ring positions via
    :func:`~repro.seeding.stable_hash`, so placement is deterministic
    across processes and runs.  ``owners`` walks clockwise from a key's
    hash collecting distinct shards — owner 1 is the primary, owners
    2..R the replicas.
    """

    def __init__(self, names: Sequence[str], *, vnodes: int = 64):
        if not names:
            raise ValueError("a hash ring needs at least one shard")
        if len(set(names)) != len(names):
            raise ValueError("shard names must be unique")
        if vnodes < 1:
            raise ValueError("vnodes must be positive")
        self.names = sorted(names)
        self.vnodes = vnodes
        self._points: List[Tuple[int, str]] = sorted(
            (stable_hash("ring", name, ordinal), name)
            for name in self.names
            for ordinal in range(vnodes)
        )

    @staticmethod
    def hash_key(parts: Sequence) -> int:
        """Position a shard key (or any hashable tuple) on the ring."""
        return stable_hash("ring-key", *parts)

    def owners(self, key_hash: int, count: int = 1) -> List[str]:
        """The first ``count`` distinct shards clockwise of ``key_hash``."""
        count = min(count, len(self.names))
        index = bisect.bisect_right(self._points, (key_hash, "￿"))
        owners: List[str] = []
        seen = set()
        points = self._points
        while len(owners) < count:
            point_name = points[index % len(points)][1]
            if point_name not in seen:
                seen.add(point_name)
                owners.append(point_name)
            index += 1
        return owners


@dataclass(frozen=True)
class BrownoutPolicy:
    """When and how hard the SLO controller sheds.

    The controller watches the fraction of *bad* outcomes (stale, shed,
    failed) over a sliding window of virtual time.  Past
    ``max_bad_fraction`` it enters brownout and sheds
    ``shed_fraction`` of incoming traffic (gated deterministically on
    the request nonce); it exits once the window fraction halves —
    hysteresis so the controller does not flap at the threshold.
    """

    window_minutes: float = 15.0
    max_bad_fraction: float = 0.5
    shed_fraction: float = 0.5
    min_window_requests: int = 25

    def __post_init__(self) -> None:
        if self.window_minutes <= 0:
            raise ValueError("window_minutes must be positive")
        if not 0.0 < self.max_bad_fraction <= 1.0:
            raise ValueError("max_bad_fraction must be in (0, 1]")
        if not 0.0 < self.shed_fraction <= 1.0:
            raise ValueError("shed_fraction must be in (0, 1]")
        if self.min_window_requests < 1:
            raise ValueError("min_window_requests must be positive")


@dataclass
class FleetShard:
    """One shard: a gateway plus the fleet's view of its health."""

    name: str
    gateway: Gateway
    down_until: float = 0.0
    """Virtual instant a gateway crash ends (0 = up)."""
    partitioned_until: float = 0.0
    """Virtual instant a front-tier partition heals (0 = routable)."""
    slow_until: float = 0.0
    """Virtual instant a slow-down ends (0 = full speed)."""
    needs_backfill: bool = False
    """Set when a crash emptied the cache; cleared after anti-entropy."""
    base_service_minutes: List[float] = field(default_factory=list)
    """Per-replica service times at build, restored after slow-downs."""

    def __post_init__(self) -> None:
        if not self.base_service_minutes:
            self.base_service_minutes = [
                replica.queue.service_minutes
                for replica in self.gateway.replicas
            ]

    def up(self, now: float) -> bool:
        """The shard process is alive (its cache can be read)."""
        return now >= self.down_until

    def reachable(self, now: float) -> bool:
        """The front tier can route a request to this shard."""
        return self.up(now) and now >= self.partitioned_until


class GatewayFleet:
    """N gateway shards behind a consistent-hash front tier.

    Args:
        gateways: One configured :class:`Gateway` per shard (use
            matching cache sizes; shards should enable
            ``serve_stale_when_down`` so the gateway-level stale rung
            exists).
        names: Shard names; default ``shard-00 .. shard-NN``.
        replication: Owners per key (R).  Clamped to the fleet size.
        vnodes: Ring positions per shard.
        hot_key_threshold: Request count at which a key is promoted to
            the hot set; ``None`` disables promotion (parity mode).
        hot_key_capacity: Most-recently-promoted keys kept hot.
        plan: Optional :class:`FaultPlan` whose serve gates inject
            shard faults per request.
        brownout: SLO controller configuration; ``None`` disables the
            brownout rung.
        stats: Counter sink (a fresh :class:`FleetStats` by default).
    """

    def __init__(
        self,
        gateways: Sequence[Gateway],
        *,
        names: Optional[Sequence[str]] = None,
        replication: int = 2,
        vnodes: int = 64,
        hot_key_threshold: Optional[int] = 48,
        hot_key_capacity: int = 256,
        plan: Optional[FaultPlan] = None,
        brownout: Optional[BrownoutPolicy] = None,
        stats: Optional[FleetStats] = None,
    ):
        if not gateways:
            raise ValueError("a fleet needs at least one gateway")
        if replication < 1:
            raise ValueError("replication must be positive")
        if hot_key_threshold is not None and hot_key_threshold < 1:
            raise ValueError("hot_key_threshold must be positive or None")
        if names is None:
            names = [f"shard-{index:02d}" for index in range(len(gateways))]
        if len(names) != len(gateways):
            raise ValueError("one name per gateway")
        self.replication = min(replication, len(gateways))
        self.hot_key_threshold = hot_key_threshold
        self.hot_key_capacity = hot_key_capacity
        self.plan = plan
        self.brownout = brownout
        self.stats = stats if stats is not None else FleetStats()
        self._shards: "OrderedDict[str, FleetShard]" = OrderedDict(
            (name, FleetShard(name=name, gateway=gateway))
            for name, gateway in sorted(
                zip(names, gateways), key=lambda pair: pair[0]
            )
        )
        self.ring = HashRing(list(self._shards), vnodes=vnodes)
        # Hot-key machinery: bounded access counts feeding a bounded
        # promoted set, plus a rotation cursor spreading hot traffic.
        self._access_counts: "OrderedDict[ShardKey, int]" = OrderedDict()
        self._hot: "OrderedDict[ShardKey, None]" = OrderedDict()
        self._hot_cursor = 0
        # Brownout controller state: (virtual time, was bad) samples.
        self._window: Deque[Tuple[float, bool]] = deque()
        self._window_bad = 0
        self._browned_out = False
        self._tracer = NULL_TRACER
        #: Wide-event recorder (``serve`` / ``serve.control`` streams);
        #: disabled until a log is attached.
        self.events = NULL_RECORDER

    # -- plumbing -------------------------------------------------------------

    @property
    def tracer(self):
        return self._tracer

    @tracer.setter
    def tracer(self, value) -> None:
        """Share one tracer with every shard gateway, so shard spans
        nest inside the fleet's request span."""
        self._tracer = value
        for shard in self._shards.values():
            shard.gateway.tracer = value

    @property
    def shards(self) -> Dict[str, FleetShard]:
        return dict(self._shards)

    @property
    def shard_names(self) -> List[str]:
        return list(self._shards)

    def shard_for(self, key: CacheKey) -> str:
        """The primary owner of a cache key (tests and introspection)."""
        return self.ring.owners(HashRing.hash_key(shard_key_of(key)), 1)[0]

    # -- request path ---------------------------------------------------------

    def submit(self, request) -> GatewayResult:
        """Serve one request through the fleet, walking the ladder."""
        now = request.timestamp_minutes
        self.stats.requests += 1
        tracing = self._tracer.enabled
        if tracing:
            self._tracer.begin(
                "fleet.request", start=now, query=request.query_text
            )
        self._advance(now, tracing)
        self._update_brownout(now, tracing)

        key, owners, hot = self._route(request)
        primary = owners[0]
        fault = (
            self._inject(request, primary, tracing)
            if self.plan is not None
            else None
        )

        if self._browned_out and self._sheds_in_brownout(request.nonce):
            self.stats.brownout_shed += 1
            if tracing:
                self._tracer.event("fleet.brownout.shed", at=now)
            return self._finish(
                self._overloaded_result(), "shed", "front-tier", now, tracing,
                request=request, rung="brownout-shed", fault=fault,
            )

        candidates = (
            self._hot_candidates() if hot else owners
        )
        # Walk the reachable candidates in order.  A shard-level shed
        # (queues full, replicas blacked out) or stale answer is not
        # final while another owner might serve fresh — reroute first,
        # degrade only when the walk runs out.  Anything else
        # (fresh page, rate-limited past retries, 5xx) is terminal.
        stale_fallback: Optional[Tuple[str, GatewayResult]] = None
        shed_fallback: Optional[Tuple[str, GatewayResult]] = None
        served: Optional[Tuple[str, GatewayResult]] = None
        first_tried: Optional[str] = None
        for name in candidates:
            shard = self._shards[name]
            if not shard.reachable(now):
                continue
            if first_tried is None:
                first_tried = name
            elif tracing:
                self._tracer.event("fleet.reroute", at=now, to=name)
            result = shard.gateway.submit(request)
            if result.degraded:
                if stale_fallback is None:
                    stale_fallback = (name, result)
                continue
            if result.response.status is ResponseStatus.OVERLOADED:
                shed_fallback = (name, result)
                continue
            served = (name, result)
            break

        if served is None and stale_fallback is not None:
            # The serve-stale rung: some owner held yesterday's page
            # even though nobody could compute a fresh one.
            served = stale_fallback
        if served is None and shed_fallback is not None:
            served = shed_fallback
        if served is not None:
            name, result = served
            if hot:
                self.stats.hot_requests += 1
            elif name != primary:
                self.stats.rerouted += 1
            outcome = self._classify(result)
            rung = "hot" if hot else ("reroute" if name != primary else "primary")
            return self._finish(
                result, outcome, name, now, tracing,
                request=request, rung=rung, fault=fault,
            )

        # Every candidate dark — the fleet-level stale rung: any live
        # peer may hold yesterday's page for this key.
        if key is not None:
            for name, shard in self._shards.items():
                if not shard.reachable(now):
                    continue
                stale = shard.gateway.cache.get_stale(key)
                if stale is None:
                    continue
                self.stats.fleet_stale_served += 1
                if tracing:
                    self._tracer.event("fleet.stale", at=now, shard=name)
                result = GatewayResult(
                    response=SearchResponse(
                        status=stale.status,
                        html=stale.html,
                        degraded=True,
                    ),
                    served_by=f"{name}:stale-fleet",
                    cache_hit=False,
                    wait_minutes=0.0,
                    latency_minutes=0.0,
                    attempts=0,
                    hedged=False,
                    degraded=True,
                )
                return self._finish(
                    result, "served_stale", name, now, tracing,
                    request=request, rung="fleet-stale", fault=fault,
                )
        if tracing:
            self._tracer.event("fleet.shed", at=now, reason="owners-dark")
        return self._finish(
            self._overloaded_result(), "shed", "front-tier", now, tracing,
            request=request, rung="owners-dark", fault=fault,
        )

    def handle(self, request) -> SearchResponse:
        """SearchEngine-compatible entry point (bytes only)."""
        return self.submit(request).response

    # -- routing --------------------------------------------------------------

    def _route(self, request) -> Tuple[Optional[CacheKey], List[str], bool]:
        """The request's cache key, owner order, and hot-set flag.

        Session-carrying requests are uncacheable; they pin to a shard
        by session hash so one shard sees one session's whole stream.
        """
        if request.cookie_id is not None:
            key_hash = stable_hash("fleet-session", request.cookie_id)
            return None, self.ring.owners(key_hash, self.replication), False
        keyer = next(iter(self._shards.values())).gateway
        location = keyer._resolve_location(request)
        key = keyer.cache.key_for(
            keyer.dialect.name,
            request.query_text,
            location,
            request.day,
            page=request.page,
            datacenter=keyer.cluster.by_ip(request.frontend_ip).name,
        )
        skey = shard_key_of(key)
        owners = self.ring.owners(HashRing.hash_key(skey), self.replication)
        return key, owners, self._note_access(skey, request.timestamp_minutes)

    def _note_access(self, skey: ShardKey, now: float) -> bool:
        """Count one access; promote past threshold.  True = hot."""
        if self.hot_key_threshold is None:
            return False
        if skey in self._hot:
            self._hot.move_to_end(skey)
            return True
        count = self._access_counts.get(skey, 0) + 1
        self._access_counts[skey] = count
        self._access_counts.move_to_end(skey)
        while len(self._access_counts) > 4 * self.hot_key_capacity:
            self._access_counts.popitem(last=False)
        if count >= self.hot_key_threshold:
            self._hot[skey] = None
            self._hot.move_to_end(skey)
            while len(self._hot) > self.hot_key_capacity:
                self._hot.popitem(last=False)
            del self._access_counts[skey]
            self.stats.hot_promotions += 1
            if self._tracer.enabled:
                self._tracer.event("fleet.hot-promote", at=now)
            return True
        return False

    def _hot_candidates(self) -> List[str]:
        """Every shard, rotated — hot keys spread across the fleet."""
        names = self.ring.names
        start = self._hot_cursor % len(names)
        self._hot_cursor += 1
        return names[start:] + names[:start]

    # -- fault injection ------------------------------------------------------

    def _inject(self, request, primary: str, tracing: bool) -> Optional[str]:
        """Fire this request's serve fault (if any) at the primary owner.

        Returns the fault kind value so the request's wide event can
        carry it."""
        kind = self.plan.serve_fault(request.nonce)
        if kind is None:
            return None
        shard = self._shards[primary]
        now = request.timestamp_minutes
        until = now + self.plan.serve_outage_duration(request.nonce, kind)
        if kind is FaultKind.GATEWAY_CRASH:
            # Process death: cache and stale store are gone with it.
            shard.down_until = max(shard.down_until, until)
            shard.gateway.cache.clear()
            shard.needs_backfill = True
        elif kind is FaultKind.REPLICA_BLACKOUT:
            shard.gateway.blackout(until)
        elif kind is FaultKind.CACHE_WIPE:
            shard.gateway.cache.clear()
        elif kind is FaultKind.SHARD_SLOWDOWN:
            self._apply_slowdown(shard, until)
        elif kind is FaultKind.FRONT_PARTITION:
            shard.partitioned_until = max(shard.partitioned_until, until)
        self.stats.faults_injected[kind.value] = (
            self.stats.faults_injected.get(kind.value, 0) + 1
        )
        if tracing:
            self._tracer.event(
                "fleet.fault",
                at=now,
                kind=kind.value,
                shard=shard.name,
                until=round(until, 3),
            )
        if self.events.enabled:
            self.events.emit(
                "serve.control",
                key=("fault", kind.value),
                control=f"fault.{kind.value}",
                ts=now,
                shard=shard.name,
                until=round(until, 3),
            )
        return kind.value

    def _apply_slowdown(self, shard: FleetShard, until: float) -> None:
        """Scale the shard's replica service times for the window.

        Idempotent: times are always set from the recorded base, so
        overlapping slow-downs extend the window without compounding.
        """
        factor = self.plan.slowdown_factor
        for replica, base in zip(
            shard.gateway.replicas, shard.base_service_minutes
        ):
            replica.queue.service_minutes = base * factor
        shard.slow_until = max(shard.slow_until, until)

    # -- healing --------------------------------------------------------------

    def _advance(self, now: float, tracing: bool) -> None:
        """Heal every outage whose window has elapsed.

        Crash recovery triggers the anti-entropy rung: the rejoined
        shard's empty cache is rebuilt from live peers before it takes
        traffic again.
        """
        for shard in self._shards.values():
            if shard.slow_until and now >= shard.slow_until:
                for replica, base in zip(
                    shard.gateway.replicas, shard.base_service_minutes
                ):
                    replica.queue.service_minutes = base
                shard.slow_until = 0.0
            if shard.down_until and now >= shard.down_until:
                shard.down_until = 0.0
                if shard.needs_backfill:
                    shard.needs_backfill = False
                    self._backfill(shard, now, tracing)
            if shard.partitioned_until and now >= shard.partitioned_until:
                shard.partitioned_until = 0.0

    def _backfill(self, shard: FleetShard, now: float, tracing: bool) -> None:
        """Anti-entropy: copy the shard's owned inventory from peers.

        Reads peers through :meth:`SerpCache.peek` (repair traffic must
        not count as serving traffic) and takes live entries the
        rejoined shard owns — plus hot keys, which belong everywhere.
        """
        cache = shard.gateway.cache
        copied = 0
        if cache.capacity > 0:
            for peer in self._shards.values():
                if peer is shard or not peer.up(now):
                    continue
                for full_key in peer.gateway.cache.keys():
                    if full_key in cache:
                        continue
                    skey = shard_key_of(full_key)
                    if skey not in self._hot and shard.name not in (
                        self.ring.owners(
                            HashRing.hash_key(skey), self.replication
                        )
                    ):
                        continue
                    response = peer.gateway.cache.peek(full_key, now)
                    if response is None:
                        continue
                    cache.put(full_key, response, now)
                    copied += 1
        self.stats.backfills += 1
        self.stats.backfilled_entries += copied
        if tracing:
            self._tracer.event(
                "fleet.backfill", at=now, shard=shard.name, entries=copied
            )
        if self.events.enabled:
            self.events.emit(
                "serve.control",
                key=("backfill", shard.name),
                control="backfill",
                ts=now,
                shard=shard.name,
                entries=copied,
            )

    # -- brownout (SLO controller) --------------------------------------------

    def _sheds_in_brownout(self, nonce: int) -> bool:
        return (
            stable_unit("fleet-brownout", nonce)
            < self.brownout.shed_fraction
        )

    def _update_brownout(self, now: float, tracing: bool) -> None:
        """Prune the window and flip the brownout state machine."""
        if self.brownout is None:
            return
        horizon = now - self.brownout.window_minutes
        window = self._window
        while window and window[0][0] < horizon:
            _, was_bad = window.popleft()
            if was_bad:
                self._window_bad -= 1
        total = len(window)
        fraction = self._window_bad / total if total else 0.0
        if (
            not self._browned_out
            and total >= self.brownout.min_window_requests
            and fraction >= self.brownout.max_bad_fraction
        ):
            self._browned_out = True
            self.stats.brownout_entries += 1
            if tracing:
                self._tracer.event(
                    "fleet.brownout.enter",
                    at=now,
                    bad_fraction=round(fraction, 4),
                )
            self._emit_brownout("brownout.enter", now, fraction, total)
        elif self._browned_out and fraction <= self.brownout.max_bad_fraction / 2:
            self._browned_out = False
            if tracing:
                self._tracer.event(
                    "fleet.brownout.exit",
                    at=now,
                    bad_fraction=round(fraction, 4),
                )
            self._emit_brownout("brownout.exit", now, fraction, total)

    def _emit_brownout(
        self, control: str, now: float, fraction: float, total: int
    ) -> None:
        """Journal one brownout transition with its exact window integers.

        The SLO engine replays the window from the serve events'
        ``counted`` marks and must land on these very (bad, total)
        numbers — the integers are the proof there is no second source
        of truth."""
        if not self.events.enabled:
            return
        self.events.emit(
            "serve.control",
            key=(control,),
            control=control,
            ts=now,
            bad_fraction=round(fraction, 4),
            window_bad=self._window_bad,
            window_total=total,
            window_minutes=self.brownout.window_minutes,
        )

    @property
    def browned_out(self) -> bool:
        return self._browned_out

    # -- bookkeeping ----------------------------------------------------------

    def _classify(self, result: GatewayResult) -> str:
        if result.degraded:
            return "served_stale"
        if result.response.ok:
            return "served_fresh"
        if result.response.status is ResponseStatus.OVERLOADED:
            return "shed"
        return "failed"

    def _finish(
        self,
        result: GatewayResult,
        outcome: str,
        shard_name: str,
        now: float,
        tracing: bool,
        *,
        request=None,
        rung: Optional[str] = None,
        fault: Optional[str] = None,
    ) -> GatewayResult:
        """One exit for every path: outcome partition, SLO window, span,
        and the request's wide event."""
        self.stats.record_outcome(outcome)
        self.stats.record_shard_outcome(shard_name, outcome)
        counted = False
        if self.brownout is not None:
            # Deliberate brownout sheds are excluded from the window —
            # feeding them back would latch the controller on.
            if outcome != "shed" or shard_name != "front-tier" or not self._browned_out:
                counted = True
                bad = is_bad_serve_outcome(outcome)
                self._window.append((now, bad))
                if bad:
                    self._window_bad += 1
        if self.events.enabled and request is not None:
            if result.cache_hit:
                cache = "hit"
            elif request.cookie_id is not None:
                cache = "bypass"
            elif result.degraded:
                cache = "stale"
            else:
                cache = "miss"
            extra = {}
            span = self._tracer.current_span_id()
            if span is not None:
                extra["span"] = span
            self.events.emit(
                "serve",
                key=(request.nonce,),
                shard=shard_name,
                outcome=outcome,
                rung=rung,
                cache=cache,
                served_by=result.served_by,
                latency=round(result.latency_minutes, 6),
                wait=round(result.wait_minutes, 6),
                attempts=result.attempts,
                hedged=result.hedged,
                status=result.response.status.name,
                fault=fault,
                brownout=self._browned_out,
                counted=counted,
                **request.wide_dims(),
                **extra,
            )
        if tracing:
            self._tracer.end(outcome=outcome, shard=shard_name)
        return result

    @staticmethod
    def _overloaded_result() -> GatewayResult:
        return GatewayResult(
            response=SearchResponse(
                status=ResponseStatus.OVERLOADED, html=_OVERLOAD_HTML
            ),
            served_by="shed",
            cache_hit=False,
            wait_minutes=0.0,
            latency_minutes=0.0,
            attempts=0,
            hedged=False,
        )


def build_fleet(
    world,
    cluster,
    geoip,
    *,
    count: int,
    corpus=None,
    calibration=None,
    seed: int = 0,
    queue_capacity: int = 32,
    service_minutes: float = DEFAULT_SERVICE_MINUTES,
    cache_size: int = 2048,
    policy: str = "round-robin",
    hedge_after_minutes: Optional[float] = None,
    replication: int = 2,
    vnodes: int = 64,
    hot_key_threshold: Optional[int] = 48,
    plan: Optional[FaultPlan] = None,
    brownout: Optional[BrownoutPolicy] = None,
    serve_stale_when_down: bool = True,
    ranker=None,
) -> GatewayFleet:
    """Build ``count`` shard gateways over one world and wire the fleet.

    Each shard owns its replicas, queues, and cache (the operational
    state chaos hurts), but every engine shares one ranking memo layer
    — scoring is a pure function of (world, calibration, seed), so a
    shared ranker only removes redundant warm-up cost.  Pass ``ranker``
    to share across fleets too (the bench sweeps do).
    """
    shared_ranker = ranker
    gateways: List[Gateway] = []
    for _ in range(count):
        replicas = build_replicas(
            world,
            cluster,
            geoip,
            corpus=corpus,
            calibration=calibration,
            seed=seed,
            queue_capacity=queue_capacity,
            service_minutes=service_minutes,
            ranker=shared_ranker,
        )
        if shared_ranker is None:
            shared_ranker = replicas[0].engine.ranker
        gateways.append(
            Gateway(
                replicas,
                geoip,
                policy=policy,
                cache_size=cache_size,
                hedge_after_minutes=hedge_after_minutes,
                serve_stale_when_down=serve_stale_when_down,
            )
        )
    return GatewayFleet(
        gateways,
        replication=replication,
        vnodes=vnodes,
        hot_key_threshold=hot_key_threshold,
        plan=plan,
        brownout=brownout,
    )


def build_fleet_registry(fleet: GatewayFleet) -> MetricsRegistry:
    """Wire the fleet's counters into a metrics registry.

    Fleet-level outcomes, ladder counters, and fault injections bind
    under ``fleet_*``; per-shard request shares under a labeled
    counter; each shard gateway's cache hits and sheds ride along so
    one scrape explains the whole serving stack.
    """
    registry = MetricsRegistry()
    stats = fleet.stats
    for attr in (
        "requests",
        "served_fresh",
        "served_stale",
        "shed",
        "failed",
        "rerouted",
        "fleet_stale_served",
        "backfills",
        "backfilled_entries",
        "hot_promotions",
        "hot_requests",
        "brownout_entries",
        "brownout_shed",
    ):
        registry.register_counter(
            f"fleet_{attr}", stats, attr, help=f"fleet {attr.replace('_', ' ')}"
        )
    registry.register_labeled(
        "fleet_shard_requests",
        stats,
        "shard_requests",
        label="shard",
        help="requests delegated to each shard",
    )
    registry.register_labeled(
        "fleet_shard_outcomes",
        stats,
        "shard_outcomes",
        label="shard_outcome",
        help="per-shard outcome split (shard:outcome keys)",
    )
    registry.register_labeled(
        "fleet_faults_injected",
        stats,
        "faults_injected",
        label="kind",
        help="serve faults injected by the chaos plan",
    )
    for name, shard in fleet.shards.items():
        slug = name.replace("-", "_")
        gateway_stats = shard.gateway.stats
        registry.register_counter(
            f"shard_{slug}_cache_hits",
            gateway_stats,
            "cache_hits",
            help=f"SERP cache hits on {name}",
        )
        registry.register_counter(
            f"shard_{slug}_degraded_served",
            gateway_stats,
            "degraded_served",
            help=f"stale-store answers on {name}",
        )
        registry.register_counter(
            f"shard_{slug}_rejected",
            gateway_stats,
            "rejected",
            help=f"requests shed by {name}",
        )
    return registry
