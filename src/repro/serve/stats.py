"""Serving metrics: what the gateway counts and reports.

Everything is measured in *virtual* time (study minutes) except
throughput, which the load driver measures against the wall clock.  The
counters mirror what a production serving stack exports: cache
hit/miss/eviction, admission and shedding, retries, hedges, queue
depth, and per-stage latency.

Latency series are :class:`~repro.obs.metrics.Histogram` instances —
the shared fixed-bucket type every reporter uses — which keep the
streaming ``count`` / ``mean_minutes`` / ``max_minutes`` the old
``LatencyAccumulator`` exposed (that name survives as an alias).
Snapshot/merge/restore come from :class:`~repro.obs.metrics.MetricSet`,
so ``restore_state`` rejects unknown keys instead of blindly
``setattr``-ing whatever a snapshot contains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs.metrics import Histogram, MetricSet

__all__ = ["LatencyAccumulator", "GatewayStats"]

#: Backwards-compatible name: the accumulator grew buckets and became
#: the shared histogram type.
LatencyAccumulator = Histogram


@dataclass
class GatewayStats(MetricSet):
    """Counters for one gateway instance.

    Cache counters are incremented by the :class:`~repro.serve.cache.
    SerpCache` the gateway owns; everything else by the gateway itself.
    """

    _MAX_FIELDS = ("max_queue_depth",)

    requests: int = 0

    # -- SERP cache ---------------------------------------------------------
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bypasses: int = 0
    """Requests not eligible for caching (they carried session state)."""
    cache_evictions: int = 0
    """Entries dropped for capacity (LRU order)."""
    cache_expirations: int = 0
    """Entries dropped because their virtual day rolled over."""

    # -- admission control ----------------------------------------------------
    admitted: int = 0
    rejected: int = 0
    """Requests shed because every replica queue was full."""
    retries: int = 0
    """Re-dispatches after a RATE_LIMITED response, with backoff."""
    hedges: int = 0
    """Requests dispatched to a second replica to cut tail latency."""
    rate_limited: int = 0
    """RATE_LIMITED responses seen from replicas (before retries)."""
    degraded_served: int = 0
    """Requests answered from the stale SERP store because no replica
    could take them (degraded mode; the response carries DEGRADED)."""
    max_queue_depth: int = 0

    # -- routing ---------------------------------------------------------------
    replica_requests: Dict[str, int] = field(default_factory=dict)

    # -- virtual latency --------------------------------------------------------
    queue_wait: Histogram = field(default_factory=Histogram)
    service: Histogram = field(default_factory=Histogram)
    total: Histogram = field(default_factory=Histogram)

    def record_dispatch(self, replica_name: str, depth: int) -> None:
        """Book-keep one request dispatched to a replica."""
        self.admitted += 1
        self.replica_requests[replica_name] = (
            self.replica_requests.get(replica_name, 0) + 1
        )
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Cache hits over cache-eligible lookups."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    def render(self) -> str:
        """A human-readable metrics report."""
        lines = [
            "gateway stats",
            f"  requests          {self.requests}",
            f"  cache             hits={self.cache_hits} misses={self.cache_misses} "
            f"bypasses={self.cache_bypasses} hit-rate={self.hit_rate:.1%}",
            f"  cache churn       evictions={self.cache_evictions} "
            f"expirations={self.cache_expirations}",
            f"  admission         admitted={self.admitted} rejected={self.rejected} "
            f"max-depth={self.max_queue_depth}",
            f"  resilience        retries={self.retries} hedges={self.hedges} "
            f"rate-limited={self.rate_limited} degraded={self.degraded_served}",
            "  virtual latency   "
            f"wait {self.queue_wait.mean_minutes * 60:.2f}s avg / "
            f"{self.queue_wait.max_minutes * 60:.2f}s max, "
            f"service {self.service.mean_minutes * 60:.2f}s avg / "
            f"{self.service.max_minutes * 60:.2f}s max, "
            f"total {self.total.mean_minutes * 60:.2f}s avg / "
            f"{self.total.max_minutes * 60:.2f}s max",
        ]
        if self.replica_requests:
            share = ", ".join(
                f"{name}={count}" for name, count in sorted(self.replica_requests.items())
            )
            lines.append(f"  per-replica       {share}")
        return "\n".join(lines)
