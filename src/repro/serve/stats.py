"""Serving metrics: what the gateway counts and reports.

Everything is measured in *virtual* time (study minutes) except
throughput, which the load driver measures against the wall clock.  The
counters mirror what a production serving stack exports: cache
hit/miss/eviction, admission and shedding, retries, hedges, queue
depth, and per-stage latency.

Latency series are :class:`~repro.obs.metrics.Histogram` instances —
the shared fixed-bucket type every reporter uses — which keep the
streaming ``count`` / ``mean_minutes`` / ``max_minutes`` the old
``LatencyAccumulator`` exposed (that name survives as an alias).
Snapshot/merge/restore come from :class:`~repro.obs.metrics.MetricSet`,
so ``restore_state`` rejects unknown keys instead of blindly
``setattr``-ing whatever a snapshot contains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.obs.metrics import Histogram, MetricSet
from repro.obs.telemetry import format_kv_rows

__all__ = ["LatencyAccumulator", "GatewayStats", "FleetStats"]

#: Backwards-compatible name: the accumulator grew buckets and became
#: the shared histogram type.
LatencyAccumulator = Histogram


@dataclass
class GatewayStats(MetricSet):
    """Counters for one gateway instance.

    Cache counters are incremented by the :class:`~repro.serve.cache.
    SerpCache` the gateway owns; everything else by the gateway itself.
    """

    _MAX_FIELDS = ("max_queue_depth",)

    requests: int = 0

    # -- SERP cache ---------------------------------------------------------
    cache_hits: int = 0
    cache_misses: int = 0
    cache_bypasses: int = 0
    """Requests not eligible for caching (they carried session state)."""
    cache_evictions: int = 0
    """Entries dropped for capacity (LRU order)."""
    cache_expirations: int = 0
    """Entries dropped because their virtual day rolled over."""

    # -- admission control ----------------------------------------------------
    admitted: int = 0
    rejected: int = 0
    """Requests shed because every replica queue was full."""
    retries: int = 0
    """Re-dispatches after a RATE_LIMITED response, with backoff."""
    hedges: int = 0
    """Requests dispatched to a second replica to cut tail latency."""
    rate_limited: int = 0
    """RATE_LIMITED responses seen from replicas (before retries)."""
    degraded_served: int = 0
    """Requests answered from the stale SERP store because no replica
    could take them (degraded mode; the response carries DEGRADED)."""
    max_queue_depth: int = 0

    # -- routing ---------------------------------------------------------------
    replica_requests: Dict[str, int] = field(default_factory=dict)

    # -- virtual latency --------------------------------------------------------
    queue_wait: Histogram = field(default_factory=Histogram)
    service: Histogram = field(default_factory=Histogram)
    total: Histogram = field(default_factory=Histogram)

    def record_dispatch(self, replica_name: str, depth: int) -> None:
        """Book-keep one request dispatched to a replica."""
        self.admitted += 1
        self.replica_requests[replica_name] = (
            self.replica_requests.get(replica_name, 0) + 1
        )
        if depth > self.max_queue_depth:
            self.max_queue_depth = depth

    @property
    def cache_lookups(self) -> int:
        return self.cache_hits + self.cache_misses

    @property
    def hit_rate(self) -> float:
        """Cache hits over cache-eligible lookups."""
        lookups = self.cache_lookups
        return self.cache_hits / lookups if lookups else 0.0

    def render(self) -> str:
        """A human-readable metrics report."""
        rows = [
            ("requests", self.requests),
            (
                "cache",
                f"hits={self.cache_hits} misses={self.cache_misses} "
                f"bypasses={self.cache_bypasses} hit-rate={self.hit_rate:.1%}",
            ),
            (
                "cache churn",
                f"evictions={self.cache_evictions} "
                f"expirations={self.cache_expirations}",
            ),
            (
                "admission",
                f"admitted={self.admitted} rejected={self.rejected} "
                f"max-depth={self.max_queue_depth}",
            ),
            (
                "resilience",
                f"retries={self.retries} hedges={self.hedges} "
                f"rate-limited={self.rate_limited} degraded={self.degraded_served}",
            ),
            (
                "virtual latency",
                f"wait {self.queue_wait.mean_minutes * 60:.2f}s avg / "
                f"{self.queue_wait.max_minutes * 60:.2f}s max, "
                f"service {self.service.mean_minutes * 60:.2f}s avg / "
                f"{self.service.max_minutes * 60:.2f}s max, "
                f"total {self.total.mean_minutes * 60:.2f}s avg / "
                f"{self.total.max_minutes * 60:.2f}s max",
            ),
        ]
        if self.replica_requests:
            share = ", ".join(
                f"{name}={count}" for name, count in sorted(self.replica_requests.items())
            )
            rows.append(("per-replica", share))
        return "\n".join(["gateway stats"] + format_kv_rows(rows))


@dataclass
class FleetStats(MetricSet):
    """Counters for the consistent-hash gateway fleet.

    The four outcome counters partition ``requests`` exactly — the
    accounting invariant the chaos harness audits: every offered
    request is served fresh, served stale, deliberately shed, or
    failed; nothing vanishes.  Ladder and fault counters ride along so
    a chaos ledger can explain *why* the outcomes happened.
    """

    requests: int = 0
    """Requests offered to the front tier."""

    # -- outcome partition ----------------------------------------------------
    served_fresh: int = 0
    """OK responses computed or cache-hit on a live shard."""
    served_stale: int = 0
    """DEGRADED responses from a stale store (shard- or fleet-level)."""
    shed: int = 0
    """OVERLOADED answers: queues full, owners dark, or brownout."""
    failed: int = 0
    """Terminal non-OK answers (rate-limited past retries, 5xx)."""

    # -- degradation ladder ---------------------------------------------------
    rerouted: int = 0
    """Requests served by a replica shard because the primary owner was
    down, partitioned, or browned out."""
    fleet_stale_served: int = 0
    """Stale answers found by scanning live peers after every owner of
    the key was unreachable (the fleet-level stale rung)."""
    backfills: int = 0
    """Anti-entropy repair passes run when a crashed shard rejoined."""
    backfilled_entries: int = 0
    """Cache entries copied from peers during those repairs."""
    hot_promotions: int = 0
    """Keys promoted to the hot set (served by every shard)."""
    hot_requests: int = 0
    """Requests routed via the hot set instead of ring owners."""
    brownout_entries: int = 0
    """Times the SLO controller switched the fleet into brownout."""
    brownout_shed: int = 0
    """Requests deliberately shed while browned out."""

    # -- fault injection -------------------------------------------------------
    faults_injected: Dict[str, int] = field(default_factory=dict)
    """Per-kind serve faults the chaos plan fired (by kind value)."""

    # -- routing ---------------------------------------------------------------
    shard_requests: Dict[str, int] = field(default_factory=dict)
    """Requests delegated to each shard gateway (by shard name)."""
    shard_outcomes: Dict[str, int] = field(default_factory=dict)
    """Per-shard outcome partition, keyed ``"shard:outcome"`` — each
    shard's fresh/stale/shed/failed split (flat keys so snapshots merge
    per key like every other labeled counter)."""

    def record_outcome(self, outcome: str) -> None:
        """Bump the outcome partition; ``outcome`` is a counter name."""
        setattr(self, outcome, getattr(self, outcome) + 1)

    def record_shard_outcome(self, shard_name: str, outcome: str) -> None:
        """Bump one shard's request count and outcome split."""
        self.shard_requests[shard_name] = (
            self.shard_requests.get(shard_name, 0) + 1
        )
        key = f"{shard_name}:{outcome}"
        self.shard_outcomes[key] = self.shard_outcomes.get(key, 0) + 1

    def unaccounted(self) -> int:
        """Offered requests missing from the outcome partition (0 = all
        accounted for; negative = double-counted)."""
        return self.requests - (
            self.served_fresh + self.served_stale + self.shed + self.failed
        )

    def render(self) -> str:
        """A human-readable fleet report."""
        rows = [
            ("offered", self.requests),
            (
                "outcomes",
                f"fresh={self.served_fresh} "
                f"stale={self.served_stale} shed={self.shed} "
                f"failed={self.failed} unaccounted={self.unaccounted()}",
            ),
            (
                "ladder",
                f"rerouted={self.rerouted} "
                f"fleet-stale={self.fleet_stale_served} "
                f"backfills={self.backfills} "
                f"backfilled-entries={self.backfilled_entries}",
            ),
            (
                "hot keys",
                f"promotions={self.hot_promotions} "
                f"requests={self.hot_requests}",
            ),
            (
                "brownout",
                f"entries={self.brownout_entries} "
                f"shed={self.brownout_shed}",
            ),
        ]
        if self.faults_injected:
            kinds = ", ".join(
                f"{kind}={count}"
                for kind, count in sorted(self.faults_injected.items())
            )
            rows.append(("faults injected", kinds))
        if self.shard_requests:
            share = ", ".join(
                f"{name}={count}"
                for name, count in sorted(self.shard_requests.items())
            )
            rows.append(("per-shard", share))
        if self.shard_outcomes:
            split = ", ".join(
                f"{key}={count}"
                for key, count in sorted(self.shard_outcomes.items())
            )
            rows.append(("shard outcomes", split))
        return "\n".join(["fleet stats"] + format_kv_rows(rows))
