"""Synthetic web substrate.

The engine ranks documents from a deterministic synthetic web: national
sites, per-state sites, per-city sites, local business points of
interest, news outlets with a rotating article pool, and the web
presence of every politician in the query corpus.  Everything is
generated lazily and reproducibly from seeds, so the "web" is unbounded
in extent but identical across runs.
"""

from repro.web.documents import DocKind, Document, GeoScope
from repro.web.grid import GeoGrid, GridCell
from repro.web.news import NewsArticle, NewsPool
from repro.web.pois import Poi, PoiDatabase
from repro.web.urls import Url
from repro.web.world import WebWorld

__all__ = [
    "DocKind",
    "Document",
    "GeoScope",
    "GeoGrid",
    "GridCell",
    "NewsArticle",
    "NewsPool",
    "Poi",
    "PoiDatabase",
    "Url",
    "WebWorld",
]
