"""Query-entity web presence: the universal and scoped documents.

For every query the engine needs a candidate pool.  This module
generates the *non-POI* part of that pool:

* a **universal** slate — nationally relevant pages whose base scores
  are well separated (their stability is why controversial/politician
  queries barely personalize);
* **state-scoped** documents (state government pages, statewide
  directories, op-eds) shared by everyone in one state;
* **city-scoped** documents (the synthetic city site and local paper)
  shared by everyone in one metro cell;
* **ambiguity entities** for common politician names — other people
  with the same name anchored elsewhere in the country, whose pages
  surface near their own home (the paper's "Bill Johnson" effect).

Score *spacing* per category is the engine's main noise knob: tightly
spaced slates churn under score jitter, widely spaced slates do not.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.geo.coords import LatLon
from repro.geo.usa import US_STATES
from repro.queries.model import PoliticianScope, Query, QueryCategory
from repro.seeding import derive_rng, stable_unit
from repro.web.documents import DocKind, Document, GeoScope
from repro.web.grid import GridCell
from repro.web.naming import city_name
from repro.web.urls import Url, slugify

__all__ = [
    "AmbiguousEntity",
    "universal_docs",
    "state_docs",
    "city_docs",
    "ambiguous_entities",
]

# ---------------------------------------------------------------------------
# Universal slates
# ---------------------------------------------------------------------------

#: (host template, path template, title template, score offset)
#: Nationally relevant pages dominate generic-local SERPs; their tight
#: score spacing plus the location-keyed perturbation is what makes
#: "school" pages share most links across the country but in wildly
#: different orders (paper: high edit distance, moderate Jaccard,
#: "the vast majority of changes ... impact typical results").
_GENERIC_LOCAL_UNIVERSAL = [
    ("encyclopedia.example.org", "/wiki/{slug}", "{term} - Encyclopedia", 10.00),
    ("citydirectory.example.com", "/search/{slug}", "Top {term} near you", 9.82),
    ("travelreviews.example.com", "/c/{slug}", "Best {term} - Reviews", 9.65),
    ("qna.example.com", "/questions/{slug}", "How to choose a {term}", 9.47),
    ("national-{slug}.example.org", "/", "National {term} Association", 9.30),
    ("howstuff.example.com", "/guide/{slug}", "{term} explained", 9.13),
    ("listicles.example.com", "/rank/{slug}", "10 best {term} options", 8.97),
    ("forum.example.com", "/t/{slug}", "{term} - discussion", 8.80),
    ("newsmagazine.example.com", "/life/{slug}", "Choosing the right {term}", 8.63),
    ("consumerwatch.example.org", "/ratings/{slug}", "{term} ratings", 8.46),
    ("finder.example.com", "/near-me/{slug}", "{term} near me - Finder", 8.30),
    ("mapsearch.example.com", "/browse/{slug}", "Browse {term} listings", 8.13),
    ("opinionsite.example.com", "/why/{slug}", "Why your {term} matters", 7.96),
    ("statsbureau.example.gov", "/data/{slug}", "{term} statistics", 7.79),
]

_BRAND_UNIVERSAL = [
    ("{slug}.example.com", "/", "{term} - Official Site", 12.00),
    ("{slug}.example.com", "/locations", "{term} Locations", 11.65),
    ("{slug}.example.com", "/menu", "{term} Menu & Prices", 11.30),
    ("encyclopedia.example.org", "/wiki/{slug}", "{term} - Encyclopedia", 10.95),
    ("dailynational.example.com", "/business/{slug}", "{term} in the news", 10.60),
    ("chirper.example.com", "/{slug}", "{term} (@{slug}) on Chirper", 10.28),
    ("travelreviews.example.com", "/brand/{slug}", "{term} - Reviews", 9.96),
    ("couponhub.example.com", "/store/{slug}", "{term} deals", 9.65),
    ("appstore.example.com", "/app/{slug}", "{term} mobile app", 9.35),
    ("jobboards.example.com", "/company/{slug}", "Careers at {term}", 9.05),
    ("pressroom.example.com", "/brand/{slug}", "{term} press room", 8.80),
    ("stockwatch.example.com", "/ticker/{slug}", "{term} investor news", 8.55),
    ("foodblog.example.com", "/reviews/{slug}", "We tried everything at {term}", 8.30),
    ("nutrition-db.example.org", "/chains/{slug}", "{term} nutrition facts", 8.05),
    ("rankings.example.com", "/fast-food/{slug}", "How {term} ranks", 7.80),
]

_CONTROVERSIAL_UNIVERSAL = [
    ("encyclopedia.example.org", "/wiki/{slug}", "{term} - Encyclopedia", 11.00),
    ("refdesk.example.org", "/topic/{slug}", "{term} - Reference", 10.72),
    ("prosandcons.example.org", "/{slug}", "{term}: Pros and Cons", 10.46),
    ("citizensalliance.example.org", "/issues/{slug}", "Support {term}", 10.20),
    ("libertycoalition.example.org", "/stop/{slug}", "The case against {term}", 9.95),
    ("usa.example.gov", "/policy/{slug}", "{term} - Official policy", 9.70),
    ("thinktank.example.org", "/research/{slug}", "{term}: evidence review", 9.44),
    ("dailynational.example.com", "/explainer/{slug}", "{term}, explained", 9.18),
    ("factcheckers.example.org", "/claims/{slug}", "Fact-check: {term}", 8.92),
    ("quarterlyreview.example.com", "/essay/{slug}", "Rethinking {term}", 8.68),
    ("scholarlycommons.example.edu", "/papers/{slug}", "{term}: a survey", 8.44),
    ("forum.example.com", "/t/{slug}", "{term} - discussion", 8.20),
]

_POLITICIAN_UNIVERSAL = [
    ("{slug}.example.com", "/", "{term} - Official Website", 11.20),
    ("encyclopedia.example.org", "/wiki/{slug}", "{term} - Encyclopedia", 10.88),
    ("ballotfacts.example.org", "/people/{slug}", "{term} - Ballot Facts", 10.56),
    ("chirper.example.com", "/{slug}", "{term} (@{slug}) on Chirper", 10.24),
    ("votetracker.example.org", "/member/{slug}", "{term} voting record", 9.92),
    ("dailynational.example.com", "/politics/{slug}", "{term} in the news", 9.60),
    ("campaigncash.example.org", "/donors/{slug}", "{term} campaign finance", 9.30),
    ("civicmirror.example.org", "/bio/{slug}", "{term} biography", 9.00),
    ("speecharchive.example.org", "/speaker/{slug}", "{term}: speeches", 8.72),
    ("townhall-directory.example.com", "/events/{slug}", "{term} town halls", 8.44),
    ("photoarchive.example.com", "/galleries/{slug}", "{term} - photos", 8.18),
    ("quotesite.example.com", "/author/{slug}", "{term} quotes", 7.92),
]


def _build_slate(template, term: str) -> List[Document]:
    slug = slugify(term)
    docs: List[Document] = []
    for host_t, path_t, title_t, score in template:
        docs.append(
            Document(
                url=Url(host=host_t.format(slug=slug), path=path_t.format(slug=slug)),
                title=title_t.format(term=term, slug=slug),
                kind=DocKind.ORGANIC,
                scope=GeoScope.NATIONAL,
                base_score=score,
            )
        )
    return docs


def universal_docs(query: Query) -> List[Document]:
    """The nationally scoped candidate slate for ``query``."""
    if query.category is QueryCategory.LOCAL:
        template = _BRAND_UNIVERSAL if query.is_brand else _GENERIC_LOCAL_UNIVERSAL
    elif query.category is QueryCategory.CONTROVERSIAL:
        template = _CONTROVERSIAL_UNIVERSAL
    else:
        template = _POLITICIAN_UNIVERSAL
    return _build_slate(template, query.text)


# ---------------------------------------------------------------------------
# State- and city-scoped documents
# ---------------------------------------------------------------------------

#: Controversial terms the paper singles out as most personalized get a
#: stronger state-scoped presence.
BROAD_CONTROVERSIAL_TERMS = {"health", "republican party", "politics"}


def state_docs(query: Query, state: str) -> List[Document]:
    """Documents scoped to one state for ``query``."""
    slug = slugify(query.text)
    state_slug = slugify(state)
    docs: List[Document] = []
    if query.category is QueryCategory.LOCAL and not query.is_brand:
        docs.append(
            Document(
                url=Url(host=f"{state_slug}.example.gov", path=f"/services/{slug}"),
                title=f"{query.text} services - State of {state}",
                kind=DocKind.ORGANIC,
                scope=GeoScope.STATE,
                base_score=8.45,
                state=state,
            )
        )
    elif query.category is QueryCategory.CONTROVERSIAL:
        broad = query.text.lower() in BROAD_CONTROVERSIAL_TERMS
        docs.append(
            Document(
                url=Url(
                    host=f"{state_slug}dispatch.example.com",
                    path=f"/opinion/{slug}",
                ),
                title=f"Opinion: {query.text} and {state}",
                kind=DocKind.ORGANIC,
                scope=GeoScope.STATE,
                base_score=8.95 if broad else 8.30,
                state=state,
            )
        )
    elif query.category is QueryCategory.POLITICIAN:
        if query.home_state is not None and query.home_state == state:
            docs.append(
                Document(
                    url=Url(
                        host=f"{state_slug}dispatch.example.com",
                        path=f"/profiles/{slug}",
                    ),
                    title=f"{query.text}: profile ({state} Dispatch)",
                    kind=DocKind.ORGANIC,
                    scope=GeoScope.STATE,
                    base_score=8.60,
                    state=state,
                )
            )
            if query.politician_scope in (PoliticianScope.COUNTY, PoliticianScope.STATE):
                docs.append(
                    Document(
                        url=Url(host=f"{state_slug}.example.gov", path=f"/officials/{slug}"),
                        title=f"{query.text} - {state} government",
                        kind=DocKind.ORGANIC,
                        scope=GeoScope.STATE,
                        base_score=8.35,
                        state=state,
                    )
                )
    return docs


def city_docs(query: Query, metro_cell: GridCell) -> List[Document]:
    """Documents scoped to one metro cell (the synthetic locality)."""
    if query.category is not QueryCategory.LOCAL or query.is_brand:
        return []
    slug = slugify(query.text)
    city = city_name(metro_cell)
    city_slug = slugify(city)
    return [
        Document(
            url=Url(host=f"cityof{city_slug}.example.gov", path=f"/{slug}"),
            title=f"{query.text} - City of {city}",
            kind=DocKind.ORGANIC,
            scope=GeoScope.CITY,
            base_score=7.40,
        ),
    ]


# ---------------------------------------------------------------------------
# Common-name ambiguity
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class AmbiguousEntity:
    """Another person sharing a politician's name, anchored elsewhere."""

    name: str
    occupation: str
    anchor: LatLon
    document: Document


_OCCUPATIONS = [
    "realtor", "attorney", "dentist", "professor", "contractor",
    "photographer", "chiropractor", "insurance-agent",
]


def ambiguous_entities(query: Query, world_seed: int) -> List[AmbiguousEntity]:
    """Same-named people for a common politician name.

    Each entity is anchored near a state centroid; its page's relevance
    decays with distance from that anchor, so it only cracks the SERP
    for users near the entity — this is what differentiates results for
    "Bill Johnson" across the country.
    """
    if not query.is_common_name:
        return []
    slug = slugify(query.text)
    rng = derive_rng(world_seed, "ambiguous", slug)
    count = rng.randrange(2, 5)
    states = rng.sample(sorted(US_STATES), count)
    entities: List[AmbiguousEntity] = []
    for index, state in enumerate(states):
        base = US_STATES[state]
        anchor = LatLon(
            max(-90.0, min(90.0, base.lat + rng.uniform(-1.0, 1.0))),
            max(-180.0, min(180.0, base.lon + rng.uniform(-1.0, 1.0))),
        )
        occupation = rng.choice(_OCCUPATIONS)
        score = 9.4 + rng.uniform(-0.2, 0.2)
        doc = Document(
            url=Url(
                host=f"{slug}-{occupation}.example.com",
                path="/",
            ),
            title=f"{query.text}, {occupation.replace('-', ' ')} in {state}",
            kind=DocKind.ORGANIC,
            scope=GeoScope.POINT,
            base_score=score,
            anchor=anchor,
        )
        entities.append(
            AmbiguousEntity(
                name=query.text, occupation=occupation, anchor=anchor, document=doc
            )
        )
    return entities
