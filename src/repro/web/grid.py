"""A planar grid over the US used for local-content generation.

Local businesses, cities, and local news outlets are generated per grid
cell, deterministically.  The engine *snaps* a user's GPS fix to the
centre of its cell before retrieving local content; this quantisation is
the mechanism behind the county-level result clustering the paper
observes in Figure 8 (nearby voting districts that fall into the same
cell receive identical local candidates).

The projection is equirectangular around a fixed reference latitude —
within a metro area the distortion is negligible, and only *relative*
positions matter to the study.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator, List

from repro.geo.coords import LatLon

__all__ = ["GridCell", "GeoGrid"]

_MILES_PER_DEG_LAT = 69.0
_REFERENCE_LAT_DEG = 39.0  # mid-US; cos(39°) scales longitude miles


@dataclass(frozen=True, order=True)
class GridCell:
    """One cell of the grid, identified by integer column/row indices."""

    ix: int
    iy: int


class GeoGrid:
    """A square grid with cells ``cell_miles`` on a side.

    Args:
        cell_miles: Cell edge length in miles.  The study default is 1
            mile — small enough that Cuyahoga voting districts spread
            over several cells, large enough that some districts share
            one.
    """

    def __init__(self, cell_miles: float = 1.0):
        if cell_miles <= 0:
            raise ValueError(f"cell size must be positive, got {cell_miles}")
        self.cell_miles = cell_miles
        self._lon_scale = math.cos(math.radians(_REFERENCE_LAT_DEG))

    def to_xy_miles(self, point: LatLon) -> tuple:
        """Project a coordinate to planar (x, y) miles."""
        x = point.lon * _MILES_PER_DEG_LAT * self._lon_scale
        y = point.lat * _MILES_PER_DEG_LAT
        return (x, y)

    def from_xy_miles(self, x: float, y: float) -> LatLon:
        """Inverse of :meth:`to_xy_miles`."""
        lon = x / (_MILES_PER_DEG_LAT * self._lon_scale)
        lat = y / _MILES_PER_DEG_LAT
        return LatLon(lat, lon)

    def cell_of(self, point: LatLon) -> GridCell:
        """The cell containing ``point``."""
        x, y = self.to_xy_miles(point)
        return GridCell(math.floor(x / self.cell_miles), math.floor(y / self.cell_miles))

    def cell_center(self, cell: GridCell) -> LatLon:
        """The centre coordinate of ``cell``."""
        x = (cell.ix + 0.5) * self.cell_miles
        y = (cell.iy + 0.5) * self.cell_miles
        return self.from_xy_miles(x, y)

    def snap(self, point: LatLon) -> LatLon:
        """Quantise ``point`` to the centre of its cell."""
        return self.cell_center(self.cell_of(point))

    def cells_within(self, point: LatLon, radius_miles: float) -> List[GridCell]:
        """All cells whose area intersects the disc around ``point``.

        Returned in deterministic (row-major) order, which downstream
        code relies on for reproducible candidate enumeration.
        """
        if radius_miles < 0:
            raise ValueError(f"radius must be non-negative, got {radius_miles}")
        x, y = self.to_xy_miles(point)
        span = int(math.ceil(radius_miles / self.cell_miles))
        cx = math.floor(x / self.cell_miles)
        cy = math.floor(y / self.cell_miles)
        cells: List[GridCell] = []
        for iy in range(cy - span, cy + span + 1):
            for ix in range(cx - span, cx + span + 1):
                # Nearest point of the cell rectangle to the disc centre.
                rect_x0, rect_x1 = ix * self.cell_miles, (ix + 1) * self.cell_miles
                rect_y0, rect_y1 = iy * self.cell_miles, (iy + 1) * self.cell_miles
                nearest_x = min(max(x, rect_x0), rect_x1)
                nearest_y = min(max(y, rect_y0), rect_y1)
                if math.hypot(nearest_x - x, nearest_y - y) <= radius_miles:
                    cells.append(GridCell(ix, iy))
        return cells

    def distance_miles(self, a: LatLon, b: LatLon) -> float:
        """Planar distance between two points (projection-space miles)."""
        ax, ay = self.to_xy_miles(a)
        bx, by = self.to_xy_miles(b)
        return math.hypot(ax - bx, ay - by)

    def iter_neighborhood(self, cell: GridCell, span: int = 1) -> Iterator[GridCell]:
        """The (2·span+1)² block of cells centred on ``cell``."""
        for iy in range(cell.iy - span, cell.iy + span + 1):
            for ix in range(cell.ix - span, cell.ix + span + 1):
                yield GridCell(ix, iy)
