"""The point-of-interest database.

Local queries are answered from POIs: businesses and public services
anchored at coordinates.  POIs are generated lazily per (category, grid
cell) with a deterministic Poisson-distributed count, so the database
covers the entire US without materialising it.

Category *specs* encode the two properties the paper's findings hinge
on:

* **density** — generic services ("school", "restaurant") are dense,
  so their SERPs are dominated by tightly-scored nearby POIs (noisy,
  highly personalized); brands are sparse.
* **quality spread** — how separated POI scores are; tight spreads make
  rankings sensitive to the engine's score jitter (noise).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.geo.coords import LatLon
from repro.seeding import derive_rng
from repro.web.grid import GeoGrid, GridCell
from repro.web.naming import business_name, city_name
from repro.web.urls import Url, slugify

__all__ = ["CategorySpec", "Poi", "PoiDatabase", "CATEGORY_SPECS", "category_for_term"]


@dataclass(frozen=True)
class CategorySpec:
    """Generation parameters for one POI category."""

    name: str
    density_per_sq_mile: float
    quality_mean: float = 7.0
    quality_spread: float = 0.6
    own_site_rate: float = 0.5  # fraction of POIs with their own domain


#: Specs for the generic local terms (term slug -> spec).
CATEGORY_SPECS: Dict[str, CategorySpec] = {
    spec.name: spec
    for spec in [
        CategorySpec("school", 0.50, own_site_rate=0.7),
        CategorySpec("elementary-school", 0.35, own_site_rate=0.7),
        CategorySpec("middle-school", 0.30, own_site_rate=0.7),
        CategorySpec("high-school", 0.30, own_site_rate=0.7),
        CategorySpec("college", 0.10, quality_mean=7.3),
        CategorySpec("university", 0.06, quality_mean=7.5),
        CategorySpec("hospital", 0.10, quality_mean=7.3),
        CategorySpec("airport", 0.04, quality_mean=7.5),
        CategorySpec("park", 0.55, own_site_rate=0.2),
        CategorySpec("bank", 0.40),
        CategorySpec("coffee", 0.45),
        CategorySpec("restaurant", 0.85),
        CategorySpec("sushi", 0.15),
        CategorySpec("burger", 0.35),
        CategorySpec("fast-food", 0.50),
        CategorySpec("police-station", 0.12, own_site_rate=0.3),
        CategorySpec("fire-station", 0.15, own_site_rate=0.3),
        CategorySpec("post-office", 0.15, own_site_rate=0.2),
        CategorySpec("polling-place", 0.30, own_site_rate=0.1),
        CategorySpec("train", 0.08, own_site_rate=0.2),
        CategorySpec("rail", 0.08, own_site_rate=0.2),
        CategorySpec("bus", 0.30, own_site_rate=0.1),
        CategorySpec("station", 0.20, own_site_rate=0.2),
        CategorySpec("football", 0.15, own_site_rate=0.3),
    ]
}

#: Outlet density used for national brand chains.
BRAND_OUTLET_DENSITY = 0.08


def category_for_term(term: str, *, is_brand: bool) -> CategorySpec:
    """The POI category spec for a local query term.

    Brand terms share one sparse chain-outlet spec; generic terms map to
    their own spec by slug.
    """
    slug = slugify(term)
    if is_brand:
        return CategorySpec(
            name=slug,
            density_per_sq_mile=BRAND_OUTLET_DENSITY,
            quality_mean=5.6,
            quality_spread=0.35,
            own_site_rate=0.0,  # outlets live under the chain's domain
        )
    spec = CATEGORY_SPECS.get(slug)
    if spec is None:
        # Unknown generic term: a sensible default so user-supplied
        # corpora work out of the box.
        spec = CategorySpec(name=slug, density_per_sq_mile=0.3)
    return spec


@dataclass(frozen=True)
class Poi:
    """One point of interest."""

    poi_id: str
    name: str
    category: str
    location: LatLon
    quality: float
    url: Url
    city: str


def _poisson(rng, mean: float) -> int:
    """Inverse-transform Poisson sample (mean is small here)."""
    if mean <= 0:
        return 0
    threshold = math.exp(-mean)
    count = 0
    product = rng.random()
    while product > threshold:
        count += 1
        product *= rng.random()
    return count


class PoiDatabase:
    """Lazily generated, memoised POIs keyed by (category, cell).

    Args:
        seed: World seed; POI layout is a function of (seed, category,
            cell) only.
        grid: Fine grid POIs are generated on.
        metro_grid: Coarse grid that defines localities (city names,
            city sites); each POI belongs to the metro cell containing
            it.
    """

    def __init__(self, seed: int, grid: GeoGrid, metro_grid: GeoGrid):
        self.seed = seed
        self.grid = grid
        self.metro_grid = metro_grid
        self._cache: Dict[tuple, List[Poi]] = {}

    def pois_in_cell(self, spec: CategorySpec, cell: GridCell) -> List[Poi]:
        """All POIs of a category inside one fine-grid cell."""
        key = (spec.name, spec.density_per_sq_mile, cell)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        rng = derive_rng(self.seed, "poi", spec.name, cell.ix, cell.iy)
        area = self.grid.cell_miles**2
        count = _poisson(rng, spec.density_per_sq_mile * area)
        pois: List[Poi] = []
        for index in range(count):
            # Uniform position inside the cell.
            fx = rng.random()
            fy = rng.random()
            x = (cell.ix + fx) * self.grid.cell_miles
            y = (cell.iy + fy) * self.grid.cell_miles
            location = self.grid.from_xy_miles(x, y)
            metro_cell = self.metro_grid.cell_of(location)
            city = city_name(metro_cell)
            name = business_name(spec.name.replace("-", " "), city, index)
            quality = rng.gauss(spec.quality_mean, spec.quality_spread)
            poi_id = f"{spec.name}:{cell.ix}:{cell.iy}:{index}"
            url = self._poi_url(spec, name, city, cell, index, rng)
            pois.append(
                Poi(
                    poi_id=poi_id,
                    name=name,
                    category=spec.name,
                    location=location,
                    quality=quality,
                    url=url,
                    city=city,
                )
            )
        self._cache[key] = pois
        return pois

    def pois_near(
        self,
        spec: CategorySpec,
        point: LatLon,
        radius_miles: float,
        *,
        limit: Optional[int] = None,
    ) -> List[Poi]:
        """POIs of a category within ``radius_miles`` of ``point``.

        Sorted by planar distance from ``point`` (deterministic
        tie-break on poi_id); optionally truncated to ``limit``.
        """
        pois: List[Poi] = []
        for cell in self.grid.cells_within(point, radius_miles):
            for poi in self.pois_in_cell(spec, cell):
                if self.grid.distance_miles(point, poi.location) <= radius_miles:
                    pois.append(poi)
        pois.sort(key=lambda p: (self.grid.distance_miles(point, p.location), p.poi_id))
        if limit is not None:
            pois = pois[:limit]
        return pois

    def _poi_url(self, spec, name, city, cell, index, rng) -> Url:
        """A POI's canonical URL: its own site or a directory listing."""
        slug = slugify(name)
        if rng.random() < spec.own_site_rate:
            host = f"{slug}.{slugify(city)}.example.com"
            return Url(host=host, path="/")
        # Directory listing (the synthetic yelp).
        return Url(
            host="citydirectory.example.com",
            path=f"/{slugify(city)}/{spec.name}/{slug}-{cell.ix}-{cell.iy}-{index}",
        )
