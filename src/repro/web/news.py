"""The rotating news-article pool.

Controversial (and, less often, politician) queries carry an
"In the News" meta-card.  Articles rotate day by day: each (topic, day)
spawns zero or more articles that stay in the pool for a few days, so
adjacent days share most of their articles — matching the slow news
churn the paper attributes 6–17% of controversial-query noise to.

Statewide outlets contribute a geo-scoped article per topic, which is
what makes the News share of *personalization* grow with granularity
(paper Fig. 7).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.seeding import derive_rng, stable_unit
from repro.web.documents import DocKind, Document, GeoScope
from repro.web.urls import Url, slugify

__all__ = ["NewsArticle", "NewsPool", "NATIONAL_OUTLETS"]

#: National news outlets (synthetic stand-ins for the usual suspects).
NATIONAL_OUTLETS: List[str] = [
    "dailynational.example.com",
    "usheadlines.example.com",
    "thecapitoltimes.example.com",
    "newswire.example.com",
    "theeveningpost.example.com",
    "broadcastnews.example.com",
]

#: How many days an article stays in the candidate pool.
ARTICLE_LIFETIME_DAYS = 4


@dataclass(frozen=True)
class NewsArticle:
    """One dated article (wraps a Document with its publication day)."""

    document: Document
    published_day: int
    outlet: str


def state_outlet(state: str) -> str:
    """The statewide outlet domain for ``state``."""
    return f"{slugify(state)}dispatch.example.com"


class NewsPool:
    """Deterministic per-topic, per-day article generation."""

    def __init__(self, seed: int):
        self.seed = seed

    def newsworthiness(self, topic: str) -> float:
        """Stable propensity of a topic to be in the news, in [0, 1)."""
        return stable_unit("newsworthiness", self.seed, slugify(topic))

    def articles_for(
        self,
        topic: str,
        day: int,
        *,
        state: Optional[str] = None,
    ) -> List[NewsArticle]:
        """Articles alive on ``day`` for ``topic``.

        National articles are independent of location; if ``state`` is
        given, a statewide-outlet article may be appended (scoped to
        that state).  Articles published on day *p* score higher the
        fresher they are.
        """
        slug = slugify(topic)
        articles: List[NewsArticle] = []
        for published in range(day - ARTICLE_LIFETIME_DAYS + 1, day + 1):
            rng = derive_rng(self.seed, "news", slug, published)
            count = rng.randrange(0, 3)  # 0-2 national articles per day
            for index in range(count):
                outlet = rng.choice(NATIONAL_OUTLETS)
                age = day - published
                score = 8.6 - 0.35 * age + rng.uniform(-0.05, 0.05)
                url = Url(
                    host=outlet,
                    path=f"/{published}/{slug}-{index}",
                )
                articles.append(
                    NewsArticle(
                        document=Document(
                            url=url,
                            title=f"{topic}: coverage ({outlet.split('.')[0]})",
                            kind=DocKind.NEWS_ARTICLE,
                            scope=GeoScope.NATIONAL,
                            base_score=score,
                        ),
                        published_day=published,
                        outlet=outlet,
                    )
                )
        if state is not None:
            articles.extend(self._state_articles(slug, topic, day, state))
        articles.sort(key=lambda a: (-a.document.base_score, str(a.document.url)))
        return articles

    def _state_articles(
        self, slug: str, topic: str, day: int, state: str
    ) -> List[NewsArticle]:
        """Zero or one statewide article alive on ``day``."""
        week = day // 7
        rng = derive_rng(self.seed, "state-news", slug, slugify(state), week)
        if rng.random() > 0.40:
            return []
        outlet = state_outlet(state)
        score = 8.05 + rng.uniform(-0.1, 0.1)
        url = Url(host=outlet, path=f"/w{week}/{slug}")
        return [
            NewsArticle(
                document=Document(
                    url=url,
                    title=f"{topic}: what it means for {state}",
                    kind=DocKind.NEWS_ARTICLE,
                    scope=GeoScope.STATE,
                    base_score=score,
                    state=state,
                ),
                published_day=week * 7,
                outlet=outlet,
            )
        ]

    def has_news_card(self, topic: str, day: int, *, affinity_threshold: float) -> bool:
        """Whether ``topic`` carries a News card on ``day``.

        Deterministic per (topic, day): a topic's newsworthiness is
        blended with a per-day draw, so the *set* of topics with news
        cards drifts slowly across days, but two simultaneous requests
        always agree — the paper found News causes almost no noise for
        local queries and only modest noise for controversial ones.
        """
        daily = stable_unit("news-card-day", self.seed, slugify(topic), day)
        blended = 0.75 * self.newsworthiness(topic) + 0.25 * daily
        return blended > affinity_threshold
