"""Deterministic synthetic naming for cities and businesses.

Every locality and business in the synthetic web has a plausible,
reproducible name derived from its grid position — so result URLs look
like a real crawl ("maple-grove-coffee-roasters.com") and stay identical
across runs.
"""

from __future__ import annotations

from typing import List

from repro.seeding import derive_rng
from repro.web.grid import GridCell

__all__ = ["city_name", "business_name", "person_name"]

_NAMING_SEED = 20151028

_CITY_FIRST = [
    "Maple", "Oak", "Cedar", "River", "Lake", "Fair", "Brook", "Shaker",
    "Cleve", "East", "West", "North", "South", "Spring", "Garfield",
    "Park", "Bay", "Rocky", "Chagrin", "Euclid", "Berea", "Avon",
    "Willow", "High", "Green", "Stone", "Clear", "Pleasant", "Union",
    "Grand",
]
_CITY_SECOND = [
    "wood", "field", "view", "ville", "ton", " Heights", " Falls",
    " Park", "dale", "burg", " Grove", "land", "ford", " City",
    " Springs", "mont", "side", " Lake", "boro", "port",
]

_BUSINESS_ADJ = [
    "Golden", "Village", "Family", "Metro", "Corner", "Sunrise", "Royal",
    "Lakeside", "Downtown", "Classic", "Friendly", "Premier", "Hometown",
    "Riverside", "Century", "Liberty", "Heritage", "Pioneer", "Summit",
    "Harbor",
]

_LAST_NAMES = [
    "Miller", "Novak", "Kowalski", "Russo", "Schmidt", "Horvath",
    "Janssen", "O'Brien", "Petrov", "Kim", "Nguyen", "Garcia",
    "Johnson", "Walsh", "Bauer", "Costa", "Larsen", "Adams", "Bishop",
    "Carver",
]


def city_name(metro_cell: GridCell) -> str:
    """The synthetic city/locality name for one metro-grid cell.

    >>> city_name(GridCell(10, 20)) == city_name(GridCell(10, 20))
    True
    """
    rng = derive_rng(_NAMING_SEED, "city", metro_cell.ix, metro_cell.iy)
    first = rng.choice(_CITY_FIRST)
    second = rng.choice(_CITY_SECOND)
    return f"{first}{second}".strip()


def business_name(category: str, city: str, index: int) -> str:
    """A plausible business name for the ``index``-th POI of a category.

    Mixes three patterns: "<Adj> <Category>", "<City> <Category>",
    and "<Surname>'s <Category>".
    """
    rng = derive_rng(_NAMING_SEED, "business", category, city, index)
    pattern = rng.randrange(3)
    noun = category.title()
    if pattern == 0:
        return f"{rng.choice(_BUSINESS_ADJ)} {noun}"
    if pattern == 1:
        return f"{city} {noun}"
    return f"{rng.choice(_LAST_NAMES)}'s {noun}"


def person_name(rng_path: List[str]) -> str:
    """A synthetic person name for entity disambiguation scenarios."""
    rng = derive_rng(_NAMING_SEED, "person", *rng_path)
    return f"{rng.choice(_BUSINESS_ADJ)} {rng.choice(_LAST_NAMES)}"
