"""The WebWorld facade: every candidate document the engine can rank.

``WebWorld`` ties together the grid, the POI database, the news pool,
and the entity generators.  It is *scoring-free*: it returns documents
with their generation-time base scores and geographic anchors, and the
engine layers distance decay, location-keyed personalization, and noise
on top.  This split keeps the "what exists on the web" model separate
from "how the engine ranks it" — the paper's findings are claims about
the latter.
"""

from __future__ import annotations

from typing import List, Optional

from repro.geo.coords import LatLon
from repro.queries.model import Query, QueryCategory
from repro.seeding import derive_seed
from repro.web.documents import DocKind, Document, GeoScope
from repro.web.entities import (
    ambiguous_entities,
    city_docs,
    state_docs,
    universal_docs,
)
from repro.web.grid import GeoGrid, GridCell
from repro.web.news import NewsPool
from repro.web.pois import Poi, PoiDatabase, category_for_term
from repro.web.urls import Url, slugify

__all__ = ["WebWorld"]


class WebWorld:
    """A deterministic synthetic web.

    Args:
        seed: World seed.  Two worlds with the same seed are identical.
        cell_miles: Fine-grid cell size (POI generation + snapping).
        metro_miles: Metro-grid cell size (cities, local outlets).
    """

    def __init__(
        self,
        seed: int,
        *,
        cell_miles: float = 1.0,
        metro_miles: float = 8.0,
        locator=None,
    ):
        from repro.geo.locate import US_LOCATOR

        self.seed = seed
        self.grid = GeoGrid(cell_miles)
        self.metro_grid = GeoGrid(metro_miles)
        self.pois = PoiDatabase(derive_seed(seed, "poi-db"), self.grid, self.metro_grid)
        self.news = NewsPool(derive_seed(seed, "news-pool"))
        #: Which country's top-level regions scope state-level content.
        self.locator = locator or US_LOCATOR

    # -- organic candidates -------------------------------------------------

    def universal_candidates(self, query: Query) -> List[Document]:
        """Nationally scoped pages for ``query``."""
        return universal_docs(query)

    def state_candidates(self, query: Query, state: str) -> List[Document]:
        """State-scoped pages for ``query`` as seen from ``state``."""
        return state_docs(query, state)

    def city_candidates(self, query: Query, metro_cell: GridCell) -> List[Document]:
        """City-scoped pages for ``query`` in one metro cell."""
        return city_docs(query, metro_cell)

    def ambiguity_candidates(self, query: Query) -> List[Document]:
        """Pages of same-named non-politicians (common names only)."""
        return [e.document for e in ambiguous_entities(query, self.seed)]

    def poi_candidates(
        self,
        query: Query,
        point: LatLon,
        *,
        radius_miles: float,
        limit: Optional[int] = None,
    ) -> List[Document]:
        """Local-business documents near ``point`` for a local query.

        Returned with ``base_score`` equal to the POI's intrinsic
        quality; the engine subtracts its distance penalty using the
        document's anchor.
        """
        if query.category is not QueryCategory.LOCAL:
            return []
        spec = category_for_term(query.text, is_brand=query.is_brand)
        pois = self.pois.pois_near(spec, point, radius_miles, limit=limit)
        return [self._poi_document(query, poi) for poi in pois]

    def _poi_document(self, query: Query, poi: Poi) -> Document:
        if query.is_brand:
            # Chain outlets live under the chain's own domain.
            url = Url(
                host=f"{slugify(query.text)}.example.com",
                path=f"/locations/{slugify(poi.city)}/{slugify(poi.poi_id)}",
            )
            title = f"{query.text} - {poi.city}"
        else:
            url = poi.url
            title = poi.name
        return Document(
            url=url,
            title=title,
            kind=DocKind.LOCAL_BUSINESS,
            scope=GeoScope.POINT,
            base_score=max(0.0, poi.quality),
            anchor=poi.location,
        )

    # -- meta-card content --------------------------------------------------

    def maps_places(self, query: Query, point: LatLon, count: int) -> List[Document]:
        """The ``count`` nearest places for a Maps card.

        Place links are distinct from organic links (they point into the
        maps product), matching how the paper's parser sees them.
        """
        if query.category is not QueryCategory.LOCAL:
            return []
        spec = category_for_term(query.text, is_brand=query.is_brand)
        pois = self.pois.pois_near(spec, point, radius_miles=6.0, limit=count)
        return [
            Document(
                url=Url(host="maps.example.com", path=f"/place/{slugify(poi.poi_id)}"),
                title=poi.name,
                kind=DocKind.MAP_PLACE,
                scope=GeoScope.POINT,
                base_score=0.0,
                anchor=poi.location,
            )
            for poi in pois
        ]

    def news_articles(
        self,
        query: Query,
        day: int,
        state: Optional[str],
        count: int,
    ) -> List[Document]:
        """The top ``count`` news articles for a News card."""
        articles = self.news.articles_for(query.text, day, state=state)
        return [a.document for a in articles[:count]]
