"""Document model: what the engine indexes and SERPs link to."""

from __future__ import annotations

import enum
import sys
from dataclasses import dataclass
from typing import Optional

from repro.geo.coords import LatLon
from repro.web.urls import Url

__all__ = ["DocKind", "GeoScope", "Document"]


class DocKind(enum.Enum):
    """Coarse document type; drives card rendering and attribution."""

    ORGANIC = "organic"  # an ordinary web page
    LOCAL_BUSINESS = "local-business"  # a POI's own page or listing
    NEWS_ARTICLE = "news"  # a dated news article
    MAP_PLACE = "map-place"  # a place entry inside a Maps card


class GeoScope(enum.Enum):
    """How geographically scoped a document's relevance is."""

    NATIONAL = "national"  # equally relevant everywhere
    STATE = "state"  # relevant within one state
    CITY = "city"  # relevant within one metro cell
    POINT = "point"  # anchored to one coordinate (a POI)


@dataclass(frozen=True)
class Document:
    """One indexable web document.

    Attributes:
        url: Canonical URL; the identity used by all metrics.
        title: Human-readable title (rendered in SERP cards).
        kind: Coarse type (drives card type and attribution).
        scope: Geographic relevance scope.
        base_score: Query-independent quality/topicality score assigned
            at generation time.  The ranking layer adds geo boosts,
            personalization, and noise on top.
        anchor: Physical anchor for ``POINT``-scoped documents.
        state: Home state for ``STATE``-scoped documents.
    """

    url: Url
    title: str
    kind: DocKind
    scope: GeoScope
    base_score: float
    anchor: Optional[LatLon] = None
    state: Optional[str] = None

    def __post_init__(self) -> None:
        if self.scope is GeoScope.POINT and self.anchor is None:
            raise ValueError(f"POINT-scoped document needs an anchor: {self.url}")
        if self.scope is GeoScope.STATE and self.state is None:
            raise ValueError(f"STATE-scoped document needs a state: {self.url}")
        if self.base_score < 0:
            raise ValueError(f"base_score must be non-negative: {self.base_score}")

    @property
    def identity(self) -> str:
        """The string identity used by metrics and dedup.

        Computed once and interned: identities key every hot memo
        (jitter/skew units, card pools, dedup sets), so repeated
        ``str(url)`` formatting and duplicate string storage both cost.
        """
        identity = self.__dict__.get("_identity")
        if identity is None:
            identity = sys.intern(str(self.url))
            object.__setattr__(self, "_identity", identity)
        return identity
