"""URL model.

Search results are compared *by URL* in the paper's metrics, so URLs
are the atoms of the whole analysis.  A tiny structured model keeps
canonicalisation in one place (lower-cased host, no trailing slash
ambiguity) so that two pipelines never disagree about equality.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

__all__ = ["Url"]

_HOST_RE = re.compile(r"^[a-z0-9]([a-z0-9-]*[a-z0-9])?(\.[a-z0-9]([a-z0-9-]*[a-z0-9])?)+$")
_SLUG_RE = re.compile(r"[^a-z0-9]+")


def slugify(text: str) -> str:
    """Lower-case ``text`` and squeeze non-alphanumerics to hyphens.

    >>> slugify("Elementary School #3, Cleveland!")
    'elementary-school-3-cleveland'
    """
    return _SLUG_RE.sub("-", text.lower()).strip("-")


@dataclass(frozen=True, order=True)
class Url:
    """An absolute http(s) URL split into host and path."""

    host: str
    path: str = "/"

    def __post_init__(self) -> None:
        host = self.host.lower()
        if not _HOST_RE.match(host):
            raise ValueError(f"malformed host: {self.host!r}")
        object.__setattr__(self, "host", host)
        if not self.path.startswith("/"):
            raise ValueError(f"path must start with '/': {self.path!r}")

    @classmethod
    def parse(cls, text: str) -> "Url":
        """Parse an absolute URL string (scheme optional)."""
        stripped = re.sub(r"^https?://", "", text.strip())
        host, _, rest = stripped.partition("/")
        return cls(host=host, path="/" + rest if rest else "/")

    @property
    def domain(self) -> str:
        """The registrable domain (last two labels of the host)."""
        labels = self.host.split(".")
        return ".".join(labels[-2:])

    def __str__(self) -> str:
        return f"https://{self.host}{self.path}"
