"""Deterministic fault schedules.

The paper's 30-day crawl ran 44 PhantomJS machines that crashed, hung,
and got rate-limited; the authors treat failed loads as missing data
(§3).  To prove our crawl and serve layers survive the same abuse, a
:class:`FaultPlan` describes *which* failures to inject and *how
often* — and, critically, does so **deterministically**: every
injection decision is a pure function of the plan seed and the request
**nonce** (already a deterministic function of browser identity and
per-browser request ordinal, see :mod:`repro.core.browser`).  Keying
on the nonce rather than a shared counter means the schedule of
injected faults is independent of how requests from different
treatments interleave — the same property that makes the parallel
executor byte-identical, extended to chaos: a fault plan injects the
*same* faults into the *same* requests whether the study runs
sequentially, sharded over N workers, or killed and resumed.

Two vocabularies live here:

* :class:`FaultKind` — what the injector can do to a request;
* :class:`FailureKind` — the crawl-failure taxonomy the runner records
  (a superset: breakers opening and gateway sheds are failures nobody
  injected).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, fields
from typing import Dict, Optional, Tuple

from repro.seeding import stable_unit

__all__ = ["FaultKind", "FailureKind", "FaultPlan", "NAMED_PLANS", "FAULT_TO_FAILURE"]


class FaultKind(enum.Enum):
    """One thing the injector can do to a request."""

    BROWSER_CRASH = "browser-crash"
    """The headless browser process dies mid-request (PhantomJS's
    favourite trick); the runner restarts it and retries."""

    DNS_FAILURE = "dns-failure"
    """Resolution of the search hostname fails transiently."""

    TIMEOUT = "timeout"
    """The request never completes; the client gives up."""

    SERVER_ERROR = "server-error"
    """The frontend answers a transient 5xx without processing the
    request (it never reaches ranking or session state)."""

    TRUNCATED_SERP = "truncated-serp"
    """The response body is cut off mid-page — the bytes arrive ``200
    OK`` but the saved HTML is not a complete SERP."""

    RATE_LIMIT_STORM = "rate-limit-storm"
    """A window of virtual time during which *every* request gets the
    CAPTCHA interstitial, modelling an engine-wide anti-bot event."""

    WORKER_CRASH = "worker-crash"
    """The whole crawl *worker process* dies (OOM-killed machine in the
    paper's fleet).  Fires only under supervised execution — the
    supervisor detects the death and re-executes the shard; see
    :mod:`repro.supervise`."""

    WORKER_STALL = "worker-stall"
    """The crawl worker process hangs without dying (wedged browser,
    stuck NFS mount).  Fires only under supervised execution — the
    supervisor's liveness deadline catches it."""

    GATEWAY_CRASH = "gateway-crash"
    """A whole serving shard dies: process gone, cache lost.  The fleet
    reroutes to replica shards and anti-entropy backfills the cache
    when the shard rejoins.  Serve-side; see :mod:`repro.serve.fleet`."""

    REPLICA_BLACKOUT = "replica-blackout"
    """Every engine replica behind one shard becomes unreachable (rack
    power event); the shard's cache survives and can serve stale."""

    CACHE_WIPE = "cache-wipe"
    """A shard's SERP cache is flushed (bad deploy, memcache restart)
    without downtime — the shard keeps answering, cold."""

    SHARD_SLOWDOWN = "shard-slowdown"
    """One shard's replicas service requests several times slower for a
    window (noisy neighbour, GC storm); queues back up and shed."""

    FRONT_PARTITION = "front-partition"
    """The front tier loses the route to a healthy shard: the shard and
    its cache are fine, but requests cannot reach it until the
    partition heals (no backfill needed on recovery)."""


class FailureKind(enum.Enum):
    """Taxonomy of crawl failures (``CrawlFailure.kind``)."""

    RATE_LIMITED = "rate-limited"
    """The engine's own per-IP limiter answered CAPTCHAs until retries
    ran out (the only failure the seed runner knew)."""

    RATE_LIMIT_STORM = "rate-limit-storm"
    BROWSER_CRASH = "browser-crash"
    DNS_FAILURE = "dns-failure"
    TIMEOUT = "timeout"
    SERVER_ERROR = "server-error"
    MALFORMED_SERP = "malformed-serp"
    """The page came back 200 but did not parse as a complete SERP."""

    OVERLOADED = "overloaded"
    """The serving gateway shed the request (every queue full)."""

    BREAKER_OPEN = "breaker-open"
    """The client-side circuit breaker was open; no request was sent."""

    SHARD_QUARANTINED = "shard-quarantined"
    """The supervisor gave up on a deterministically failing shard;
    every remaining round × treatment cell is recorded as one of these
    so the coverage hole stays visible (see :mod:`repro.supervise`)."""


#: Which failure each injected fault surfaces as.
FAULT_TO_FAILURE: Dict[FaultKind, FailureKind] = {
    FaultKind.BROWSER_CRASH: FailureKind.BROWSER_CRASH,
    FaultKind.DNS_FAILURE: FailureKind.DNS_FAILURE,
    FaultKind.TIMEOUT: FailureKind.TIMEOUT,
    FaultKind.SERVER_ERROR: FailureKind.SERVER_ERROR,
    FaultKind.TRUNCATED_SERP: FailureKind.MALFORMED_SERP,
    FaultKind.RATE_LIMIT_STORM: FailureKind.RATE_LIMIT_STORM,
}

#: Evaluation order for per-request gates: at most one fault fires per
#: attempt, the first whose gate passes.
_GATE_ORDER: Tuple[Tuple[str, FaultKind], ...] = (
    ("crash_rate", FaultKind.BROWSER_CRASH),
    ("dns_failure_rate", FaultKind.DNS_FAILURE),
    ("timeout_rate", FaultKind.TIMEOUT),
    ("server_error_rate", FaultKind.SERVER_ERROR),
)

#: Evaluation order for serve-side gates, same contract: at most one
#: serve fault per request, the first whose gate passes.
_SERVE_GATE_ORDER: Tuple[Tuple[str, FaultKind], ...] = (
    ("gateway_crash_rate", FaultKind.GATEWAY_CRASH),
    ("replica_blackout_rate", FaultKind.REPLICA_BLACKOUT),
    ("cache_wipe_rate", FaultKind.CACHE_WIPE),
    ("shard_slowdown_rate", FaultKind.SHARD_SLOWDOWN),
    ("front_partition_rate", FaultKind.FRONT_PARTITION),
)


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, reproducible schedule of injected failures.

    Per-request rates are probabilities gated on
    ``stable_unit(seed, kind, nonce)`` — independent draws per fault
    kind per request attempt.  Retried attempts carry fresh nonces, so
    a fault is transient by construction: the retry re-rolls the dice.

    Storms are *time*-keyed instead: every ``storm_period_minutes`` of
    virtual time, a window of ``storm_minutes`` opens (phase derived
    from the seed) during which every request is answered with the
    CAPTCHA interstitial.
    """

    seed: int = 0
    crash_rate: float = 0.0
    dns_failure_rate: float = 0.0
    timeout_rate: float = 0.0
    server_error_rate: float = 0.0
    truncation_rate: float = 0.0
    storm_period_minutes: Optional[float] = None
    storm_minutes: float = 2.0
    worker_crash_rate: float = 0.0
    """Per-request probability the whole worker process dies before
    dispatching (supervised runs only; inert otherwise)."""
    worker_stall_rate: float = 0.0
    """Per-request probability the worker process hangs before
    dispatching (supervised runs only; inert otherwise)."""
    gateway_crash_rate: float = 0.0
    """Per-request probability the primary shard for this request's key
    dies (cache and all; serve fleet only, inert elsewhere)."""
    replica_blackout_rate: float = 0.0
    """Per-request probability every replica behind the primary shard
    goes dark while its cache survives."""
    cache_wipe_rate: float = 0.0
    """Per-request probability the primary shard's cache is flushed."""
    shard_slowdown_rate: float = 0.0
    """Per-request probability the primary shard's replicas slow down
    by ``slowdown_factor`` for an outage window."""
    front_partition_rate: float = 0.0
    """Per-request probability the front tier loses its route to the
    primary shard for an outage window."""
    serve_outage_minutes: float = 30.0
    """Base duration (virtual minutes) of serve-side outages; each
    outage draws a deterministic factor in ``[0.5, 1.5)`` of this."""
    slowdown_factor: float = 4.0
    """Service-time multiplier applied during a shard slow-down."""

    def __post_init__(self) -> None:
        for field in fields(self):
            if field.name.endswith("_rate"):
                rate = getattr(self, field.name)
                if not 0.0 <= rate <= 1.0:
                    raise ValueError(f"{field.name} must be in [0, 1], got {rate}")
        if self.storm_period_minutes is not None:
            if self.storm_period_minutes <= 0:
                raise ValueError("storm_period_minutes must be positive")
            if not 0 < self.storm_minutes < self.storm_period_minutes:
                raise ValueError(
                    "storm_minutes must be positive and shorter than the period"
                )
        if self.serve_outage_minutes <= 0:
            raise ValueError("serve_outage_minutes must be positive")
        if self.slowdown_factor <= 1.0:
            raise ValueError("slowdown_factor must exceed 1")

    # -- decisions ------------------------------------------------------------

    def request_fault(self, nonce: int) -> Optional[FaultKind]:
        """The pre-dispatch fault injected into this attempt, if any."""
        for rate_name, kind in _GATE_ORDER:
            rate = getattr(self, rate_name)
            if rate > 0.0 and stable_unit("fault", self.seed, kind.value, nonce) < rate:
                return kind
        return None

    def worker_fault(
        self, nonce: int, generation: int
    ) -> Optional[FaultKind]:
        """The process-level fault this attempt triggers, if any.

        Keyed on the request nonce (interleaving-independent, like
        every other gate) *and* the worker incarnation ``generation``:
        a respawned worker re-rolls the dice on the request that killed
        its predecessor, so plan-driven crashes are recoverable rather
        than deterministic quarantine bait.  Only consulted inside
        supervised workers.
        """
        for kind, rate in (
            (FaultKind.WORKER_CRASH, self.worker_crash_rate),
            (FaultKind.WORKER_STALL, self.worker_stall_rate),
        ):
            if rate > 0.0 and (
                stable_unit("worker-fault", self.seed, kind.value, nonce, generation)
                < rate
            ):
                return kind
        return None

    def serve_fault(self, nonce: int) -> Optional[FaultKind]:
        """The serve-side fault this request triggers, if any.

        Keyed on the request nonce like every crawl gate, so a chaos
        schedule is a pure function of the offered load — independent
        of fleet size, replication factor, or how shards interleave.
        """
        for rate_name, kind in _SERVE_GATE_ORDER:
            rate = getattr(self, rate_name)
            if rate > 0.0 and (
                stable_unit("serve-fault", self.seed, kind.value, nonce) < rate
            ):
                return kind
        return None

    def serve_outage_duration(self, nonce: int, kind: FaultKind) -> float:
        """Virtual minutes this outage lasts, in ``[0.5, 1.5) ×`` base."""
        factor = 0.5 + stable_unit(
            "serve-outage", self.seed, kind.value, nonce
        )
        return self.serve_outage_minutes * factor

    def truncates(self, nonce: int) -> bool:
        """Whether this attempt's response body gets cut off."""
        return self.truncation_rate > 0.0 and (
            stable_unit("fault", self.seed, FaultKind.TRUNCATED_SERP.value, nonce)
            < self.truncation_rate
        )

    def truncation_fraction(self, nonce: int) -> float:
        """How much of the response body survives, in ``[0.05, 0.85)``."""
        return 0.05 + 0.8 * stable_unit(
            "fault-cut", self.seed, FaultKind.TRUNCATED_SERP.value, nonce
        )

    def in_storm(self, timestamp_minutes: float) -> bool:
        """Whether a rate-limit storm is active at this virtual instant."""
        period = self.storm_period_minutes
        if period is None:
            return False
        phase = stable_unit("storm-phase", self.seed) * period
        return (timestamp_minutes + phase) % period < self.storm_minutes

    # -- introspection -----------------------------------------------------------

    @property
    def request_fault_rate(self) -> float:
        """Probability an attempt draws at least one per-request fault.

        Gates are independent draws evaluated in order, so the combined
        rate is ``1 - prod(1 - rate)`` over all per-request gates
        (storms are time-keyed and excluded).
        """
        survive = 1.0
        for rate_name, _ in _GATE_ORDER:
            survive *= 1.0 - getattr(self, rate_name)
        survive *= 1.0 - self.truncation_rate
        return 1.0 - survive

    @property
    def serve_fault_rate(self) -> float:
        """Probability a served request draws at least one serve fault."""
        survive = 1.0
        for rate_name, _ in _SERVE_GATE_ORDER:
            survive *= 1.0 - getattr(self, rate_name)
        return 1.0 - survive

    @property
    def has_worker_faults(self) -> bool:
        """True when the plan can kill or hang whole worker processes."""
        return self.worker_crash_rate > 0.0 or self.worker_stall_rate > 0.0

    @property
    def has_serve_faults(self) -> bool:
        """True when the plan can hurt the serving fleet."""
        return self.serve_fault_rate > 0.0

    @property
    def is_zero(self) -> bool:
        """True when the plan injects nothing (overhead-measurement mode)."""
        return (
            self.request_fault_rate == 0.0
            and self.storm_period_minutes is None
            and not self.has_worker_faults
            and not self.has_serve_faults
        )

    @classmethod
    def named(cls, name: str, *, seed: int = 0) -> "FaultPlan":
        """Look up a registered plan, reseeded."""
        try:
            template = NAMED_PLANS[name]
        except KeyError:
            raise ValueError(
                f"unknown fault plan {name!r}; known: {sorted(NAMED_PLANS)}"
            ) from None
        from dataclasses import replace

        return replace(template, seed=seed)


#: Registered plans, from benign to hostile.  ``chaos`` injects >10%
#: request-level failures — the acceptance bar for resume parity.
NAMED_PLANS: Dict[str, FaultPlan] = {
    "calm": FaultPlan(),
    "flaky-network": FaultPlan(
        dns_failure_rate=0.04,
        timeout_rate=0.04,
        server_error_rate=0.02,
        truncation_rate=0.02,
    ),
    "crashy-browser": FaultPlan(crash_rate=0.08, truncation_rate=0.03),
    "storm": FaultPlan(
        dns_failure_rate=0.01,
        storm_period_minutes=120.0,
        storm_minutes=3.0,
    ),
    "chaos": FaultPlan(
        crash_rate=0.03,
        dns_failure_rate=0.04,
        timeout_rate=0.04,
        server_error_rate=0.03,
        truncation_rate=0.03,
        storm_period_minutes=180.0,
        storm_minutes=2.0,
    ),
    "unstable-workers": FaultPlan(
        dns_failure_rate=0.02,
        timeout_rate=0.02,
        worker_crash_rate=0.02,
        worker_stall_rate=0.004,
    ),
    "serve-chaos": FaultPlan(
        gateway_crash_rate=0.002,
        replica_blackout_rate=0.003,
        cache_wipe_rate=0.002,
        shard_slowdown_rate=0.004,
        front_partition_rate=0.003,
        serve_outage_minutes=25.0,
        slowdown_factor=4.0,
    ),
}
