"""The fault injector: a drop-in :class:`~repro.core.browser.Network`.

:class:`FaultyNetwork` subclasses ``Network`` and consults a
:class:`~repro.faults.plan.FaultPlan` on every ``submit``:

* **pre-dispatch** faults (browser crash, DNS failure, timeout,
  transient 5xx, rate-limit storm) short-circuit *before* the engine —
  the engine's rate limiter and session store never see the request,
  which is exactly how a dropped connection behaves and what keeps
  injected runs deterministic: engine state evolves only from requests
  that actually arrive;
* **truncation** applies *after* the engine answered ``200 OK``: the
  bytes were served but the saved page is cut off mid-body.  The cut
  always lands before the SERP footer (where the parser reads the
  day/datacenter spans), so a truncated page is *detectably*
  incomplete — every injected truncation surfaces as a structured
  ``malformed-serp`` failure rather than silently polluting the
  dataset.

Every decision is keyed on the request **nonce** (a deterministic
function of browser identity and per-browser request ordinal), so the
injected schedule is identical sequentially, sharded over N workers,
and across checkpoint/resume.

:class:`FaultStats` carries the chaos report's ledger.  The runner
classifies every failed attempt as either *absorbed* (a retry
followed and the round ultimately produced a record) or *terminal*
(the round ended as a :class:`~repro.core.runner.CrawlFailure`), so
for every injected kind the books must balance::

    injected[kind] == absorbed[kind] + terminal[kind]

— the "all injected faults accounted for" acceptance check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.browser import Network
from repro.engine.render import render_captcha
from repro.engine.request import ResponseStatus, SearchResponse
from repro.faults.plan import FailureKind, FaultKind, FaultPlan
from repro.geo.coords import LatLon
from repro.net.dns import ResolutionError
from repro.net.machines import Machine
from repro.obs.metrics import MetricSet

__all__ = [
    "InjectedFault",
    "BrowserCrash",
    "RequestTimeout",
    "InjectedDNSFailure",
    "FaultStats",
    "FaultyNetwork",
]


class InjectedFault(Exception):
    """Base class for faults raised (not returned) by the injector."""


class BrowserCrash(InjectedFault):
    """The headless browser process died mid-request."""


class RequestTimeout(InjectedFault):
    """The request never completed; the client gave up waiting."""


class InjectedDNSFailure(InjectedFault, ResolutionError):
    """Transient resolution failure for the search hostname.

    Subclasses :class:`~repro.net.dns.ResolutionError` so the runner's
    DNS handling covers injected and organic failures with one branch.
    """


_SERVER_ERROR_HTML = (
    "<!DOCTYPE html><html><head><title>500 Internal Server Error</title></head>"
    "<body><h1>500</h1><p>The server encountered a transient error.</p></body></html>"
)


@dataclass
class FaultStats(MetricSet):
    """The chaos ledger: what was injected and what became of it.

    All dict keys are :class:`FailureKind` *values* (plain strings) so
    snapshots serialize straight to JSON — except ``retry_histogram``,
    whose int keys round-trip via ``_INT_KEYED_FIELDS``.  Counters are
    plain sums and merge associatively across shards, like
    :class:`~repro.core.runner.CrawlStats`; snapshot/merge/restore come
    from :class:`~repro.obs.metrics.MetricSet`.
    """

    _INT_KEYED_FIELDS = ("retry_histogram",)

    injected: Dict[str, int] = field(default_factory=dict)
    absorbed: Dict[str, int] = field(default_factory=dict)
    """Failed attempts that a later attempt recovered from."""
    terminal: Dict[str, int] = field(default_factory=dict)
    """Failed attempts that ended their round as a ``CrawlFailure``."""
    retry_histogram: Dict[int, int] = field(default_factory=dict)
    """attempts-used (1-based) → number of requests that used that many."""

    def record_injected(self, kind: FailureKind) -> None:
        self.injected[kind.value] = self.injected.get(kind.value, 0) + 1

    def record_absorbed(self, kind: FailureKind) -> None:
        self.absorbed[kind.value] = self.absorbed.get(kind.value, 0) + 1

    def record_terminal(self, kind: FailureKind) -> None:
        self.terminal[kind.value] = self.terminal.get(kind.value, 0) + 1

    def record_attempts(self, attempts: int) -> None:
        self.retry_histogram[attempts] = self.retry_histogram.get(attempts, 0) + 1

    # -- reporting ----------------------------------------------------------

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    @property
    def total_absorbed(self) -> int:
        return sum(self.absorbed.values())

    @property
    def total_terminal(self) -> int:
        return sum(self.terminal.values())

    def unaccounted(self) -> Dict[str, int]:
        """``injected - absorbed - terminal`` per kind, nonzero entries only.

        An empty dict means every injected fault is accounted for in
        the failure ledger — the acceptance invariant.  (Kinds that can
        also occur organically, like ``rate-limited``, are never
        injected under that name and so never appear here.)
        """
        deltas: Dict[str, int] = {}
        for kind, count in self.injected.items():
            delta = count - self.absorbed.get(kind, 0) - self.terminal.get(kind, 0)
            if delta:
                deltas[kind] = delta
        return deltas


class FaultyNetwork(Network):
    """A :class:`Network` that injects a :class:`FaultPlan`'s schedule.

    With a zero plan this is byte-for-byte a plain ``Network`` — the
    overhead benchmark pins that down by digest.
    """

    #: Supervised workers install their harness here (duck-typed: an
    #: object with ``generation``, ``crash()``, and ``stall()``).  When
    #: set and the plan carries worker-fault rates, the process-level
    #: gates fire before any per-request fault — modelling the machine
    #: dying, not the request failing.  Process deaths are accounted in
    #: the supervision ledger (parent-side), never in ``fault_stats``:
    #: the dying process cannot persist a counter, and its successor
    #: restores state from before the fatal request.
    worker_context = None

    def __init__(self, resolver, engine, plan: FaultPlan, *, stats: Optional[FaultStats] = None):
        super().__init__(resolver, engine)
        self.plan = plan
        self.fault_stats = stats if stats is not None else FaultStats()

    def submit(
        self,
        machine: Machine,
        query_text: str,
        timestamp_minutes: float,
        *,
        gps: Optional[LatLon],
        cookie_id: Optional[str],
        user_agent: str,
        nonce: int,
        page: int = 0,
    ) -> SearchResponse:
        plan = self.plan
        context = self.worker_context
        if context is not None and plan.has_worker_faults:
            worker_kind = plan.worker_fault(nonce, context.generation)
            if worker_kind is FaultKind.WORKER_CRASH:
                context.crash()
            elif worker_kind is FaultKind.WORKER_STALL:
                context.stall()
        if plan.in_storm(timestamp_minutes):
            # Engine-wide anti-bot event: the CAPTCHA interstitial is
            # served from the edge, before the request reaches the
            # frontend (so no rate-limiter or session state advances).
            self._record_injection(FailureKind.RATE_LIMIT_STORM, timestamp_minutes)
            return SearchResponse(
                status=ResponseStatus.RATE_LIMITED,
                html=render_captcha(query_text, self.engine.dialect),
            )
        kind = plan.request_fault(nonce)
        if kind is FaultKind.BROWSER_CRASH:
            self._record_injection(FailureKind.BROWSER_CRASH, timestamp_minutes)
            raise BrowserCrash(f"injected browser crash (nonce {nonce:#x})")
        if kind is FaultKind.DNS_FAILURE:
            self._record_injection(FailureKind.DNS_FAILURE, timestamp_minutes)
            raise InjectedDNSFailure(self.engine.dialect.hostname)
        if kind is FaultKind.TIMEOUT:
            self._record_injection(FailureKind.TIMEOUT, timestamp_minutes)
            raise RequestTimeout(f"injected timeout (nonce {nonce:#x})")
        if kind is FaultKind.SERVER_ERROR:
            self._record_injection(FailureKind.SERVER_ERROR, timestamp_minutes)
            return SearchResponse(
                status=ResponseStatus.SERVER_ERROR, html=_SERVER_ERROR_HTML
            )
        response = super().submit(
            machine,
            query_text,
            timestamp_minutes,
            gps=gps,
            cookie_id=cookie_id,
            user_agent=user_agent,
            nonce=nonce,
            page=page,
        )
        if response.ok and plan.truncates(nonce):
            self._record_injection(FailureKind.MALFORMED_SERP, timestamp_minutes)
            return SearchResponse(
                status=response.status,
                html=self._truncate(response.html, nonce),
            )
        return response

    def _record_injection(self, kind: FailureKind, timestamp_minutes: float) -> None:
        """Book an injected fault and mark it on the current span."""
        self.fault_stats.record_injected(kind)
        if self.tracer.enabled:
            self.tracer.event(
                "fault.injected", at=timestamp_minutes, kind=kind.value
            )

    def _truncate(self, html: str, nonce: int) -> str:
        """Cut the page off somewhere before the footer.

        The footer carries the day/datacenter spans the parser needs to
        call a page complete, so cutting ahead of it guarantees the
        truncation is *detectable* — either the parse fails outright or
        the parsed page fails the completeness check.
        """
        anchor = html.find("<footer")
        if anchor < 0:  # unreachable for rendered SERPs; stay safe
            anchor = len(html)
        keep = max(1, int(anchor * self.plan.truncation_fraction(nonce)))
        return html[:keep]
