"""Round-granular crawl checkpoints.

A 30-day crawl that loses everything when a process dies is a 30-day
bet.  ``Study.run(checkpoint=path)`` journals the run to a single
append-only JSONL file so a killed study resumes where it stopped —
and, because every layer of engine state is snapshotted alongside the
data, the resumed run is **byte-identical** to an uninterrupted one.

File layout (one JSON object per line)::

    {"kind": "header", "version": 1, "workers": W, "fingerprint": {...}}
    {"kind": "round", "ordinal": 0, "outcomes": [{"r": {...}}, {"f": {...}}, ...]}
    {"kind": "state", "ordinal": 0, "worker": 0, "state": {...}}
    ... one "round" line + W "state" lines per completed round ...

* ``outcomes`` hold serialized :class:`~repro.core.datastore.SerpRecord`
  dicts (``"r"``) and ``CrawlFailure`` dicts (``"f"``) in canonical
  treatment order — exactly the order a live run appends them, so
  re-feeding them reconstructs the dataset, failure log, and sink
  stream byte-for-byte.
* ``state`` is the worker's full post-round snapshot
  (``Study.capture_state()``: crawl/fault stats, browser counters,
  engine session + rate-limiter state, gateway queues, breakers).

A round is **durable** once its round line *and* all W state lines are
on disk (each round's lines are written, then flushed and fsynced,
before the outcomes are released to the caller's sink).  On resume the
loader takes the longest durable prefix, truncates any partial tail
(the write that was in flight when the process died), verifies the
header fingerprint against the current study configuration, and hands
back the journaled outcomes plus the last round's worker states.

This module is deliberately ignorant of study objects: it speaks JSON
dicts only.  (De)serializing records and snapshots is the runner's
job, which keeps the dependency arrow pointing ``core.runner →
faults.checkpoint`` with no cycle.

Since the :mod:`repro.store` migration every line is CRC32-framed
(``~F1 <len> <crc> <payload>``) so torn writes and bit flips are
*detected*, not silently parsed; the payload inside the frame is the
same canonical JSON as before, and legacy unframed journals still
load.  A frame that fails its checksum **before** later valid data is
interior corruption and raises
:class:`~repro.store.record_log.StoreCorruption` instead of quietly
shortening the run — ``repro fsck --repair`` is the explicit way out.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.store.fileops import current_ops
from repro.store.record_log import RecordLogWriter, read_log

__all__ = [
    "CHECKPOINT_VERSION",
    "CheckpointError",
    "CheckpointWriter",
    "ResumeState",
    "load_checkpoint",
]

CHECKPOINT_VERSION = 1


class CheckpointError(RuntimeError):
    """The checkpoint file cannot be used with this study."""


@dataclass
class ResumeState:
    """What a durable checkpoint prefix contains."""

    next_ordinal: int = 0
    """First round that still needs to run."""
    rounds: List[List[dict]] = field(default_factory=list)
    """Per completed round: raw outcome dicts in canonical order."""
    worker_states: Dict[int, dict] = field(default_factory=dict)
    """Worker id → state snapshot at round ``next_ordinal - 1``."""


class CheckpointWriter:
    """Appends durable round + state lines to a checkpoint journal."""

    def __init__(self, path: str, log: RecordLogWriter):
        self.path = path
        self._log = log

    @classmethod
    def create(cls, path: str, header: dict) -> "CheckpointWriter":
        """Start a fresh journal (truncating any existing file).

        The parent directory is fsynced so the journal's directory
        entry — not just its bytes — survives a crash.
        """
        writer = cls(path, RecordLogWriter.create(path))
        writer._write_line({"kind": "header", **header})
        writer.flush()
        return writer

    @classmethod
    def append_to(cls, path: str) -> "CheckpointWriter":
        """Reopen an existing (already truncated-to-durable) journal."""
        return cls(path, RecordLogWriter.append_to(path))

    def append_round(
        self, ordinal: int, outcomes: List[dict], states: Dict[int, dict]
    ) -> None:
        """Journal one completed round and every worker's post-round state.

        The round is durable — and its outcomes may be released to the
        caller's sink — only after this returns.
        """
        self._write_line({"kind": "round", "ordinal": ordinal, "outcomes": outcomes})
        for worker_id in sorted(states):
            self._write_line(
                {
                    "kind": "state",
                    "ordinal": ordinal,
                    "worker": worker_id,
                    "state": states[worker_id],
                }
            )
        self.flush()

    def _write_line(self, payload: dict) -> None:
        self._log.append(json.dumps(payload, sort_keys=True))

    def flush(self) -> None:
        self._log.commit()

    def close(self) -> None:
        self._log.close()


def load_checkpoint(
    path: str, *, expected_fingerprint: dict, workers: int
) -> Optional[ResumeState]:
    """Load the durable prefix of a journal, truncating any partial tail.

    Returns ``None`` when ``path`` does not exist (a fresh run).
    Raises :class:`CheckpointError` when the file exists but cannot be
    resumed: unreadable header, version/fingerprint mismatch, or a
    worker-count mismatch (shard state snapshots only fit the worker
    layout that produced them).  Interior corruption — a record that
    fails its checksum before later valid data — raises
    :class:`~repro.store.record_log.StoreCorruption` instead of being
    silently absorbed into a shorter resume.
    """
    if not os.path.exists(path):
        return None
    # Torn tails (the write in flight at death) are dropped here and
    # truncated below; framed and legacy unframed lines both load.
    lines = read_log(path)
    if not lines:
        raise CheckpointError(f"checkpoint {path!r} has no readable header")

    header, header_end = lines[0]
    if header.get("kind") != "header":
        raise CheckpointError(f"checkpoint {path!r} does not start with a header")
    if header.get("version") != CHECKPOINT_VERSION:
        raise CheckpointError(
            f"checkpoint {path!r} is version {header.get('version')}, "
            f"expected {CHECKPOINT_VERSION}"
        )
    if header.get("workers") != workers:
        raise CheckpointError(
            f"checkpoint {path!r} was written by a {header.get('workers')}-worker "
            f"run and cannot resume with workers={workers}: per-worker state "
            "snapshots only fit the shard layout that produced them"
        )
    if header.get("fingerprint") != expected_fingerprint:
        raise CheckpointError(
            f"checkpoint {path!r} was written by a different study "
            "configuration; refusing to mix datasets"
        )

    # Longest durable prefix: rounds 0..n-1, each with all worker states.
    rounds: List[List[dict]] = []
    worker_states: Dict[int, dict] = {}
    durable_end = header_end
    pending_round: Optional[List[dict]] = None
    pending_states: Dict[int, dict] = {}
    for payload, end in lines[1:]:
        kind = payload.get("kind")
        if kind == "round":
            if payload.get("ordinal") != len(rounds) or pending_round is not None:
                break  # out-of-order journal: stop at the durable prefix
            pending_round = payload["outcomes"]
            pending_states = {}
        elif kind == "state":
            if pending_round is None or payload.get("ordinal") != len(rounds):
                break
            pending_states[int(payload["worker"])] = payload["state"]
        else:
            break
        if pending_round is not None and len(pending_states) == workers:
            rounds.append(pending_round)
            worker_states = pending_states
            durable_end = end
            pending_round = None
            pending_states = {}

    # Drop anything after the durable prefix so appends start clean.
    actual_size = os.path.getsize(path)
    if actual_size > durable_end:
        current_ops().truncate(path, durable_end)

    return ResumeState(
        next_ordinal=len(rounds), rounds=rounds, worker_states=worker_states
    )
