"""Circuit breakers over virtual time.

A long-running crawl that keeps hammering an endpoint which has been
failing for the last ten minutes wastes its request budget and digs the
rate-limit hole deeper (exactly what got the paper's vantage points
blocked).  The classic remedy is a per-endpoint circuit breaker:

* **CLOSED** — traffic flows; consecutive failures are counted.
* **OPEN** — after ``failure_threshold`` consecutive failures the
  breaker trips: requests fail fast (no request is sent) until
  ``cooldown_minutes`` of virtual time pass.
* **HALF_OPEN** — after the cooldown, a limited number of probe
  requests are let through.  A probe success closes the breaker; a
  probe failure re-opens it for another cooldown.

Everything is keyed on *virtual* minutes (the study clock), so breaker
behaviour is deterministic and reproducible.  The crawl runner keys one
breaker per client IP (per crawl machine) — per-IP state is exactly the
granularity the machine-granular shard plan preserves, so breakers make
identical decisions sequentially, sharded, and across checkpoint
resume.  The serving gateway keys one breaker per replica
(per datacenter).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Hashable, List, Tuple

__all__ = ["BreakerState", "CircuitBreaker", "BreakerBoard", "BreakerTransition"]


class BreakerState(enum.Enum):
    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerTransition:
    """One state change, for the chaos report."""

    key: str
    minutes: float
    old: BreakerState
    new: BreakerState


@dataclass
class CircuitBreaker:
    """One endpoint's breaker (see module docstring for the machine)."""

    failure_threshold: int = 4
    cooldown_minutes: float = 3.0
    half_open_probes: int = 1

    state: BreakerState = BreakerState.CLOSED
    consecutive_failures: int = 0
    opened_at_minutes: float = 0.0
    probes_in_flight: int = 0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        if self.cooldown_minutes <= 0:
            raise ValueError("cooldown_minutes must be positive")
        if self.half_open_probes < 1:
            raise ValueError("half_open_probes must be >= 1")

    def allow(self, now_minutes: float) -> bool:
        """Whether a request may be sent now (may move OPEN → HALF_OPEN)."""
        if self.state is BreakerState.OPEN:
            if now_minutes - self.opened_at_minutes >= self.cooldown_minutes:
                self._transition(BreakerState.HALF_OPEN, now_minutes)
                self.probes_in_flight = 0
            else:
                return False
        if self.state is BreakerState.HALF_OPEN:
            if self.probes_in_flight >= self.half_open_probes:
                return False
            self.probes_in_flight += 1
        return True

    def record_success(self, now_minutes: float) -> None:
        self.consecutive_failures = 0
        if self.state is not BreakerState.CLOSED:
            self._transition(BreakerState.CLOSED, now_minutes)
        self.probes_in_flight = 0

    def record_failure(self, now_minutes: float) -> None:
        self.consecutive_failures += 1
        if self.state is BreakerState.HALF_OPEN or (
            self.state is BreakerState.CLOSED
            and self.consecutive_failures >= self.failure_threshold
        ):
            self._transition(BreakerState.OPEN, now_minutes)
            self.opened_at_minutes = now_minutes
            self.probes_in_flight = 0

    # set by the owning board so transitions carry their key
    _log: List[BreakerTransition] = field(default_factory=list, repr=False)
    _key: str = ""

    def _transition(self, new: BreakerState, now_minutes: float) -> None:
        self._log.append(
            BreakerTransition(key=self._key, minutes=now_minutes, old=self.state, new=new)
        )
        self.state = new


@dataclass
class BreakerBoard:
    """A keyed family of breakers sharing configuration and a log."""

    failure_threshold: int = 4
    cooldown_minutes: float = 3.0
    half_open_probes: int = 1
    _breakers: Dict[Hashable, CircuitBreaker] = field(default_factory=dict)
    _transitions: List[BreakerTransition] = field(default_factory=list)

    def _get(self, key: Hashable) -> CircuitBreaker:
        breaker = self._breakers.get(key)
        if breaker is None:
            breaker = CircuitBreaker(
                failure_threshold=self.failure_threshold,
                cooldown_minutes=self.cooldown_minutes,
                half_open_probes=self.half_open_probes,
            )
            breaker._log = self._transitions
            breaker._key = str(key)
            self._breakers[key] = breaker
        return breaker

    def allow(self, key: Hashable, now_minutes: float) -> bool:
        return self._get(key).allow(now_minutes)

    def record_success(self, key: Hashable, now_minutes: float) -> None:
        self._get(key).record_success(now_minutes)

    def record_failure(self, key: Hashable, now_minutes: float) -> None:
        self._get(key).record_failure(now_minutes)

    def state_of(self, key: Hashable) -> BreakerState:
        breaker = self._breakers.get(key)
        return breaker.state if breaker is not None else BreakerState.CLOSED

    def transitions(self) -> List[BreakerTransition]:
        """All state changes, in virtual-time order of occurrence."""
        return list(self._transitions)

    def transition_count(self) -> int:
        """Length of the transition log (cheap new-transition detection)."""
        return len(self._transitions)

    def open_count(self) -> int:
        return sum(
            1 for b in self._breakers.values() if b.state is not BreakerState.CLOSED
        )

    # -- checkpointing -----------------------------------------------------------

    def capture_state(self) -> dict:
        """JSON-able snapshot (keys stringified; crawl keys are IPs)."""
        return {
            "breakers": {
                str(key): [
                    b.state.value,
                    b.consecutive_failures,
                    b.opened_at_minutes,
                    b.probes_in_flight,
                ]
                for key, b in self._breakers.items()
            },
            "transitions": [
                [t.key, t.minutes, t.old.value, t.new.value] for t in self._transitions
            ],
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`capture_state` (string keys are kept)."""
        self._breakers.clear()
        self._transitions.clear()
        self._transitions.extend(
            BreakerTransition(
                key=key, minutes=minutes, old=BreakerState(old), new=BreakerState(new)
            )
            for key, minutes, old, new in state["transitions"]
        )
        for key, (st, fails, opened, probes) in state["breakers"].items():
            breaker = self._get(key)
            breaker.state = BreakerState(st)
            breaker.consecutive_failures = fails
            breaker.opened_at_minutes = opened
            breaker.probes_in_flight = probes
