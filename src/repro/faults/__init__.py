"""repro.faults — deterministic chaos for the crawl + serve stack.

The paper's measurement infrastructure failed constantly (PhantomJS
crashes, timeouts, rate limiting) and the analysis had to cope.  This
package makes failure a *first-class, reproducible input*:

* :mod:`~repro.faults.plan` — :class:`FaultPlan`: a seeded schedule of
  browser crashes, DNS failures, timeouts, 5xx, truncated SERPs, and
  rate-limit storms, plus the :class:`FailureKind` taxonomy;
* :mod:`~repro.faults.injector` — :class:`FaultyNetwork`: a drop-in
  ``Network`` that injects the plan, and :class:`FaultStats`, the
  injected/absorbed/terminal ledger;
* :mod:`~repro.faults.retry` — :class:`RetryPolicy`: the shared capped
  exponential backoff with deterministic jitter;
* :mod:`~repro.faults.breaker` — per-endpoint circuit breakers over
  virtual time (:class:`BreakerBoard`);
* :mod:`~repro.faults.checkpoint` — the round-granular crawl journal
  behind ``Study.run(checkpoint=path)``.

The same methodology applied *below* the process boundary — torn
writes, bit rot, full disks, lying fsyncs, lost renames — lives in
:mod:`repro.store.faults`; its plan/injector pair is re-exported here
so both chaos toolkits are importable from one place.
"""

from repro.faults.breaker import (
    BreakerBoard,
    BreakerState,
    BreakerTransition,
    CircuitBreaker,
)
from repro.faults.checkpoint import (
    CheckpointError,
    CheckpointWriter,
    ResumeState,
    load_checkpoint,
)
from repro.faults.injector import (
    BrowserCrash,
    FaultStats,
    FaultyNetwork,
    InjectedDNSFailure,
    InjectedFault,
    RequestTimeout,
)
from repro.faults.plan import (
    FAULT_TO_FAILURE,
    FailureKind,
    FaultKind,
    FaultPlan,
    NAMED_PLANS,
)
from repro.faults.retry import DEFAULT_RETRY_CAP_MINUTES, RetryPolicy
from repro.store.faults import (
    DISK_NAMED_PLANS,
    DiskFault,
    DiskFaultKind,
    DiskFaultPlan,
    FaultyFileOps,
)

__all__ = [
    "BreakerBoard",
    "BreakerState",
    "BreakerTransition",
    "CircuitBreaker",
    "CheckpointError",
    "CheckpointWriter",
    "ResumeState",
    "load_checkpoint",
    "BrowserCrash",
    "FaultStats",
    "FaultyNetwork",
    "InjectedDNSFailure",
    "InjectedFault",
    "RequestTimeout",
    "FAULT_TO_FAILURE",
    "FailureKind",
    "FaultKind",
    "FaultPlan",
    "NAMED_PLANS",
    "DEFAULT_RETRY_CAP_MINUTES",
    "RetryPolicy",
    "DISK_NAMED_PLANS",
    "DiskFault",
    "DiskFaultKind",
    "DiskFaultPlan",
    "FaultyFileOps",
]
