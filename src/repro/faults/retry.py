"""The shared retry policy: capped exponential backoff, deterministic jitter.

Before this module the crawl runner and the serving gateway each grew
their own ad-hoc ``backoff *= 2`` loop — unbounded doubling that, at
high retry budgets, pushes attempts past the lock-step round spacing
(and, in a real system, synchronises retry storms).  Both now share
one :class:`RetryPolicy`:

* **capped**: the delay for attempt *n* is
  ``min(cap, base * multiplier ** n)``;
* **deterministically jittered**: when ``jitter > 0`` the delay is
  scaled by a factor in ``[1 - jitter, 1 + jitter)`` drawn from
  :func:`repro.seeding.stable_unit` over a caller-supplied key — the
  same (browser, round, attempt) always jitters identically, so
  jittered schedules stay byte-reproducible and shard-independent.

The defaults (``multiplier=2``, ``jitter=0``, ``cap`` comfortably above
the first few doublings) make the policy *byte-identical* to the old
inline doubling for every configuration the seed tests pin down; the
cap only engages at retry budgets the old code handled unboundedly.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.seeding import stable_unit

__all__ = ["RetryPolicy", "DEFAULT_RETRY_CAP_MINUTES"]

#: Default backoff ceiling: below the 11-minute lock-step round spacing
#: but above the first three doublings of the 1.5-minute base.
DEFAULT_RETRY_CAP_MINUTES = 8.0

_SeedPart = object  # str | int | float | bool, checked by seeding


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with optional deterministic jitter."""

    base_minutes: float = 1.5
    multiplier: float = 2.0
    cap_minutes: float = DEFAULT_RETRY_CAP_MINUTES
    jitter: float = 0.0
    """Relative jitter amplitude in ``[0, 1)``: the delay is scaled by
    a deterministic factor in ``[1 - jitter, 1 + jitter)``."""

    def __post_init__(self) -> None:
        if self.base_minutes <= 0:
            raise ValueError("base_minutes must be positive")
        if self.multiplier < 1.0:
            raise ValueError("multiplier must be >= 1")
        if self.cap_minutes < self.base_minutes:
            raise ValueError("cap_minutes must be >= base_minutes")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")

    def delay_minutes(self, attempt: int, *key: _SeedPart) -> float:
        """Virtual-time backoff after failed attempt ``attempt`` (0-based).

        ``key`` seeds the jitter draw; pass something unique per
        (caller, request) — e.g. the browser id and round timestamp —
        so two retrying clients never share a schedule.
        """
        if attempt < 0:
            raise ValueError("attempt must be non-negative")
        delay = min(self.cap_minutes, self.base_minutes * self.multiplier**attempt)
        if self.jitter > 0.0:
            unit = stable_unit("retry-jitter", *key, attempt)
            delay *= 1.0 + self.jitter * (2.0 * unit - 1.0)
        return delay

    def schedule(self, attempts: int, *key: _SeedPart):
        """The full delay sequence for ``attempts`` failed attempts."""
        return [self.delay_minutes(attempt, *key) for attempt in range(attempts)]
