"""DNS resolution with static-mapping override.

Google serves search from many datacenters whose indexes are not
perfectly synchronised — a noise source.  The paper controls for it by
statically mapping the search frontend's DNS name to one datacenter
(§2.2, "Controlling for Noise" item 2).  This resolver models both
behaviours: normal resolution rotates over all A records per query
(round-robin-ish, seeded), while a static mapping pins a name to one
address.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.net.ip import IPv4Address
from repro.seeding import stable_hash

__all__ = ["DNSRecord", "DNSResolver"]


@dataclass(frozen=True)
class DNSRecord:
    """A DNS A record set for one name."""

    name: str
    addresses: List[IPv4Address]

    def __post_init__(self) -> None:
        if not self.addresses:
            raise ValueError(f"record for {self.name!r} has no addresses")


class ResolutionError(KeyError):
    """Raised when a name cannot be resolved."""

    def __str__(self) -> str:
        # KeyError's __str__ repr-quotes the argument, which reads like
        # a dict lookup leak when this surfaces in a failure record;
        # report a resolver message instead.
        name = self.args[0] if self.args else "<unknown>"
        return f"could not resolve {name!r}"


@dataclass
class DNSResolver:
    """A resolver over a static zone, with per-client pinning support."""

    _zone: Dict[str, DNSRecord] = field(default_factory=dict)
    _static: Dict[str, IPv4Address] = field(default_factory=dict)

    def add_record(self, record: DNSRecord) -> None:
        """Install an A record set."""
        self._zone[record.name.lower()] = record

    def pin(self, name: str, address: IPv4Address) -> None:
        """Statically map ``name`` to ``address`` (as in /etc/hosts).

        The pinned address must be one of the record's real addresses —
        pinning to an arbitrary IP would model a broken crawl setup.
        """
        record = self._zone.get(name.lower())
        if record is None:
            raise ResolutionError(name)
        if address not in record.addresses:
            raise ValueError(f"{address} is not an address of {name!r}")
        self._static[name.lower()] = address

    def unpin(self, name: str) -> None:
        """Remove a static mapping, restoring rotation."""
        self._static.pop(name.lower(), None)

    def resolve(self, name: str, *, query_id: int = 0) -> IPv4Address:
        """Resolve ``name`` to one address.

        Without a static mapping, the chosen address rotates as a
        deterministic function of ``query_id`` — modelling the way
        successive lookups land on different frontends.
        """
        key = name.lower()
        if key in self._static:
            return self._static[key]
        record = self._zone.get(key)
        if record is None:
            raise ResolutionError(name)
        index = stable_hash("dns-rotation", key, query_id) % len(record.addresses)
        return record.addresses[index]

    def record(self, name: str) -> DNSRecord:
        """The full record set for ``name``."""
        record = self._zone.get(name.lower())
        if record is None:
            raise ResolutionError(name)
        return record
