"""A GeoIP database model.

The paper's prior work established that Google infers location from the
client's IP address when nothing better is available.  Our engine does
the same: requests without a GPS fix are geolocated through this
database.  The validation experiment (§2.2) hinges on the engine
*preferring* the spoofed GPS coordinates over this IP-derived location.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Tuple

from repro.geo.coords import LatLon
from repro.net.ip import IPv4Address, IPv4Subnet
from repro.net.machines import Machine

__all__ = ["GeoIPDatabase"]


@dataclass
class GeoIPDatabase:
    """Maps IP addresses to approximate physical locations.

    Lookup order: exact host entry, then longest-prefix subnet entry,
    then ``None`` (unknown).  Real GeoIP databases resolve to city-level
    accuracy at best; the granularity modelled here (exact for
    registered hosts, subnet-wide otherwise) is enough for the engine's
    fallback path and the validation experiment.
    """

    _hosts: Dict[IPv4Address, LatLon] = field(default_factory=dict)
    _subnets: List[Tuple[IPv4Subnet, LatLon]] = field(default_factory=list)

    def add_host(self, ip: IPv4Address, location: LatLon) -> None:
        """Register an exact host entry."""
        self._hosts[ip] = location

    def add_subnet(self, subnet: IPv4Subnet, location: LatLon) -> None:
        """Register a subnet-wide entry."""
        self._subnets.append((subnet, location))
        # Keep longest prefixes first so lookup is a simple scan.
        self._subnets.sort(key=lambda pair: -pair[0].prefix_len)

    def register_fleet(self, machines: Iterable[Machine]) -> None:
        """Register every machine in a fleet as an exact host entry."""
        for machine in machines:
            self.add_host(machine.ip, machine.location)

    def lookup(self, ip: IPv4Address) -> Optional[LatLon]:
        """Best-known location for ``ip``, or ``None`` if unknown."""
        if ip in self._hosts:
            return self._hosts[ip]
        for subnet, location in self._subnets:
            if ip in subnet:
                return location
        return None

    def __len__(self) -> int:
        return len(self._hosts) + len(self._subnets)
