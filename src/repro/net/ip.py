"""A small IPv4 address / subnet model.

Deliberately self-contained (rather than wrapping :mod:`ipaddress`) so
the whole network substrate is explicit, and sized to what the study
needs: dotted-quad parsing, subnet membership, and enumerating hosts of
a /24.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["IPv4Address", "IPv4Subnet"]


@dataclass(frozen=True, order=True)
class IPv4Address:
    """An IPv4 address stored as a 32-bit integer."""

    value: int

    def __post_init__(self) -> None:
        if not 0 <= self.value <= 0xFFFFFFFF:
            raise ValueError(f"IPv4 value out of range: {self.value}")

    @classmethod
    def parse(cls, text: str) -> "IPv4Address":
        """Parse a dotted-quad string such as ``"192.0.2.17"``."""
        parts = text.split(".")
        if len(parts) != 4:
            raise ValueError(f"malformed IPv4 address: {text!r}")
        value = 0
        for part in parts:
            if not part.isdigit() or (len(part) > 1 and part[0] == "0"):
                raise ValueError(f"malformed IPv4 octet in {text!r}: {part!r}")
            octet = int(part)
            if octet > 255:
                raise ValueError(f"IPv4 octet out of range in {text!r}: {octet}")
            value = (value << 8) | octet
        return cls(value)

    @property
    def octets(self) -> tuple:
        """The four octets, most significant first."""
        return (
            (self.value >> 24) & 0xFF,
            (self.value >> 16) & 0xFF,
            (self.value >> 8) & 0xFF,
            self.value & 0xFF,
        )

    def __str__(self) -> str:
        return ".".join(str(o) for o in self.octets)

    def __add__(self, offset: int) -> "IPv4Address":
        return IPv4Address(self.value + offset)


@dataclass(frozen=True)
class IPv4Subnet:
    """A CIDR subnet, e.g. ``192.0.2.0/24``."""

    network: IPv4Address
    prefix_len: int

    def __post_init__(self) -> None:
        if not 0 <= self.prefix_len <= 32:
            raise ValueError(f"prefix length out of range: {self.prefix_len}")
        if self.network.value & (self.host_mask()):
            raise ValueError(
                f"{self.network} has host bits set for /{self.prefix_len}"
            )

    @classmethod
    def parse(cls, text: str) -> "IPv4Subnet":
        """Parse CIDR notation such as ``"192.0.2.0/24"``."""
        try:
            addr_text, prefix_text = text.split("/")
        except ValueError:
            raise ValueError(f"malformed CIDR: {text!r}") from None
        return cls(IPv4Address.parse(addr_text), int(prefix_text))

    def net_mask(self) -> int:
        """The network mask as a 32-bit integer."""
        if self.prefix_len == 0:
            return 0
        return (0xFFFFFFFF << (32 - self.prefix_len)) & 0xFFFFFFFF

    def host_mask(self) -> int:
        """The host mask (inverse of the network mask)."""
        return ~self.net_mask() & 0xFFFFFFFF

    def __contains__(self, address: IPv4Address) -> bool:
        return (address.value & self.net_mask()) == self.network.value

    @property
    def size(self) -> int:
        """Number of addresses in the subnet (including network/broadcast)."""
        return 1 << (32 - self.prefix_len)

    def hosts(self) -> Iterator[IPv4Address]:
        """Usable host addresses (network and broadcast excluded for /<31)."""
        if self.prefix_len >= 31:
            yield from (self.network + i for i in range(self.size))
            return
        for i in range(1, self.size - 1):
            yield self.network + i

    def __str__(self) -> str:
        return f"{self.network}/{self.prefix_len}"
