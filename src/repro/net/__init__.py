"""Network substrate: IPv4 addresses, crawl machines, GeoIP, DNS.

The paper's crawl ran on 44 machines inside a single /24 subnet (to
spread query load below Google's rate limits), pinned the search
frontend's DNS entry to a single datacenter, and validated GPS-over-IP
personalization from 50 PlanetLab vantage points.  This package models
exactly those pieces.
"""

from repro.net.dns import DNSResolver, DNSRecord
from repro.net.geoip import GeoIPDatabase
from repro.net.ip import IPv4Address, IPv4Subnet
from repro.net.machines import Machine, MachineFleet, MachineKind

__all__ = [
    "DNSResolver",
    "DNSRecord",
    "GeoIPDatabase",
    "IPv4Address",
    "IPv4Subnet",
    "Machine",
    "MachineFleet",
    "MachineKind",
]
