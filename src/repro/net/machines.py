"""Crawl-machine fleets.

Two fleets appear in the paper:

* 44 crawl machines in a single /24 subnet (all physically at the
  authors' institution in Boston), used to distribute query load and
  stay under the search engine's per-IP rate limits (§2.2);
* 50 PlanetLab machines scattered across the US, used for the
  GPS-versus-IP validation experiment (§2.2).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.geo.coords import LatLon
from repro.geo.usa import US_STATES
from repro.net.ip import IPv4Address, IPv4Subnet
from repro.seeding import derive_rng

__all__ = ["MachineKind", "Machine", "MachineFleet"]

#: Approximate location of the authors' lab (Boston, MA) — where the
#: crawl /24 physically sits.
_LAB_LOCATION = LatLon(42.3398, -71.0892)


class MachineKind(enum.Enum):
    """What role a machine plays in the study."""

    CRAWLER = "crawler"
    PLANETLAB = "planetlab"


@dataclass(frozen=True)
class Machine:
    """One vantage point: a hostname, an IP, and a physical location.

    The physical location is what a GeoIP database would report for the
    machine's IP — the engine falls back to it when a request carries no
    GPS fix.
    """

    hostname: str
    ip: IPv4Address
    location: LatLon
    kind: MachineKind


@dataclass(frozen=True)
class MachineFleet:
    """A named collection of machines."""

    name: str
    machines: List[Machine]

    def __post_init__(self) -> None:
        ips = [m.ip for m in self.machines]
        if len(set(ips)) != len(ips):
            raise ValueError(f"fleet {self.name!r} has duplicate IPs")

    def __len__(self) -> int:
        return len(self.machines)

    def __iter__(self):
        return iter(self.machines)

    def __getitem__(self, index: int) -> Machine:
        return self.machines[index]

    @classmethod
    def crawl_fleet(
        cls,
        count: int = 44,
        subnet: str = "192.0.2.0/24",
    ) -> "MachineFleet":
        """The paper's crawl fleet: ``count`` machines in one /24.

        Args:
            count: Number of machines (paper: 44).
            subnet: CIDR the fleet lives in (defaults to TEST-NET-1).
        """
        net = IPv4Subnet.parse(subnet)
        hosts = list(net.hosts())
        if count > len(hosts):
            raise ValueError(f"cannot fit {count} machines in {subnet}")
        machines = [
            Machine(
                hostname=f"crawl{i:02d}.lab.example.edu",
                ip=hosts[i],
                location=_LAB_LOCATION,
                kind=MachineKind.CRAWLER,
            )
            for i in range(count)
        ]
        return cls(name=f"crawl-fleet-{subnet}", machines=machines)

    @classmethod
    def planetlab_fleet(cls, seed: int, count: int = 50) -> "MachineFleet":
        """The validation fleet: ``count`` machines spread across US states.

        Each machine gets an IP in a distinct /16 (so IP-based
        geolocation would map them far apart) and a physical location
        jittered around a state centroid.
        """
        rng = derive_rng(seed, "planetlab-fleet", count)
        states = sorted(US_STATES)
        machines: List[Machine] = []
        for i in range(count):
            state = states[i % len(states)]
            base = US_STATES[state]
            location = LatLon(
                max(-90.0, min(90.0, base.lat + rng.uniform(-0.8, 0.8))),
                max(-180.0, min(180.0, base.lon + rng.uniform(-0.8, 0.8))),
            )
            # One /16 per machine inside 10.0.0.0/8.
            ip = IPv4Address((10 << 24) | ((i + 1) << 16) | (rng.randrange(1, 255) << 8) | rng.randrange(1, 255))
            machines.append(
                Machine(
                    hostname=f"planetlab{i:02d}.{state.replace(' ', '').lower()}.example.org",
                    ip=ip,
                    location=location,
                    kind=MachineKind.PLANETLAB,
                )
            )
        return cls(name="planetlab-fleet", machines=machines)
