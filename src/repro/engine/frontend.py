"""The search frontend: request in, HTML out.

``SearchEngine`` is the full service: rate limiting, geolocation
resolution (GPS fix → session memory → GeoIP → continental default),
query classification, session bookkeeping, ranking, and rendering.
"""

from __future__ import annotations

from typing import Optional

from repro.engine.calibration import EngineCalibration
from repro.engine.classify import QueryClassifier
from repro.engine.dialect import GOOGLE_LIKE, EngineDialect
from repro.engine.datacenters import DatacenterCluster
from repro.engine.ranking import Ranker, RankingContext
from repro.engine.ratelimit import RateLimiter
from repro.engine.render import render_captcha, render_page
from repro.engine.request import ResponseStatus, SearchRequest, SearchResponse
from repro.engine.serp import SerpPage
from repro.engine.sessions import SessionStore
from repro.geo.coords import LatLon
from repro.net.geoip import GeoIPDatabase
from repro.obs.trace import NULL_TRACER
from repro.queries.corpus import QueryCorpus
from repro.seeding import stable_hash
from repro.web.world import WebWorld

__all__ = ["SearchEngine", "DEFAULT_LOCATION"]

#: Where an unlocatable user is assumed to be (geographic center of the
#: contiguous US — what real engines do with unknown clients).
DEFAULT_LOCATION = LatLon(39.8283, -98.5795)


class SearchEngine:
    """The simulated search service.

    Args:
        world: The synthetic web to rank over.
        cluster: Datacenters serving the frontend hostname.
        geoip: IP-geolocation database for GPS-less requests.
        corpus: Known query corpus (exact classification); heuristics
            cover anything outside it.
        calibration: Ranking/noise tunables.
        seed: Engine seed — drives every deterministic perturbation.
        ranker: Share another engine's :class:`Ranker` instead of
            building one.  The ranker is a pure memo layer over (world,
            calibration, seed) — it holds no serving state — so engines
            over the same triple (gateway replicas) can share one and
            split the warm-up cost.  Callers must not share across
            different seeds/worlds; a guard enforces it.
    """

    def __init__(
        self,
        world: WebWorld,
        cluster: DatacenterCluster,
        geoip: GeoIPDatabase,
        *,
        corpus: Optional[QueryCorpus] = None,
        calibration: Optional[EngineCalibration] = None,
        seed: int = 0,
        dialect: Optional[EngineDialect] = None,
        ranker: Optional[Ranker] = None,
    ):
        self.world = world
        self.cluster = cluster
        self.geoip = geoip
        self.calibration = calibration or EngineCalibration()
        self.seed = seed
        self.dialect = dialect or GOOGLE_LIKE
        self.classifier = QueryClassifier(corpus)
        if ranker is not None:
            if ranker.world is not world or ranker.seed != seed:
                raise ValueError(
                    "shared ranker must be built over the same world and seed"
                )
            self.ranker = ranker
        else:
            self.ranker = Ranker(world, self.calibration, seed)
        self.sessions = SessionStore(window_minutes=self.calibration.session_window_minutes)
        self.ratelimiter = RateLimiter(
            max_per_minute=self.calibration.ratelimit_max_per_minute
        )
        self.tracer = NULL_TRACER

    # -- serving ------------------------------------------------------------

    def handle(self, request: SearchRequest) -> SearchResponse:
        """Serve one request, returning rendered HTML."""
        tracing = self.tracer.enabled
        if tracing:
            self.tracer.begin("engine.handle", start=request.timestamp_minutes)
        if not self.ratelimiter.allow(request.client_ip, request.timestamp_minutes):
            if tracing:
                self.tracer.end(status="rate-limited")
            return SearchResponse(
                status=ResponseStatus.RATE_LIMITED,
                html=render_captcha(request.query_text, self.dialect),
            )
        page = self._build_page(request)
        if tracing:
            self.tracer.end(
                status="ok", datacenter=self.cluster.by_ip(request.frontend_ip).name
            )
        return SearchResponse(
            status=ResponseStatus.OK, html=render_page(page, self.dialect)
        )

    def serve_page(self, request: SearchRequest) -> SerpPage:
        """Structured variant of :meth:`handle` (no rate limiting).

        For engine-level tests and debugging; the measurement pipeline
        uses :meth:`handle` and parses HTML, like the real crawl did.
        """
        return self._build_page(request)

    # -- checkpointing -------------------------------------------------------

    def capture_state(self, now_minutes: float) -> dict:
        """JSON-able snapshot of all mutable serving state.

        Everything else the engine holds (ranker, classifier, world) is
        a pure function of the seed and is rebuilt identically on
        resume; only sessions and rate-limiter windows evolve with
        traffic.
        """
        return {
            "sessions": self.sessions.capture_state(now_minutes),
            "ratelimiter": self.ratelimiter.capture_state(),
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`capture_state`."""
        self.sessions.restore_state(state["sessions"])
        self.ratelimiter.restore_state(state["ratelimiter"])

    # -- internals ----------------------------------------------------------

    def _build_page(self, request: SearchRequest) -> SerpPage:
        query = self.classifier.classify(request.query_text)
        location = self._resolve_location(request)
        datacenter = self.cluster.by_ip(request.frontend_ip)
        bucket = stable_hash("ab-bucket", self.seed, request.nonce) % self.calibration.ab_buckets
        session_slugs = tuple(
            self.sessions.recent_query_slugs(request.cookie_id, request.timestamp_minutes)
        )
        session_queries = tuple(
            self.classifier.classify(slug.replace("-", " ")) for slug in session_slugs
        )
        context = RankingContext(
            location=location,
            day=request.day,
            datacenter=datacenter.name,
            bucket=bucket,
            nonce=request.nonce,
            session_slugs=session_slugs,
            session_queries=session_queries,
            page=request.page,
        )
        page = self.ranker.build_page(query, context)
        if request.cookie_id is not None:
            self.sessions.record(
                request.cookie_id,
                request.query_text,
                request.timestamp_minutes,
                location,
            )
        return page

    def _resolve_location(self, request: SearchRequest) -> LatLon:
        """GPS fix → session-remembered location → GeoIP → default."""
        if request.gps is not None:
            return request.gps
        remembered = self.sessions.remembered_location(
            request.cookie_id, request.timestamp_minutes
        )
        if remembered is not None:
            return remembered
        by_ip = self.geoip.lookup(request.client_ip)
        if by_ip is not None:
            return by_ip
        return DEFAULT_LOCATION
