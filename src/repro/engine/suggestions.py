"""Related-search suggestions — a second personalization surface.

Real SERPs end with a "related searches" strip, and prior auditing work
(e.g. Bobble's autocomplete studies) found suggestions are personalized
too.  The engine composes a per-request strip from a query-type pool:

* local queries draw location-flavoured variants ("<term> near me",
  "<term> in <city>", "<term> <state>") alongside generic ones — so the
  strip varies by location;
* controversial/politician queries draw stable informational variants.

Selection is deterministic per (query, state, metro): the suggestion
strip has *no* A/B noise, matching how suggestion services are cached
far more aggressively than rankings.
"""

from __future__ import annotations

from typing import List

from repro.queries.model import Query, QueryCategory
from repro.seeding import stable_hash
from repro.web.grid import GridCell
from repro.web.naming import city_name

__all__ = ["related_searches", "SUGGESTION_COUNT"]

#: Suggestions per strip.
SUGGESTION_COUNT = 6

_GENERIC_TEMPLATES = [
    "{term} near me",
    "best {term}",
    "{term} reviews",
    "{term} hours",
    "24 hour {term}",
    "{term} prices",
    "cheap {term}",
    "{term} open now",
]

_LOCAL_PLACE_TEMPLATES = [
    "{term} in {city}",
    "{term} {state}",
    "{term} downtown {city}",
]

_INFO_TEMPLATES = [
    "what is {term}",
    "{term} explained",
    "{term} pros and cons",
    "{term} facts",
    "{term} history",
    "{term} news",
    "{term} statistics",
    "is {term} good",
]

_PERSON_TEMPLATES = [
    "{term} biography",
    "{term} voting record",
    "{term} net worth",
    "{term} contact",
    "{term} news",
    "{term} age",
    "{term} twitter",
    "{term} family",
]


def related_searches(
    query: Query,
    state: str,
    metro: GridCell,
    *,
    seed: int,
    count: int = SUGGESTION_COUNT,
) -> List[str]:
    """The suggestion strip for one request.

    Deterministic per (query, state, metro): simultaneous identical
    requests always agree (no suggestion noise), while locations differ
    through the place-flavoured entries and the location-keyed ranking
    of the pool.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    term = query.text.lower()
    if query.category is QueryCategory.LOCAL:
        pool = [t.format(term=term, city=city_name(metro), state=state)
                for t in _GENERIC_TEMPLATES + _LOCAL_PLACE_TEMPLATES]
        location_weight = 1.0
    elif query.category is QueryCategory.POLITICIAN:
        # Person suggestions are location-independent (who is asking
        # does not change what is asked about a person).
        pool = [t.format(term=query.text) for t in _PERSON_TEMPLATES]
        location_weight = 0.0
    else:
        pool = [t.format(term=term) for t in _INFO_TEMPLATES]
        location_weight = 0.1

    def rank_key(suggestion: str) -> float:
        base = stable_hash("suggestion-base", seed, query.key, suggestion) % 1000
        local = (
            stable_hash("suggestion-local", seed, query.key, suggestion, state,
                        metro.ix, metro.iy)
            % 1000
        )
        return base + location_weight * local

    ranked = sorted(pool, key=rank_key)
    return ranked[:count]
