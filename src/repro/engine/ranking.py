"""The ranking layer: candidates → scored results → a card page.

Score composition per document::

    score = base_score
          + geo decay        (POIs: per-mile penalty; ambiguity entities:
                              slow country-scale decay)
          + location keying  (nationally scoped docs get a deterministic
                              per-(doc, state) and per-(doc, metro)
                              offset — the reordering personalization)
          + A/B jitter       (per-(bucket, doc); the bucket is hashed
                              from the request nonce — the noise)
          + datacenter skew  (per-(datacenter, doc) index drift)
          + session boost    (docs matching a recent query's topic)

Meta-cards are attached after organic ranking: a Maps card (gated per
request — presence flicker is the paper's dominant Maps noise) and a
News card (gated per (topic, day) — stable within a day).
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.engine.calibration import EngineCalibration
from repro.engine.serp import CardType, SerpCard, SerpPage
from repro.geo.coords import LatLon, haversine_miles
from repro.queries.model import Query, QueryCategory
from repro.seeding import stable_unit
from repro.web.documents import DocKind, Document, GeoScope
from repro.web.grid import GeoGrid
from repro.web.world import WebWorld

__all__ = ["RankingContext", "Ranker"]


@dataclass(frozen=True)
class _PoolBundle:
    """One static pool flattened into parallel tuples.

    The request-independent half of every candidate's score, laid out so
    the per-request pass is a single comprehension over aligned tuples
    instead of dict lookups inside a ``sorted`` key lambda.  ``amps`` is
    the per-document jitter amplitude (local vs national scope), baked
    at bundle build time from the ranker's calibration.
    """

    docs: Tuple[Document, ...]
    statics: Tuple[float, ...]
    identities: Tuple[str, ...]
    amps: Tuple[float, ...]


def _centered(*parts) -> float:
    """A deterministic value in (-1, 1) from a seed path."""
    return (stable_unit(*parts) - 0.5) * 2.0


#: Sentinel cached for (query, cell) combinations that yield no
#: meta-card, so the miss itself is memoised.
_NO_CARD = object()


@dataclass(frozen=True)
class RankingContext:
    """Request-derived inputs the ranking depends on."""

    location: LatLon
    day: int
    datacenter: str
    bucket: int
    nonce: int
    session_slugs: tuple = ()
    session_queries: tuple = ()  # classified recent queries (history blending)
    page: int = 0  # zero-based result page


class Ranker:
    """Scoring and page assembly over a :class:`WebWorld`.

    Caches the *request-independent* part of every candidate's score
    (base + geo decay + location keying) per (query, snapped position);
    only the per-request terms (A/B jitter, datacenter skew, session
    boost) are computed per call.  This makes the 140k-request full
    study tractable without changing any ranking semantics.
    """

    #: Entry caps for the per-request memo dicts.  The key spaces are
    #: open-ended ((bucket, url) has ``ab_buckets`` x corpus-size
    #: entries), so a long-lived engine must not grow them without
    #: bound.  On overflow the dict is cleared outright — every entry is
    #: a pure function of its key, so eviction can never change a score,
    #: and wholesale clearing is deterministic regardless of insertion
    #: order (an LRU would be too, but buys nothing for hash draws).
    UNIT_MEMO_CAP = 1 << 17
    VEC_MEMO_CAP = 1 << 13

    def __init__(self, world: WebWorld, calibration: EngineCalibration, seed: int):
        self.world = world
        self.calibration = calibration
        self.seed = seed
        self.fast_path = True
        self._snap_grid = GeoGrid(calibration.snap_cell_miles)
        self._static_pools: dict = {}
        self._state_cache: dict = {}
        self._maps_cache: dict = {}
        self._news_cache: dict = {}
        # Per-request score terms are hash draws over small key spaces
        # ((bucket, url) and (datacenter, url)); memoising the unit
        # draws keeps the inner scoring loop off SHA-256 entirely after
        # warm-up.  Amplitudes are applied outside the memo so
        # calibration stays live.
        self._jitter_units: dict = {}
        self._skew_units: dict = {}
        # Batch-path caches: flattened pools and per-(pool, bucket) /
        # per-(pool, datacenter) unit vectors aligned with them.
        self._bundles: Dict[tuple, _PoolBundle] = {}
        self._jitter_vecs: dict = {}
        self._skew_vecs: dict = {}
        self._suggestion_cache: dict = {}
        self._organic_cards: Dict[str, SerpCard] = {}
        self._knowledge_cards: dict = {}
        self._hits = 0
        self._misses = 0

    # -- public -------------------------------------------------------------

    def build_page(self, query: Query, ctx: RankingContext) -> SerpPage:
        """Rank candidates and assemble the card page for one request."""
        snapped = (
            self._snap_grid.snap(ctx.location)
            if self.calibration.snap_to_grid
            else ctx.location
        )
        state = self._nearest_state(snapped)
        metro = self.world.metro_grid.cell_of(snapped)
        if self.fast_path and not ctx.session_queries and not ctx.session_slugs:
            return self._build_page_fast(query, ctx, snapped, state, metro)
        return self._build_page_reference(query, ctx, snapped, state, metro)

    def build_pages_batch(
        self, query: Query, contexts: Sequence[RankingContext]
    ) -> List[SerpPage]:
        """Rank one query for many requests, sharing the static pass.

        All contexts that snap to the same grid cell share one
        :class:`_PoolBundle` (static score vector, computed once) and
        one suggestions tuple; only the per-request terms (jitter, skew,
        session boost) are applied per context.  Output is byte-for-byte
        what per-request :meth:`build_page` calls would produce, in
        input order — the parity contract the batch tests pin down.
        """
        pages: List[Optional[SerpPage]] = [None] * len(contexts)
        by_cell: Dict[LatLon, List[int]] = {}
        snap = self._snap_grid.snap if self.calibration.snap_to_grid else lambda p: p
        snapped_points = [snap(ctx.location) for ctx in contexts]
        for index, snapped in enumerate(snapped_points):
            by_cell.setdefault(snapped, []).append(index)
        for snapped, members in by_cell.items():
            state = self._nearest_state(snapped)
            metro = self.world.metro_grid.cell_of(snapped)
            # First touch builds the shared static pass for the cell.
            self._bundle(query, snapped, state, metro)
            for index in members:
                ctx = contexts[index]
                if self.fast_path and not ctx.session_queries and not ctx.session_slugs:
                    pages[index] = self._build_page_fast(
                        query, ctx, snapped, state, metro
                    )
                else:
                    pages[index] = self._build_page_reference(
                        query, ctx, snapped, state, metro
                    )
        return pages  # type: ignore[return-value]

    def prewarm(
        self, query: Query, locations: Sequence[LatLon], datacenters: Sequence[str] = ()
    ) -> None:
        """Build the shared static state for a round ahead of serving.

        Idempotent and purely cache-filling: bundles, suggestion tuples
        and skew vectors for every (cell, datacenter) a round will
        touch.  The pre-fork warmup walks the whole schedule through
        this, so forked workers inherit hot caches copy-on-write and
        never rebuild them.  Maps cards are warmed separately via
        :meth:`prewarm_maps` — their nonce gate opens for only a subset
        of (query, cell) pairs, so blanket warming would build cards no
        request ever asks for.
        """
        snap = self._snap_grid.snap if self.calibration.snap_to_grid else lambda p: p
        for location in locations:
            snapped = snap(location)
            state = self._nearest_state(snapped)
            metro = self.world.metro_grid.cell_of(snapped)
            bundle = self._bundle(query, snapped, state, metro)
            self._suggestions(query, state, metro)
            for datacenter in datacenters:
                self._skew_vec(query.key, snapped, datacenter, bundle)

    def prewarm_maps(self, query: Query, cells: Sequence[LatLon]) -> None:
        """Build maps cards for the given *snapped* cells ahead of serving.

        The POI lookup behind a maps card is the most expensive cold
        miss in the serving path, and cells repeat across shards
        (copies of a location sit on different crawl machines), so the
        pre-fork warmup computes each card once in the parent.  Callers
        pass the gate-passing cell set predicted from the schedule walk
        (:func:`repro.batch.predicted_maps_cells`); a missed prediction
        just falls back to the lazy per-request path.
        """
        if query.category is not QueryCategory.LOCAL:
            return
        cal = self.calibration
        for snapped in cells:
            if (query.key, snapped) in self._maps_cache:
                continue
            places = self.world.maps_places(query, snapped, cal.maps_card_size)
            self._maps_cache[(query.key, snapped)] = (
                SerpCard(card_type=CardType.MAPS, documents=places)
                if places
                else _NO_CARD
            )

    def cache_info(self) -> dict:
        """Sizes of every memo plus aggregate hit/miss counters."""
        return {
            "static_pools": len(self._static_pools),
            "bundles": len(self._bundles),
            "jitter_units": len(self._jitter_units),
            "skew_units": len(self._skew_units),
            "jitter_vecs": len(self._jitter_vecs),
            "skew_vecs": len(self._skew_vecs),
            "suggestions": len(self._suggestion_cache),
            "organic_cards": len(self._organic_cards),
            "meta_cards": len(self._maps_cache) + len(self._news_cache)
            + len(self._knowledge_cards),
            "hits": self._hits,
            "misses": self._misses,
        }

    def clear_caches(self) -> None:
        """Drop every memo (scores are pure, so semantics are unchanged)."""
        self._static_pools.clear()
        self._state_cache.clear()
        self._maps_cache.clear()
        self._news_cache.clear()
        self._jitter_units.clear()
        self._skew_units.clear()
        self._bundles.clear()
        self._jitter_vecs.clear()
        self._skew_vecs.clear()
        self._suggestion_cache.clear()
        self._organic_cards.clear()
        self._knowledge_cards.clear()
        self._hits = 0
        self._misses = 0

    def cache_bytes(self) -> int:
        """Rough resident size of the memo layer (diagnostics only)."""
        total = 0
        for memo in (
            self._static_pools,
            self._jitter_units,
            self._skew_units,
            self._jitter_vecs,
            self._skew_vecs,
            self._suggestion_cache,
        ):
            total += sys.getsizeof(memo)
        return total

    # -- fast path -----------------------------------------------------------

    def _build_page_fast(
        self, query: Query, ctx: RankingContext, snapped: LatLon, state: str, metro
    ) -> SerpPage:
        """Single-pass assembly over the cell's flattened bundle.

        Float evaluation order matches the reference path term for term
        (``amp*jitter + skew_amp*skew`` then negated with the static
        score), so the sort keys — and therefore the page bytes — are
        bit-identical.  Sessions never reach here: the session boost and
        history blending mutate the pool, so those requests take the
        reference path.
        """
        cal = self.calibration
        bundle = self._bundle(query, snapped, state, metro)
        jvec = self._jitter_vec(query.key, snapped, ctx.bucket, bundle)
        kvec = self._skew_vec(query.key, snapped, ctx.datacenter, bundle)
        skew_amp = cal.datacenter_skew
        scored = sorted(
            zip(
                (
                    -(s + (a * j + skew_amp * k))
                    for s, a, j, k in zip(bundle.statics, bundle.amps, jvec, kvec)
                ),
                bundle.identities,
                range(len(bundle.docs)),
            )
        )
        window_start = ctx.page * cal.organic_slots
        docs = bundle.docs
        cards: List[SerpCard] = [
            self._organic_card(docs[position])
            for _, _, position in scored[window_start : window_start + cal.organic_slots]
        ]
        if ctx.page == 0:
            knowledge_card = self._knowledge_card(query)
            if knowledge_card is not None:
                cards.insert(0, knowledge_card)
            maps_card = self._maps_card(query, snapped, ctx)
            if maps_card is not None:
                cards.insert(min(cal.maps_insert_rank, len(cards)), maps_card)
            news_card = self._news_card(query, state, ctx)
            if news_card is not None:
                cards.insert(min(cal.news_insert_rank, len(cards)), news_card)
        return SerpPage(
            query_text=query.text,
            cards=cards,
            reported_location=ctx.location,
            datacenter=ctx.datacenter,
            day=ctx.day,
            page=ctx.page,
            suggestions=self._suggestions(query, state, metro),
        )

    def _build_page_reference(
        self, query: Query, ctx: RankingContext, snapped: LatLon, state: str, metro
    ) -> SerpPage:
        """The per-request reference implementation (parity oracle).

        Handles every case, including session-carrying requests; the
        fast path must reproduce its output byte for byte on the cases
        it accepts.
        """
        cal = self.calibration
        pool = self._static_pool(query, snapped, state, metro)
        if ctx.session_queries:
            pool = pool + self._history_entries(query, pool, ctx)
        scored = sorted(
            pool,
            key=lambda entry: (
                -(entry[1] + self._dynamic_score(entry[0], ctx)),
                entry[0].identity,
            ),
        )
        window_start = ctx.page * cal.organic_slots
        organic = [
            doc for doc, _ in scored[window_start : window_start + cal.organic_slots]
        ]

        cards: List[SerpCard] = [
            SerpCard(card_type=CardType.ORGANIC, documents=[doc]) for doc in organic
        ]
        # Meta-cards belong to the first page only, as on real frontends.
        if ctx.page == 0:
            knowledge_card = self._knowledge_card(query)
            if knowledge_card is not None:
                cards.insert(0, knowledge_card)
            maps_card = self._maps_card(query, snapped, ctx)
            if maps_card is not None:
                cards.insert(min(cal.maps_insert_rank, len(cards)), maps_card)
            news_card = self._news_card(query, state, ctx)
            if news_card is not None:
                cards.insert(min(cal.news_insert_rank, len(cards)), news_card)

        from repro.engine.suggestions import related_searches

        return SerpPage(
            query_text=query.text,
            cards=cards,
            reported_location=ctx.location,
            datacenter=ctx.datacenter,
            day=ctx.day,
            page=ctx.page,
            suggestions=tuple(
                related_searches(query, state, metro, seed=self.seed)
            ),
        )

    def _bundle(
        self, query: Query, snapped: LatLon, state: str, metro
    ) -> _PoolBundle:
        key = (query.key, snapped)
        bundle = self._bundles.get(key)
        if bundle is not None:
            self._hits += 1
            return bundle
        self._misses += 1
        cal = self.calibration
        pool = self._static_pool(query, snapped, state, metro)
        local_scopes = (GeoScope.POINT, GeoScope.CITY)
        bundle = _PoolBundle(
            docs=tuple(doc for doc, _ in pool),
            statics=tuple(score for _, score in pool),
            identities=tuple(doc.identity for doc, _ in pool),
            amps=tuple(
                cal.ab_jitter_local
                if doc.scope in local_scopes
                else cal.ab_jitter_national
                for doc, _ in pool
            ),
        )
        self._bundles[key] = bundle
        return bundle

    def _jitter_vec(
        self, query_key, snapped: LatLon, bucket: int, bundle: _PoolBundle
    ) -> tuple:
        key = (query_key, snapped, bucket)
        vec = self._jitter_vecs.get(key)
        if vec is not None:
            self._hits += 1
            return vec
        self._misses += 1
        units = self._jitter_units
        if len(units) > self.UNIT_MEMO_CAP:
            units.clear()
        seed = self.seed
        values = []
        for url in bundle.identities:
            unit_key = (bucket, url)
            unit = units.get(unit_key)
            if unit is None:
                unit = _centered("ab-jitter", seed, bucket, url)
                units[unit_key] = unit
            values.append(unit)
        vec = tuple(values)
        if len(self._jitter_vecs) > self.VEC_MEMO_CAP:
            self._jitter_vecs.clear()
        self._jitter_vecs[key] = vec
        return vec

    def _skew_vec(
        self, query_key, snapped: LatLon, datacenter: str, bundle: _PoolBundle
    ) -> tuple:
        key = (query_key, snapped, datacenter)
        vec = self._skew_vecs.get(key)
        if vec is not None:
            self._hits += 1
            return vec
        self._misses += 1
        units = self._skew_units
        if len(units) > self.UNIT_MEMO_CAP:
            units.clear()
        seed = self.seed
        values = []
        for url in bundle.identities:
            unit_key = (datacenter, url)
            unit = units.get(unit_key)
            if unit is None:
                unit = _centered("dc-skew", seed, datacenter, url)
                units[unit_key] = unit
            values.append(unit)
        vec = tuple(values)
        if len(self._skew_vecs) > self.VEC_MEMO_CAP:
            self._skew_vecs.clear()
        self._skew_vecs[key] = vec
        return vec

    def _suggestions(self, query: Query, state: str, metro) -> tuple:
        key = (query.key, state, metro)
        suggestions = self._suggestion_cache.get(key)
        if suggestions is None:
            from repro.engine.suggestions import related_searches

            suggestions = tuple(
                related_searches(query, state, metro, seed=self.seed)
            )
            self._suggestion_cache[key] = suggestions
        return suggestions

    def _organic_card(self, doc: Document) -> SerpCard:
        card = self._organic_cards.get(doc.identity)
        if card is None:
            card = SerpCard(card_type=CardType.ORGANIC, documents=[doc])
            self._organic_cards[doc.identity] = card
        return card

    # -- candidates and static scoring ----------------------------------------

    def _nearest_state(self, snapped: LatLon) -> str:
        state = self._state_cache.get(snapped)
        if state is None:
            state = self.world.locator.nearest_region(snapped)
            self._state_cache[snapped] = state
        return state

    def _static_pool(self, query: Query, snapped: LatLon, state: str, metro) -> List[tuple]:
        """Candidates with their request-independent scores, memoised."""
        key = (query.key, snapped)
        pool = self._static_pools.get(key)
        if pool is not None:
            return pool
        cal = self.calibration
        candidates = list(self.world.universal_candidates(query))
        candidates.extend(self.world.state_candidates(query, state))
        candidates.extend(self.world.city_candidates(query, metro))
        candidates.extend(self.world.ambiguity_candidates(query))
        candidates.extend(
            self.world.poi_candidates(
                query,
                snapped,
                radius_miles=cal.poi_radius_miles,
                limit=cal.poi_candidate_limit,
            )
        )
        # Deduplicate by URL, keeping the best-scoring instance: two
        # nearby POIs can legitimately share a canonical URL (e.g. the
        # same business straddling a cell boundary), and an index serves
        # one entry per URL.
        best: dict = {}
        for doc in candidates:
            score = self._static_score(doc, query, snapped, state, metro)
            existing = best.get(doc.identity)
            if existing is None or score > existing[1]:
                best[doc.identity] = (doc, score)
        pool = list(best.values())
        self._static_pools[key] = pool
        return pool

    def _static_score(
        self, doc: Document, query: Query, snapped: LatLon, state: str, metro
    ) -> float:
        cal = self.calibration
        score = doc.base_score
        url = doc.identity
        if cal.index_bias:
            # This engine's crawl/scoring idiosyncrasy for the document.
            score += cal.index_bias * _centered("index-bias", self.seed, url)
        if doc.scope is GeoScope.POINT:
            assert doc.anchor is not None
            if doc.kind is DocKind.LOCAL_BUSINESS:
                distance = self.world.grid.distance_miles(snapped, doc.anchor)
                score -= cal.poi_distance_penalty_per_mile * distance
            else:
                distance = haversine_miles(snapped, doc.anchor)
                score -= cal.ambiguity_decay_per_mile * distance
        elif doc.scope is GeoScope.NATIONAL:
            amp_state, amp_metro = self._perturb_amplitudes(query)
            score += amp_state * _centered("state-perturb", self.seed, url, state)
            score += amp_metro * _centered(
                "metro-perturb", self.seed, url, metro.ix, metro.iy
            )
        return score

    def _history_entries(
        self, query: Query, pool: List[tuple], ctx: RankingContext
    ) -> List[tuple]:
        """Candidates blended in from the session's recent searches.

        The engine surfaces a few top results of recently issued queries
        (discounted, plus the session boost) — the 10-minute carryover
        personalization the paper's 11-minute waits are designed to
        dodge.
        """
        cal = self.calibration
        existing = {doc.identity for doc, _ in pool}
        entries: List[tuple] = []
        for recent in ctx.session_queries:
            if recent.key == query.key:
                continue
            for doc in self.world.universal_candidates(recent)[:2]:
                if doc.identity in existing:
                    continue
                existing.add(doc.identity)
                entries.append((doc, doc.base_score * 0.7 + cal.session_boost))
        return entries

    def _dynamic_score(self, doc: Document, ctx: RankingContext) -> float:
        """The per-request score terms: jitter, datacenter skew, session."""
        cal = self.calibration
        url = doc.identity
        jitter_amp = (
            cal.ab_jitter_local
            if doc.scope in (GeoScope.POINT, GeoScope.CITY)
            else cal.ab_jitter_national
        )
        jitter_key = (ctx.bucket, url)
        jitter_unit = self._jitter_units.get(jitter_key)
        if jitter_unit is None:
            jitter_unit = _centered("ab-jitter", self.seed, ctx.bucket, url)
            self._jitter_units[jitter_key] = jitter_unit
        score = jitter_amp * jitter_unit
        skew_key = (ctx.datacenter, url)
        skew_unit = self._skew_units.get(skew_key)
        if skew_unit is None:
            skew_unit = _centered("dc-skew", self.seed, ctx.datacenter, url)
            self._skew_units[skew_key] = skew_unit
        score += cal.datacenter_skew * skew_unit
        if ctx.session_slugs and any(slug in url for slug in ctx.session_slugs):
            score += cal.session_boost
        return score

    def _perturb_amplitudes(self, query: Query) -> tuple:
        cal = self.calibration
        if query.category is QueryCategory.LOCAL:
            if query.is_brand:
                return (cal.state_perturb_local_brand, cal.metro_perturb_local_brand)
            return (cal.state_perturb_local_generic, cal.metro_perturb_local_generic)
        if query.category is QueryCategory.CONTROVERSIAL:
            from repro.web.entities import BROAD_CONTROVERSIAL_TERMS

            amp_state = (
                cal.state_perturb_controversial_broad
                if query.text.lower() in BROAD_CONTROVERSIAL_TERMS
                else cal.state_perturb_controversial
            )
            return (amp_state, cal.metro_perturb_controversial)
        return (cal.state_perturb_politician, cal.metro_perturb_politician)

    # -- meta-cards ----------------------------------------------------------

    def _knowledge_card(self, query: Query) -> Optional[SerpCard]:
        """An entity panel for unambiguous named entities.

        Politicians get a panel unless their name is shared by other
        people (the engine cannot pick an entity for "Bill Johnson" —
        the same ambiguity that drives their residual personalization);
        brand queries get the chain's panel.  The panel links the
        entity's official site, so the parser extracts it as a normal
        first-link card.
        """
        if query.key in self._knowledge_cards:
            return self._knowledge_cards[query.key]
        card = None
        if query.category is QueryCategory.POLITICIAN and not query.is_common_name:
            official = self.world.universal_candidates(query)[0]
            card = SerpCard(card_type=CardType.KNOWLEDGE, documents=[official])
        elif query.category is QueryCategory.LOCAL and query.is_brand:
            homepage = self.world.universal_candidates(query)[0]
            card = SerpCard(card_type=CardType.KNOWLEDGE, documents=[homepage])
        self._knowledge_cards[query.key] = card
        return card

    def _maps_card(
        self, query: Query, snapped: LatLon, ctx: RankingContext
    ) -> Optional[SerpCard]:
        cal = self.calibration
        if query.category is not QueryCategory.LOCAL:
            return None
        probability = cal.maps_prob_brand if query.is_brand else cal.maps_prob_generic
        gate = stable_unit("maps-gate", self.seed, query.key, ctx.nonce)
        if gate >= probability:
            return None
        cache_key = (query.key, snapped)
        card = self._maps_cache.get(cache_key)
        if card is None:
            places = self.world.maps_places(query, snapped, cal.maps_card_size)
            card = (
                SerpCard(card_type=CardType.MAPS, documents=places)
                if places
                else _NO_CARD
            )
            self._maps_cache[cache_key] = card
        return card if card is not _NO_CARD else None

    def _news_card(
        self, query: Query, state: str, ctx: RankingContext
    ) -> Optional[SerpCard]:
        cal = self.calibration
        if query.category is QueryCategory.CONTROVERSIAL:
            threshold = cal.news_threshold_controversial
        elif query.category is QueryCategory.POLITICIAN:
            threshold = cal.news_threshold_politician
        else:
            return None
        if not self.world.news.has_news_card(
            query.text, ctx.day, affinity_threshold=threshold
        ):
            return None
        cache_key = (query.key, ctx.day, state)
        card = self._news_cache.get(cache_key)
        if card is None:
            articles = self.world.news_articles(query, ctx.day, state, cal.news_card_size)
            card = (
                SerpCard(card_type=CardType.NEWS, documents=articles)
                if articles
                else _NO_CARD
            )
            self._news_cache[cache_key] = card
        return card if card is not _NO_CARD else None
