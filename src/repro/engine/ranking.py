"""The ranking layer: candidates → scored results → a card page.

Score composition per document::

    score = base_score
          + geo decay        (POIs: per-mile penalty; ambiguity entities:
                              slow country-scale decay)
          + location keying  (nationally scoped docs get a deterministic
                              per-(doc, state) and per-(doc, metro)
                              offset — the reordering personalization)
          + A/B jitter       (per-(bucket, doc); the bucket is hashed
                              from the request nonce — the noise)
          + datacenter skew  (per-(datacenter, doc) index drift)
          + session boost    (docs matching a recent query's topic)

Meta-cards are attached after organic ranking: a Maps card (gated per
request — presence flicker is the paper's dominant Maps noise) and a
News card (gated per (topic, day) — stable within a day).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.calibration import EngineCalibration
from repro.engine.serp import CardType, SerpCard, SerpPage
from repro.geo.coords import LatLon, haversine_miles
from repro.queries.model import Query, QueryCategory
from repro.seeding import stable_unit
from repro.web.documents import DocKind, Document, GeoScope
from repro.web.grid import GeoGrid
from repro.web.world import WebWorld

__all__ = ["RankingContext", "Ranker"]


def _centered(*parts) -> float:
    """A deterministic value in (-1, 1) from a seed path."""
    return (stable_unit(*parts) - 0.5) * 2.0


@dataclass(frozen=True)
class RankingContext:
    """Request-derived inputs the ranking depends on."""

    location: LatLon
    day: int
    datacenter: str
    bucket: int
    nonce: int
    session_slugs: tuple = ()
    session_queries: tuple = ()  # classified recent queries (history blending)
    page: int = 0  # zero-based result page


class Ranker:
    """Scoring and page assembly over a :class:`WebWorld`.

    Caches the *request-independent* part of every candidate's score
    (base + geo decay + location keying) per (query, snapped position);
    only the per-request terms (A/B jitter, datacenter skew, session
    boost) are computed per call.  This makes the 140k-request full
    study tractable without changing any ranking semantics.
    """

    def __init__(self, world: WebWorld, calibration: EngineCalibration, seed: int):
        self.world = world
        self.calibration = calibration
        self.seed = seed
        self._snap_grid = GeoGrid(calibration.snap_cell_miles)
        self._static_pools: dict = {}
        self._state_cache: dict = {}
        self._maps_cache: dict = {}
        self._news_cache: dict = {}
        # Per-request score terms are hash draws over small key spaces
        # ((bucket, url) and (datacenter, url)); memoising the unit
        # draws keeps the inner scoring loop off SHA-256 entirely after
        # warm-up.  Amplitudes are applied outside the memo so
        # calibration stays live.
        self._jitter_units: dict = {}
        self._skew_units: dict = {}

    # -- public -------------------------------------------------------------

    def build_page(self, query: Query, ctx: RankingContext) -> SerpPage:
        """Rank candidates and assemble the card page for one request."""
        cal = self.calibration
        snapped = self._snap_grid.snap(ctx.location) if cal.snap_to_grid else ctx.location
        state = self._nearest_state(snapped)
        metro = self.world.metro_grid.cell_of(snapped)

        pool = self._static_pool(query, snapped, state, metro)
        if ctx.session_queries:
            pool = pool + self._history_entries(query, pool, ctx)
        scored = sorted(
            pool,
            key=lambda entry: (
                -(entry[1] + self._dynamic_score(entry[0], ctx)),
                entry[0].identity,
            ),
        )
        window_start = ctx.page * cal.organic_slots
        organic = [
            doc for doc, _ in scored[window_start : window_start + cal.organic_slots]
        ]

        cards: List[SerpCard] = [
            SerpCard(card_type=CardType.ORGANIC, documents=[doc]) for doc in organic
        ]
        # Meta-cards belong to the first page only, as on real frontends.
        if ctx.page == 0:
            knowledge_card = self._knowledge_card(query)
            if knowledge_card is not None:
                cards.insert(0, knowledge_card)
            maps_card = self._maps_card(query, snapped, ctx)
            if maps_card is not None:
                cards.insert(min(cal.maps_insert_rank, len(cards)), maps_card)
            news_card = self._news_card(query, state, ctx)
            if news_card is not None:
                cards.insert(min(cal.news_insert_rank, len(cards)), news_card)

        from repro.engine.suggestions import related_searches

        return SerpPage(
            query_text=query.text,
            cards=cards,
            reported_location=ctx.location,
            datacenter=ctx.datacenter,
            day=ctx.day,
            page=ctx.page,
            suggestions=tuple(
                related_searches(query, state, metro, seed=self.seed)
            ),
        )

    # -- candidates and static scoring ----------------------------------------

    def _nearest_state(self, snapped: LatLon) -> str:
        state = self._state_cache.get(snapped)
        if state is None:
            state = self.world.locator.nearest_region(snapped)
            self._state_cache[snapped] = state
        return state

    def _static_pool(self, query: Query, snapped: LatLon, state: str, metro) -> List[tuple]:
        """Candidates with their request-independent scores, memoised."""
        key = (query.key, snapped)
        pool = self._static_pools.get(key)
        if pool is not None:
            return pool
        cal = self.calibration
        candidates = list(self.world.universal_candidates(query))
        candidates.extend(self.world.state_candidates(query, state))
        candidates.extend(self.world.city_candidates(query, metro))
        candidates.extend(self.world.ambiguity_candidates(query))
        candidates.extend(
            self.world.poi_candidates(
                query,
                snapped,
                radius_miles=cal.poi_radius_miles,
                limit=cal.poi_candidate_limit,
            )
        )
        # Deduplicate by URL, keeping the best-scoring instance: two
        # nearby POIs can legitimately share a canonical URL (e.g. the
        # same business straddling a cell boundary), and an index serves
        # one entry per URL.
        best: dict = {}
        for doc in candidates:
            score = self._static_score(doc, query, snapped, state, metro)
            existing = best.get(doc.identity)
            if existing is None or score > existing[1]:
                best[doc.identity] = (doc, score)
        pool = list(best.values())
        self._static_pools[key] = pool
        return pool

    def _static_score(
        self, doc: Document, query: Query, snapped: LatLon, state: str, metro
    ) -> float:
        cal = self.calibration
        score = doc.base_score
        url = doc.identity
        if cal.index_bias:
            # This engine's crawl/scoring idiosyncrasy for the document.
            score += cal.index_bias * _centered("index-bias", self.seed, url)
        if doc.scope is GeoScope.POINT:
            assert doc.anchor is not None
            if doc.kind is DocKind.LOCAL_BUSINESS:
                distance = self.world.grid.distance_miles(snapped, doc.anchor)
                score -= cal.poi_distance_penalty_per_mile * distance
            else:
                distance = haversine_miles(snapped, doc.anchor)
                score -= cal.ambiguity_decay_per_mile * distance
        elif doc.scope is GeoScope.NATIONAL:
            amp_state, amp_metro = self._perturb_amplitudes(query)
            score += amp_state * _centered("state-perturb", self.seed, url, state)
            score += amp_metro * _centered(
                "metro-perturb", self.seed, url, metro.ix, metro.iy
            )
        return score

    def _history_entries(
        self, query: Query, pool: List[tuple], ctx: RankingContext
    ) -> List[tuple]:
        """Candidates blended in from the session's recent searches.

        The engine surfaces a few top results of recently issued queries
        (discounted, plus the session boost) — the 10-minute carryover
        personalization the paper's 11-minute waits are designed to
        dodge.
        """
        cal = self.calibration
        existing = {doc.identity for doc, _ in pool}
        entries: List[tuple] = []
        for recent in ctx.session_queries:
            if recent.key == query.key:
                continue
            for doc in self.world.universal_candidates(recent)[:2]:
                if doc.identity in existing:
                    continue
                existing.add(doc.identity)
                entries.append((doc, doc.base_score * 0.7 + cal.session_boost))
        return entries

    def _dynamic_score(self, doc: Document, ctx: RankingContext) -> float:
        """The per-request score terms: jitter, datacenter skew, session."""
        cal = self.calibration
        url = doc.identity
        jitter_amp = (
            cal.ab_jitter_local
            if doc.scope in (GeoScope.POINT, GeoScope.CITY)
            else cal.ab_jitter_national
        )
        jitter_key = (ctx.bucket, url)
        jitter_unit = self._jitter_units.get(jitter_key)
        if jitter_unit is None:
            jitter_unit = _centered("ab-jitter", self.seed, ctx.bucket, url)
            self._jitter_units[jitter_key] = jitter_unit
        score = jitter_amp * jitter_unit
        skew_key = (ctx.datacenter, url)
        skew_unit = self._skew_units.get(skew_key)
        if skew_unit is None:
            skew_unit = _centered("dc-skew", self.seed, ctx.datacenter, url)
            self._skew_units[skew_key] = skew_unit
        score += cal.datacenter_skew * skew_unit
        if ctx.session_slugs and any(slug in url for slug in ctx.session_slugs):
            score += cal.session_boost
        return score

    def _perturb_amplitudes(self, query: Query) -> tuple:
        cal = self.calibration
        if query.category is QueryCategory.LOCAL:
            if query.is_brand:
                return (cal.state_perturb_local_brand, cal.metro_perturb_local_brand)
            return (cal.state_perturb_local_generic, cal.metro_perturb_local_generic)
        if query.category is QueryCategory.CONTROVERSIAL:
            from repro.web.entities import BROAD_CONTROVERSIAL_TERMS

            amp_state = (
                cal.state_perturb_controversial_broad
                if query.text.lower() in BROAD_CONTROVERSIAL_TERMS
                else cal.state_perturb_controversial
            )
            return (amp_state, cal.metro_perturb_controversial)
        return (cal.state_perturb_politician, cal.metro_perturb_politician)

    # -- meta-cards ----------------------------------------------------------

    def _knowledge_card(self, query: Query) -> Optional[SerpCard]:
        """An entity panel for unambiguous named entities.

        Politicians get a panel unless their name is shared by other
        people (the engine cannot pick an entity for "Bill Johnson" —
        the same ambiguity that drives their residual personalization);
        brand queries get the chain's panel.  The panel links the
        entity's official site, so the parser extracts it as a normal
        first-link card.
        """
        if query.category is QueryCategory.POLITICIAN and not query.is_common_name:
            official = self.world.universal_candidates(query)[0]
            return SerpCard(card_type=CardType.KNOWLEDGE, documents=[official])
        if query.category is QueryCategory.LOCAL and query.is_brand:
            homepage = self.world.universal_candidates(query)[0]
            return SerpCard(card_type=CardType.KNOWLEDGE, documents=[homepage])
        return None

    def _maps_card(
        self, query: Query, snapped: LatLon, ctx: RankingContext
    ) -> Optional[SerpCard]:
        cal = self.calibration
        if query.category is not QueryCategory.LOCAL:
            return None
        probability = cal.maps_prob_brand if query.is_brand else cal.maps_prob_generic
        gate = stable_unit("maps-gate", self.seed, query.key, ctx.nonce)
        if gate >= probability:
            return None
        cache_key = (query.key, snapped)
        places = self._maps_cache.get(cache_key)
        if places is None:
            places = self.world.maps_places(query, snapped, cal.maps_card_size)
            self._maps_cache[cache_key] = places
        if not places:
            return None
        return SerpCard(card_type=CardType.MAPS, documents=places)

    def _news_card(
        self, query: Query, state: str, ctx: RankingContext
    ) -> Optional[SerpCard]:
        cal = self.calibration
        if query.category is QueryCategory.CONTROVERSIAL:
            threshold = cal.news_threshold_controversial
        elif query.category is QueryCategory.POLITICIAN:
            threshold = cal.news_threshold_politician
        else:
            return None
        if not self.world.news.has_news_card(
            query.text, ctx.day, affinity_threshold=threshold
        ):
            return None
        cache_key = (query.key, ctx.day, state)
        articles = self._news_cache.get(cache_key)
        if articles is None:
            articles = self.world.news_articles(query, ctx.day, state, cal.news_card_size)
            self._news_cache[cache_key] = articles
        if not articles:
            return None
        return SerpCard(card_type=CardType.NEWS, documents=articles)
