"""Engine-side query understanding.

The engine must decide what a raw query string *is* — a local-intent
query, a person, an issue — before it can pick candidate generators and
card policies.  Known corpus terms resolve exactly; unknown strings fall
back to intent heuristics (local-category vocabulary → local; two
capitalised tokens → person; otherwise issue/informational).
"""

from __future__ import annotations

from typing import Optional

from repro.queries.corpus import QueryCorpus
from repro.queries.local import LOCAL_BRAND_TERMS
from repro.queries.model import PoliticianScope, Query, QueryCategory
from repro.web.pois import CATEGORY_SPECS
from repro.web.urls import slugify

__all__ = ["QueryClassifier"]

#: Establishment nouns outside the study's 33-term corpus that still
#: carry obvious local intent (keeps the heuristic useful for
#: user-supplied query lists).
_LOCAL_INTENT_EXTRAS = {
    "pharmacy", "library", "gym", "grocery", "grocery-store", "supermarket",
    "laundromat", "dentist", "doctor", "veterinarian", "gas-station",
    "barber", "salon", "bakery", "pizza", "diner", "motel", "hotel",
    "church", "mosque", "synagogue", "dmv", "courthouse", "city-hall",
    "playground", "pool", "stadium", "theater", "cinema", "museum", "zoo",
    "daycare", "urgent-care", "clinic", "atm", "car-wash", "mechanic",
    "hardware-store", "bookstore", "florist", "pet-store",
}

#: Words that mark a two-token capitalised query as an *issue*, not a
#: person ("Net Neutrality", "Gun Control", "Gay Marriage").
_ISSUE_WORDS = {
    "neutrality", "wage", "control", "marriage", "tax", "reform",
    "rights", "policy", "act", "party", "care", "health", "energy",
    "power", "research", "warming", "drilling", "abortion", "vouchers",
    "security", "immigration", "surveillance", "amendment", "penalty",
    "punishment", "pipeline", "spending", "shutdown", "ceiling",
    "loopholes", "subsidies", "jobs", "laws", "finance", "college",
    "schools", "prisons", "drugs", "net", "gun", "gay", "death",
    "minimum", "global", "climate", "border", "voter", "campaign",
}


class QueryClassifier:
    """Maps raw query text to an annotated :class:`Query`."""

    def __init__(self, corpus: Optional[QueryCorpus] = None):
        self.corpus = corpus
        self._brand_slugs = {slugify(term) for term in LOCAL_BRAND_TERMS}

    def classify(self, text: str) -> Query:
        """Resolve ``text`` to a :class:`Query` (never raises on unknowns)."""
        stripped = text.strip()
        if not stripped:
            raise ValueError("cannot classify an empty query")
        if self.corpus is not None:
            known = self.corpus.get(stripped)
            if known is not None:
                return known
        return self._heuristic(stripped)

    def _heuristic(self, text: str) -> Query:
        slug = slugify(text)
        if slug in self._brand_slugs:
            return Query(text=text, category=QueryCategory.LOCAL, is_brand=True)
        if slug in CATEGORY_SPECS or slug in _LOCAL_INTENT_EXTRAS:
            return Query(text=text, category=QueryCategory.LOCAL, is_brand=False)
        tokens = text.split()
        if (
            len(tokens) == 2
            and all(t[:1].isupper() and t.isalpha() for t in tokens)
            and not any(t.lower() in _ISSUE_WORDS for t in tokens)
        ):
            return Query(
                text=text,
                category=QueryCategory.POLITICIAN,
                politician_scope=PoliticianScope.NATIONAL,
                is_common_name=False,
            )
        return Query(text=text, category=QueryCategory.CONTROVERSIAL)
