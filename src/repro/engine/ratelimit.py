"""Per-IP rate limiting.

The paper distributed its query load over 44 machines in a /24 "to
avoid being rate-limited by Google".  The engine enforces a rolling
per-minute budget per source IP; exceeding it returns a CAPTCHA
interstitial instead of results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

from repro.net.ip import IPv4Address

__all__ = ["RateLimiter"]


@dataclass
class RateLimiter:
    """A rolling-window request counter per client IP.

    Memory is bounded: an IP's window only holds timestamps inside the
    rolling window, and IPs whose windows have fully expired are swept
    out every ``sweep_every`` admissions — without the sweep, serving
    traffic from millions of distinct client IPs (the gateway load
    generator) would retain an empty deque per IP forever.
    """

    max_per_minute: int = 20
    window_minutes: float = 1.0
    sweep_every: int = 4096
    _history: Dict[IPv4Address, Deque[float]] = field(default_factory=dict)
    _ops_until_sweep: int = field(default=0, repr=False)

    def allow(self, ip: IPv4Address, timestamp_minutes: float) -> bool:
        """Record a request and report whether it is admitted.

        Requests are admitted while fewer than ``max_per_minute``
        requests from ``ip`` fall inside the rolling window; a rejected
        request still counts toward the window (hammering a blocked IP
        keeps it blocked).
        """
        self._ops_until_sweep -= 1
        if self._ops_until_sweep <= 0:
            self._ops_until_sweep = self.sweep_every
            self.sweep(timestamp_minutes)
        window = self._history.setdefault(ip, deque())
        cutoff = timestamp_minutes - self.window_minutes
        while window and window[0] <= cutoff:
            window.popleft()
        admitted = len(window) < self.max_per_minute
        window.append(timestamp_minutes)
        return admitted

    def outstanding(self, ip: IPv4Address, timestamp_minutes: float) -> int:
        """Requests currently inside the window for ``ip``."""
        window = self._history.get(ip)
        if not window:
            return 0
        cutoff = timestamp_minutes - self.window_minutes
        return sum(1 for t in window if t > cutoff)

    def sweep(self, timestamp_minutes: float) -> int:
        """Drop IPs whose windows are empty after pruning; returns how many."""
        cutoff = timestamp_minutes - self.window_minutes
        idle = []
        for ip, window in self._history.items():
            while window and window[0] <= cutoff:
                window.popleft()
            if not window:
                idle.append(ip)
        for ip in idle:
            del self._history[ip]
        return len(idle)

    def tracked_ips(self) -> int:
        """Number of client IPs currently holding window state."""
        return len(self._history)

    # -- state management --------------------------------------------------------

    def reset(self) -> None:
        """Forget every window, returning to the just-constructed state.

        Lets benchmarks re-serve the same virtual instant repeatedly,
        and lets a worker replica start from a known-clean limiter
        instead of papering over shared state with timestamp offsets.
        """
        self._history.clear()
        self._ops_until_sweep = 0

    def clone_state(self) -> "RateLimiter":
        """An independent limiter whose state snapshots this one's.

        Windows are deep-copied: admitting traffic on the clone never
        touches the original, yet both make identical decisions from
        the snapshot point on — how worker replicas inherit limiter
        state without sharing mutable structures across processes.
        """
        clone = RateLimiter(
            max_per_minute=self.max_per_minute,
            window_minutes=self.window_minutes,
            sweep_every=self.sweep_every,
        )
        clone._history = {ip: deque(window) for ip, window in self._history.items()}
        clone._ops_until_sweep = self._ops_until_sweep
        return clone

    def restore(self, snapshot: "RateLimiter") -> None:
        """Adopt ``snapshot``'s window state (inverse of :meth:`clone_state`)."""
        self._history = {ip: deque(window) for ip, window in snapshot._history.items()}
        self._ops_until_sweep = snapshot._ops_until_sweep

    def capture_state(self) -> dict:
        """JSON-able snapshot (for crawl checkpoints).

        Windows are captured **verbatim** — no pruning.  Admission
        compares the *raw* deque length against the budget before
        pruning happens on the access path, and retry overshoot makes
        timestamps within a window non-monotonic (two browsers sharing
        a machine append out of order), so any capture-time pruning
        could change a future admission decision.
        """
        return {
            "history": {
                str(ip.value): list(window) for ip, window in self._history.items()
            },
            "ops_until_sweep": self._ops_until_sweep,
        }

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`capture_state`."""
        self._history = {
            IPv4Address(int(value)): deque(window)
            for value, window in state["history"].items()
        }
        self._ops_until_sweep = state["ops_until_sweep"]
