"""Per-IP rate limiting.

The paper distributed its query load over 44 machines in a /24 "to
avoid being rate-limited by Google".  The engine enforces a rolling
per-minute budget per source IP; exceeding it returns a CAPTCHA
interstitial instead of results.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict

from repro.net.ip import IPv4Address

__all__ = ["RateLimiter"]


@dataclass
class RateLimiter:
    """A rolling-window request counter per client IP."""

    max_per_minute: int = 20
    window_minutes: float = 1.0
    _history: Dict[IPv4Address, Deque[float]] = field(default_factory=dict)

    def allow(self, ip: IPv4Address, timestamp_minutes: float) -> bool:
        """Record a request and report whether it is admitted.

        Requests are admitted while fewer than ``max_per_minute``
        requests from ``ip`` fall inside the rolling window; a rejected
        request still counts toward the window (hammering a blocked IP
        keeps it blocked).
        """
        window = self._history.setdefault(ip, deque())
        cutoff = timestamp_minutes - self.window_minutes
        while window and window[0] <= cutoff:
            window.popleft()
        admitted = len(window) < self.max_per_minute
        window.append(timestamp_minutes)
        return admitted

    def outstanding(self, ip: IPv4Address, timestamp_minutes: float) -> int:
        """Requests currently inside the window for ``ip``."""
        window = self._history.get(ip)
        if not window:
            return 0
        cutoff = timestamp_minutes - self.window_minutes
        return sum(1 for t in window if t > cutoff)
