"""Mobile SERP HTML rendering.

The measurement pipeline parses *HTML*, exactly like the paper's
PhantomJS crawler parsed Google's mobile pages — the engine's internal
page structure is never handed to the analysis directly.  The markup
mimics the card layout of paper Fig. 1, including the footer line that
reports the user's detected location (which the authors used to verify
their GPS spoofing worked).

Rendering is parameterised by an :class:`~repro.engine.dialect.EngineDialect`,
so a second engine ("Bingo") emits structurally equivalent pages in a
different HTML vocabulary — which the dialect-aware parser must detect,
just as a real multi-engine crawler maintains per-engine selectors.
"""

from __future__ import annotations

import html
from typing import Optional

from repro.engine.dialect import GOOGLE_LIKE, EngineDialect
from repro.engine.serp import CardType, SerpCard, SerpPage

__all__ = ["render_page", "render_captcha"]

_PAGE_TEMPLATE = """<!DOCTYPE html>
<html>
<head>
<meta name="viewport" content="width=device-width, initial-scale=1">
<title>{query} - Search</title>
</head>
<body>
<div id="sbox"><form action="/search"><input name="{query_input}" value="{query}"></form></div>
<div id="{container_id}">
{cards}
</div>
<div class="{related_class}">{related}</div>
<footer>
  <span class="{location_class}">Results for <b class="loc">{lat:.5f},{lon:.5f}</b> - reported by your device</span>
  <span class="{dc_class}" data-dc="{datacenter}"></span>
  <span class="{day_class}" data-day="{day}"></span>
  <nav class="pagination" data-page="{page}"><a href="/search?{query_input}={query}&start={next_start}">Next</a></nav>
</footer>
</body>
</html>
"""


# Rendered-fragment caches.  The ranking layer pools card objects
# (organic cards per document, meta-cards per cell/day), so the same
# SerpCard instance is rendered at the same rank thousands of times per
# study.  Keys use id(card) for O(1) hashing; the value pins the card
# object so its id cannot be recycled while the entry lives.  Related
# strips key on the suggestions tuple itself (shared per query/region).
_CARD_HTML_CAP = 1 << 14
_card_html_cache: dict = {}
_RELATED_HTML_CAP = 1 << 12
_related_html_cache: dict = {}


def _render_card_cached(card: SerpCard, index: int, dialect: EngineDialect) -> str:
    key = (id(card), index, dialect.name)
    entry = _card_html_cache.get(key)
    if entry is not None:
        return entry[1]
    rendered = _render_card(card, index, dialect)
    if len(_card_html_cache) >= _CARD_HTML_CAP:
        _card_html_cache.clear()
    _card_html_cache[key] = (card, rendered)
    return rendered


def _render_related(suggestions: tuple, dialect: EngineDialect) -> str:
    key = (suggestions, dialect.name)
    rendered = _related_html_cache.get(key)
    if rendered is None:
        rendered = "".join(
            f'<a class="{dialect.related_item_class}" '
            f'href="/search?{dialect.query_input_name}={html.escape(s, quote=True)}">'
            f"{html.escape(s)}</a>"
            for s in suggestions
        )
        if len(_related_html_cache) >= _RELATED_HTML_CAP:
            _related_html_cache.clear()
        _related_html_cache[key] = rendered
    return rendered


def _render_card(card: SerpCard, index: int, dialect: EngineDialect) -> str:
    if card.card_type is CardType.ORGANIC:
        doc = card.documents[0]
        return (
            f'<div class="{dialect.card_class} {dialect.organic_class}" data-rank="{index}">'
            f'<a class="{dialect.link_class}" href="{html.escape(str(doc.url), quote=True)}">'
            f"{html.escape(doc.title)}</a>"
            f"<cite>{html.escape(doc.url.host)}</cite>"
            f"</div>"
        )
    if card.card_type is CardType.KNOWLEDGE:
        doc = card.documents[0]
        return (
            f'<div class="{dialect.card_class} {dialect.knowledge_class}" data-rank="{index}">'
            f"<h2>{html.escape(doc.title)}</h2>"
            f'<a class="{dialect.link_class}" href="{html.escape(str(doc.url), quote=True)}">'
            f"{html.escape(doc.url.host)}</a>"
            f"<dl><dt>Source</dt><dd>{html.escape(doc.url.host)}</dd></dl>"
            f"</div>"
        )
    if card.card_type is CardType.MAPS:
        css = dialect.maps_class
        heading = dialect.maps_heading
        item_css = dialect.maps_item_class
    else:
        css = dialect.news_class
        heading = dialect.news_heading
        item_css = dialect.news_item_class
    items = "".join(
        f'<div class="{item_css}">'
        f'<a class="{dialect.link_class}" href="{html.escape(str(doc.url), quote=True)}">'
        f"{html.escape(doc.title)}</a>"
        f"</div>"
        for doc in card.documents
    )
    return (
        f'<div class="{dialect.card_class} {css}" data-rank="{index}">'
        f"<h3>{heading}</h3>{items}</div>"
    )


def render_page(page: SerpPage, dialect: Optional[EngineDialect] = None) -> str:
    """Render a :class:`SerpPage` to the mobile HTML the crawler saves."""
    dialect = dialect or GOOGLE_LIKE
    cards = "\n".join(
        _render_card_cached(card, index + 1, dialect)
        for index, card in enumerate(page.cards)
    )
    related = _render_related(tuple(page.suggestions), dialect)
    return _PAGE_TEMPLATE.format(
        query=html.escape(page.query_text, quote=True),
        query_input=dialect.query_input_name,
        container_id=dialect.results_container_id,
        cards=cards,
        related_class=dialect.related_class,
        related=related,
        lat=page.reported_location.lat,
        lon=page.reported_location.lon,
        location_class=dialect.location_note_class,
        dc_class=dialect.datacenter_note_class,
        day_class=dialect.day_note_class,
        datacenter=html.escape(page.datacenter, quote=True),
        day=page.day,
        page=page.page,
        next_start=(page.page + 1) * max(1, page.card_count(CardType.ORGANIC)),
    )


def render_captcha(query_text: str, dialect: Optional[EngineDialect] = None) -> str:
    """The interstitial served to rate-limited clients."""
    dialect = dialect or GOOGLE_LIKE
    return (
        "<!DOCTYPE html><html><head><title>Unusual traffic</title></head>"
        f"<body><div id='{dialect.captcha_id}'>Our systems have detected unusual "
        f"traffic from your computer network. Query: {html.escape(query_text)}</div>"
        "</body></html>"
    )
