"""Datacenters and the search service's DNS footprint.

Google serves search from many datacenters whose indexes drift slightly
out of sync; hitting different ones between paired queries is a noise
source.  The paper pins the frontend hostname to one datacenter via a
static DNS mapping (§2.2).  Here a :class:`DatacenterCluster` owns the
frontend IPs and the per-datacenter *index skew* identity the ranking
layer keys its drift on.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.geo.coords import LatLon
from repro.net.dns import DNSRecord, DNSResolver
from repro.net.ip import IPv4Address

__all__ = ["SEARCH_HOSTNAME", "Datacenter", "DatacenterCluster", "DATACENTER_SITES"]

#: The search frontend's DNS name (the paper statically mapped
#: google.com's equivalent).
SEARCH_HOSTNAME = "search.example.com"

#: Physical sites datacenters are placed at, in cluster order (the
#: metros of real US search datacenters).  The serving gateway's
#: geo-affinity routing keys on these; the ranking layer never does —
#: only the datacenter *name* feeds the index-skew identity.
DATACENTER_SITES = [
    ("Council Bluffs, IA", LatLon(41.2619, -95.8608)),
    ("The Dalles, OR", LatLon(45.5946, -121.1787)),
    ("Berkeley County, SC", LatLon(33.1960, -80.0131)),
    ("Mayes County, OK", LatLon(36.2412, -95.3293)),
    ("Lenoir, NC", LatLon(35.9140, -81.5390)),
    ("Douglas County, GA", LatLon(33.7515, -84.7477)),
]


@dataclass(frozen=True)
class Datacenter:
    """One serving site."""

    name: str
    frontend_ip: IPv4Address
    location: LatLon = LatLon(39.8283, -98.5795)  # mid-US when unplaced
    site: str = "unknown"


class DatacenterCluster:
    """The set of datacenters behind one search service's hostname."""

    def __init__(
        self,
        count: int = 6,
        base_ip: str = "198.51.100.0",
        hostname: str = SEARCH_HOSTNAME,
    ):
        if count <= 0:
            raise ValueError(f"need at least one datacenter, got {count}")
        self.hostname = hostname
        base = IPv4Address.parse(base_ip)
        self._datacenters: List[Datacenter] = [
            Datacenter(
                name=f"dc{i:02d}",
                frontend_ip=base + (i + 1),
                site=DATACENTER_SITES[i % len(DATACENTER_SITES)][0],
                location=DATACENTER_SITES[i % len(DATACENTER_SITES)][1],
            )
            for i in range(count)
        ]
        self._by_ip: Dict[IPv4Address, Datacenter] = {
            dc.frontend_ip: dc for dc in self._datacenters
        }

    def __len__(self) -> int:
        return len(self._datacenters)

    def __iter__(self):
        return iter(self._datacenters)

    def __getitem__(self, index: int) -> Datacenter:
        return self._datacenters[index]

    def by_ip(self, ip: IPv4Address) -> Datacenter:
        """The datacenter owning a frontend IP."""
        try:
            return self._by_ip[ip]
        except KeyError:
            raise KeyError(f"no datacenter serves {ip}") from None

    def dns_record(self) -> DNSRecord:
        """The A record set for the search hostname."""
        return DNSRecord(
            name=self.hostname,
            addresses=[dc.frontend_ip for dc in self._datacenters],
        )

    def install_into(self, resolver: DNSResolver) -> None:
        """Register the search hostname in a resolver."""
        resolver.add_record(self.dns_record())
