"""Search request / response models.

The engine's contract mirrors what a real mobile search frontend sees:
a query string, the client IP the TCP connection came from, an optional
Geolocation-API fix (possibly spoofed), cookies, a user agent, and which
frontend (datacenter) IP the request reached after DNS resolution.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.geo.coords import LatLon
from repro.net.ip import IPv4Address

__all__ = ["SearchRequest", "SearchResponse", "ResponseStatus"]


class ResponseStatus(enum.Enum):
    """Outcome of a search request."""

    OK = 200
    RATE_LIMITED = 429
    SERVER_ERROR = 500
    """Transient frontend failure (only ever produced by fault
    injection; the request never reached ranking or session state)."""
    OVERLOADED = 503
    """Shed by the serving gateway: every replica queue was full."""


@dataclass(frozen=True)
class SearchRequest:
    """One query hitting the search frontend.

    Attributes:
        query_text: The raw query string.
        client_ip: Source IP of the request.
        frontend_ip: The datacenter frontend IP the request reached
            (decided by DNS resolution on the client side).
        timestamp_minutes: Virtual time in minutes since the study epoch.
        gps: Geolocation-API fix, if the page obtained one (spoofable).
        cookie_id: Stable cookie identifier, or ``None`` if cookies are
            cleared/blocked.
        user_agent: Browser User-Agent string.
        nonce: Unique per-request entropy (connection/event identity);
            drives the A/B bucket assignment and per-request card gates.
        page: Zero-based result-page index (the ``start=`` parameter of
            a real frontend).  The study uses page 0, like the paper;
            the pagination experiment requests deeper pages.
    """

    query_text: str
    client_ip: IPv4Address
    frontend_ip: IPv4Address
    timestamp_minutes: float
    gps: Optional[LatLon] = None
    cookie_id: Optional[str] = None
    user_agent: str = "Mozilla/5.0"
    nonce: int = 0
    page: int = 0

    def __post_init__(self) -> None:
        if not self.query_text.strip():
            raise ValueError("query_text must be non-empty")
        if self.timestamp_minutes < 0:
            raise ValueError("timestamp_minutes must be non-negative")
        if self.page < 0:
            raise ValueError("page must be non-negative")

    @property
    def day(self) -> int:
        """Virtual day index of the request."""
        return int(self.timestamp_minutes // (24 * 60))

    def wide_dims(self) -> dict:
        """The request dimensions every wide event carries."""
        return {
            "ts": self.timestamp_minutes,
            "query": self.query_text,
            "day": self.day,
            "page": self.page,
            "session": self.cookie_id is not None,
        }


@dataclass(frozen=True)
class SearchResponse:
    """What the frontend returns: rendered HTML plus a status."""

    status: ResponseStatus
    html: str
    degraded: bool = False
    """Served best-effort from a stale cache entry because every
    replica for the datacenter was down (gateway degraded mode).  The
    bytes are real SERP HTML, but possibly from an earlier virtual day
    — consumers must treat the page as approximate, not current."""

    @property
    def ok(self) -> bool:
        return self.status is ResponseStatus.OK
