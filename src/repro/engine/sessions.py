"""Cookie-keyed session state: the 10-minute personalization window.

Prior work found Google personalizes on searches made within the last
10 minutes (paper §2.2, noise control #3).  The engine reproduces this:
for a cookie seen recently, documents topically matching a recent query
get a score boost, and the session *remembers the last location* — two
confounds the paper's methodology removes by clearing cookies after
every query and waiting 11 minutes between queries.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.geo.coords import LatLon
from repro.web.urls import slugify

__all__ = ["SessionStore"]


@dataclass
class _SessionEntry:
    recent: List[Tuple[float, str]] = field(default_factory=list)  # (time, query slug)
    last_location: Optional[LatLon] = None
    last_seen_minutes: float = 0.0


@dataclass
class SessionStore:
    """Per-cookie search history with a sliding relevance window."""

    window_minutes: float = 10.0
    _sessions: Dict[str, _SessionEntry] = field(default_factory=dict)

    def record(
        self,
        cookie_id: str,
        query_text: str,
        timestamp_minutes: float,
        location: Optional[LatLon],
    ) -> None:
        """Record a completed search for a cookie."""
        entry = self._sessions.setdefault(cookie_id, _SessionEntry())
        entry.recent.append((timestamp_minutes, slugify(query_text)))
        entry.last_seen_minutes = timestamp_minutes
        if location is not None:
            entry.last_location = location
        self._prune(entry, timestamp_minutes)

    def recent_query_slugs(self, cookie_id: Optional[str], now_minutes: float) -> List[str]:
        """Slugs of the cookie's searches inside the window."""
        if cookie_id is None:
            return []
        entry = self._sessions.get(cookie_id)
        if entry is None:
            return []
        self._prune(entry, now_minutes)
        return [slug for _, slug in entry.recent]

    def remembered_location(
        self, cookie_id: Optional[str], now_minutes: float
    ) -> Optional[LatLon]:
        """The location the session remembers, if still fresh.

        Location memory outlives the 10-minute topical window a little
        (3x), modelling the "remembering a treatment's prior location"
        effect the paper clears cookies to avoid.
        """
        if cookie_id is None:
            return None
        entry = self._sessions.get(cookie_id)
        if entry is None:
            return None
        if now_minutes - entry.last_seen_minutes > 3 * self.window_minutes:
            return None
        return entry.last_location

    def clear(self, cookie_id: str) -> None:
        """Forget one cookie entirely (what clearing cookies causes)."""
        self._sessions.pop(cookie_id, None)

    def _prune(self, entry: _SessionEntry, now_minutes: float) -> None:
        entry.recent = [
            (t, slug)
            for t, slug in entry.recent
            if now_minutes - t <= self.window_minutes
        ]

    def __len__(self) -> int:
        return len(self._sessions)

    # -- checkpointing -------------------------------------------------------

    def capture_state(self, now_minutes: float) -> dict:
        """JSON-able snapshot of every session still able to affect output.

        Sessions whose every timestamp lies more than ``3 * window``
        before ``now_minutes`` are dropped: no request at or after
        ``now_minutes`` can read a remembered location or a recent slug
        from them, and the next ``record`` on that cookie overwrites
        location and last-seen while pruning the stale slugs — so the
        dropped and kept variants are output-equivalent.  Entries that
        survive are captured verbatim (timestamps may be
        non-monotonic: retries overshoot into the next round).
        """
        horizon = 3 * self.window_minutes
        sessions = {}
        for cookie_id, entry in self._sessions.items():
            freshest = max(
                [entry.last_seen_minutes] + [t for t, _ in entry.recent]
            )
            if now_minutes - freshest > horizon:
                continue
            sessions[cookie_id] = [
                [[t, slug] for t, slug in entry.recent],
                (
                    [entry.last_location.lat, entry.last_location.lon]
                    if entry.last_location is not None
                    else None
                ),
                entry.last_seen_minutes,
            ]
        return {"sessions": sessions}

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`capture_state`."""
        self._sessions = {
            cookie_id: _SessionEntry(
                recent=[(t, slug) for t, slug in recent],
                last_location=LatLon(*location) if location is not None else None,
                last_seen_minutes=last_seen,
            )
            for cookie_id, (recent, location, last_seen) in state["sessions"].items()
        }
