"""The simulated search engine.

A card-based mobile search frontend with the behaviours the paper
measures on Google:

* **GPS-first geolocation** — a request's spoofed Geolocation-API fix
  wins over the IP-derived location (validated in paper §2.2);
* **grid-snapped local retrieval** — local candidates are fetched
  around the user's quantised position (this produces the county-level
  result clustering of Fig. 8);
* **location-keyed reordering** of nationally relevant results;
* **Maps / News meta-cards** with probabilistic and day-driven gates;
* **A/B-bucket score jitter** and per-datacenter index skew (the noise
  the paper's paired-control methodology quantifies);
* **session personalization** over a 10-minute window (the confound the
  crawler's 11-minute waits and cookie clearing remove);
* **per-IP rate limiting** (why the crawl needed 44 machines).
"""

from repro.engine.calibration import EngineCalibration
from repro.engine.datacenters import Datacenter, DatacenterCluster, SEARCH_HOSTNAME
from repro.engine.frontend import SearchEngine
from repro.engine.ratelimit import RateLimiter
from repro.engine.request import SearchRequest, SearchResponse
from repro.engine.serp import CardType, SerpCard, SerpPage
from repro.engine.sessions import SessionStore

__all__ = [
    "EngineCalibration",
    "Datacenter",
    "DatacenterCluster",
    "SEARCH_HOSTNAME",
    "SearchEngine",
    "RateLimiter",
    "SearchRequest",
    "SearchResponse",
    "CardType",
    "SerpCard",
    "SerpPage",
    "SessionStore",
]
