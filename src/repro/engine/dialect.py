"""Engine dialects: markup and hostname differences between engines.

The paper notes its methodology "could easily be applied to other
search engines like Bing" (§1).  What actually differs between engines,
from the crawler's point of view, is the *dialect*: the DNS name, and
the HTML vocabulary the parser must understand.  A
:class:`EngineDialect` captures exactly that surface, so one parser
(with a dialect registry) and one renderer serve any number of engines.

Two dialects ship:

* ``GOOGLE_LIKE`` — the card-based mobile layout of the paper (Fig. 1);
* ``BINGO`` — a Bing-flavoured layout with different class names,
  container ids, and hostname.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["EngineDialect", "GOOGLE_LIKE", "BINGO", "DIALECTS", "register_dialect"]


@dataclass(frozen=True)
class EngineDialect:
    """The crawler-visible surface of one search engine.

    Attributes mirror the selectors a scraper would maintain per
    engine.  All values are class names / ids except ``hostname`` and
    ``query_input_name``.
    """

    name: str
    hostname: str
    results_container_id: str
    card_class: str
    organic_class: str
    maps_class: str
    news_class: str
    link_class: str
    maps_item_class: str
    news_item_class: str
    location_note_class: str
    datacenter_note_class: str
    day_note_class: str
    query_input_name: str
    captcha_id: str
    maps_heading: str
    news_heading: str
    related_class: str
    related_item_class: str
    knowledge_class: str

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("dialect needs a name")
        if "." not in self.hostname:
            raise ValueError(f"implausible hostname: {self.hostname!r}")


GOOGLE_LIKE = EngineDialect(
    name="google-like",
    hostname="search.example.com",
    results_container_id="rso",
    card_class="card",
    organic_class="card-organic",
    maps_class="card-maps",
    news_class="card-news",
    link_class="result-link",
    maps_item_class="map-place",
    news_item_class="news-item",
    location_note_class="location-note",
    datacenter_note_class="dc-note",
    day_note_class="day-note",
    query_input_name="q",
    captcha_id="captcha",
    maps_heading="Places",
    news_heading="In the news",
    related_class="related-searches",
    related_item_class="related-link",
    knowledge_class="card-knowledge",
)

BINGO = EngineDialect(
    name="bingo",
    hostname="www.bingo.example.net",
    results_container_id="b_results",
    card_class="b_algo",
    organic_class="b_web",
    maps_class="b_localpack",
    news_class="b_newsstrip",
    link_class="b_title",
    maps_item_class="b_place",
    news_item_class="b_story",
    location_note_class="b_geo",
    datacenter_note_class="b_edge",
    day_note_class="b_date",
    query_input_name="qs",
    captcha_id="b_captcha",
    maps_heading="Local results",
    news_heading="News about this",
    related_class="b_rs",
    related_item_class="b_rs_link",
    knowledge_class="b_entity",
)

#: Registry the parser consults, in priority order.
DIALECTS: List[EngineDialect] = [GOOGLE_LIKE, BINGO]

_BY_NAME: Dict[str, EngineDialect] = {d.name: d for d in DIALECTS}


def register_dialect(dialect: EngineDialect) -> None:
    """Add a user-defined dialect to the parser registry."""
    if dialect.name in _BY_NAME:
        raise ValueError(f"dialect already registered: {dialect.name!r}")
    DIALECTS.append(dialect)
    _BY_NAME[dialect.name] = dialect
