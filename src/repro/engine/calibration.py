"""Engine calibration: every tunable behind the paper's findings.

The defaults are calibrated so the measurement pipeline reproduces the
*shape* of every figure in the paper (see EXPERIMENTS.md for paper-vs-
measured numbers).  Each knob names the behaviour it controls; the
ablation benchmarks flip them one at a time.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

__all__ = ["EngineCalibration"]


@dataclass(frozen=True)
class EngineCalibration:
    """All ranking / noise / card parameters of the simulated engine."""

    # ---- page geometry ----------------------------------------------------
    organic_slots: int = 17
    """Organic result cards per page (plus meta-cards → 12-22 links)."""

    # ---- local retrieval --------------------------------------------------
    poi_radius_miles: float = 2.5
    """Radius of the local-candidate fetch around the snapped position."""

    poi_candidate_limit: int = 30
    """Max POIs considered per query (nearest-first)."""

    poi_distance_penalty_per_mile: float = 0.22
    """Score subtracted per mile between user and POI."""

    snap_to_grid: bool = True
    """Quantise the user position before local retrieval.

    The source of county-level result clustering (Fig. 8a): voting
    districts that fall into the same snap cell receive identical local
    candidates.  The ablation benchmark disables it.
    """

    snap_cell_miles: float = 1.7
    """Edge length of the snap cell — the engine's location-cache
    quantum, deliberately coarser than the world's POI grid."""

    # ---- ambiguity entities -----------------------------------------------
    ambiguity_decay_per_mile: float = 0.0035
    """Score decay per mile for same-named-person pages (~3.5 per 1000 mi)."""

    # ---- location-keyed reordering of national results ---------------------
    state_perturb_local_generic: float = 0.30
    metro_perturb_local_generic: float = 0.26
    state_perturb_local_brand: float = 0.10
    metro_perturb_local_brand: float = 0.06
    state_perturb_controversial: float = 0.07
    state_perturb_controversial_broad: float = 0.18
    metro_perturb_controversial: float = 0.025
    state_perturb_politician: float = 0.04
    metro_perturb_politician: float = 0.015

    # ---- noise ------------------------------------------------------------
    ab_buckets: int = 1024
    """Number of A/B experiment buckets requests are hashed into."""

    ab_jitter_local: float = 0.14
    """Half-width of the per-(bucket, doc) uniform score jitter applied to
    POINT/CITY-scoped documents (the tightly packed local results)."""

    ab_jitter_national: float = 0.06
    """Half-width of the jitter applied to nationally scoped documents."""

    datacenter_skew: float = 0.06
    """Half-width of the per-(datacenter, doc) index-skew offset."""

    index_bias: float = 0.0
    """Half-width of a per-(engine, doc) score offset.

    Zero for the primary engine; a second engine (see
    ``repro.core.crossengine``) sets it non-zero so the two engines'
    crawling/scoring differences surface different result *sets* over
    the same web — like Google vs. Bing."""

    # ---- Maps meta-card ---------------------------------------------------
    maps_prob_generic: float = 0.85
    """Per-request probability a generic local query gets a Maps card."""

    maps_prob_brand: float = 0.03
    """Per-request probability a brand query gets a Maps card (paper:
    brand queries "typically do not yield Maps results")."""

    maps_card_size: int = 3
    maps_insert_rank: int = 1
    """Maps card is inserted after this many organic cards."""

    # ---- News meta-card ---------------------------------------------------
    news_threshold_controversial: float = 0.45
    """has_news_card threshold for controversial terms (lower → more cards)."""

    news_threshold_politician: float = 0.75
    news_card_size: int = 3
    news_insert_rank: int = 2

    # ---- session personalization -------------------------------------------
    session_window_minutes: float = 10.0
    """How long prior searches influence ranking (paper §2.2 item 3)."""

    session_boost: float = 0.8
    """Score bonus for documents matching a recent query's topic."""

    # ---- rate limiting ----------------------------------------------------
    ratelimit_max_per_minute: int = 20
    """Per-IP request budget per rolling minute before a CAPTCHA."""

    def with_overrides(self, **kwargs) -> "EngineCalibration":
        """A copy with some fields replaced (for ablations)."""
        return replace(self, **kwargs)

    def __post_init__(self) -> None:
        if self.organic_slots <= 0:
            raise ValueError("organic_slots must be positive")
        if not 0 <= self.maps_prob_generic <= 1:
            raise ValueError("maps_prob_generic must be a probability")
        if not 0 <= self.maps_prob_brand <= 1:
            raise ValueError("maps_prob_brand must be a probability")
        if self.poi_radius_miles <= 0:
            raise ValueError("poi_radius_miles must be positive")
        if self.ab_buckets <= 0:
            raise ValueError("ab_buckets must be positive")
