"""SERP structure: cards and pages.

The mobile frontend renders results as *cards* (paper Fig. 1).  Normal
cards carry one result; Maps and News meta-cards carry several.  The
paper's parser extracts the first link of each normal card and every
link of each meta-card, yielding 12–22 links per page.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List

from repro.geo.coords import LatLon
from repro.web.documents import Document

__all__ = ["CardType", "SerpCard", "SerpPage"]


class CardType(enum.Enum):
    """The card flavours the renderer emits.

    The paper's parser distinguishes only normal/Maps/News; a
    ``KNOWLEDGE`` entity panel (paper Fig. 1 shows such cards) renders
    with its own class but parses as a normal card — its first link is
    extracted like any other, which is exactly how the original study
    treated panels it did not special-case.
    """

    ORGANIC = "organic"
    MAPS = "maps"
    NEWS = "news"
    KNOWLEDGE = "knowledge"


@dataclass(frozen=True)
class SerpCard:
    """One card on the page."""

    card_type: CardType
    documents: List[Document]

    def __post_init__(self) -> None:
        if not self.documents:
            raise ValueError("a card must carry at least one document")
        if (
            self.card_type in (CardType.ORGANIC, CardType.KNOWLEDGE)
            and len(self.documents) != 1
        ):
            raise ValueError(
                f"{self.card_type.value} cards carry exactly one document"
            )


@dataclass(frozen=True)
class SerpPage:
    """A full page of search results.

    Attributes:
        query_text: The query the page answers.
        cards: Cards in display order.
        reported_location: The location the engine personalised for —
            rendered in the page footer, which is how the paper's
            authors manually verified GPS spoofing worked.
        datacenter: Name of the datacenter that served the page.
        day: Virtual day the page was served.
        page: Zero-based result-page index (0 = first page, the paper's
            scope; meta-cards appear only here).
    """

    query_text: str
    cards: List[SerpCard]
    reported_location: LatLon
    datacenter: str
    day: int
    page: int = 0
    suggestions: tuple = ()
    """Related-search suggestions shown under the results."""

    def links(self) -> List[str]:
        """Every link on the page, in reading order (pre-parser truth).

        Used by engine-level tests; the measurement pipeline gets its
        links from the HTML parser instead.
        """
        urls: List[str] = []
        for card in self.cards:
            for doc in card.documents:
                urls.append(str(doc.url))
        return urls

    def card_count(self, card_type: CardType) -> int:
        """Number of cards of one type."""
        return sum(1 for c in self.cards if c.card_type is card_type)
