"""Reproduction of "Location, Location, Location: The Impact of
Geolocation on Web Search Personalization" (Kliman-Silver et al.,
IMC 2015).

The package splits into the paper's *methodology* (:mod:`repro.core`:
crawler, parser, metrics, analyses) and the *substrate* it is exercised
against offline (:mod:`repro.engine`: a simulated location-personalizing
search engine over the synthetic web of :mod:`repro.web`, reached
through the network models of :mod:`repro.net`, placed on the geography
of :mod:`repro.geo`, queried with the corpus of :mod:`repro.queries`).

Quickstart::

    from repro import Study, StudyConfig, StudyReport

    study = Study(StudyConfig.small())
    dataset = study.run()
    print(StudyReport(dataset).render_fig5())
"""

from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.experiment import DEFAULT_STUDY_SEED, StudyConfig
from repro.core.metrics import edit_distance, jaccard_index
from repro.core.report import StudyReport
from repro.core.runner import Study
from repro.engine.calibration import EngineCalibration
from repro.geo.granularity import Granularity
from repro.queries.corpus import build_corpus
from repro.queries.model import Query, QueryCategory

__version__ = "1.0.0"

__all__ = [
    "SerpDataset",
    "SerpRecord",
    "DEFAULT_STUDY_SEED",
    "StudyConfig",
    "edit_distance",
    "jaccard_index",
    "StudyReport",
    "Study",
    "EngineCalibration",
    "Granularity",
    "build_corpus",
    "Query",
    "QueryCategory",
    "__version__",
]
