"""Per-region demographic feature vectors.

Paper §3.2 ("Demographics") correlates 25 demographic features —
population density, poverty, educational attainment, ethnic composition,
English fluency, income, etc. — against the pairwise similarity of
county-level search results, and finds *no* correlation.  Census data is
not available offline, so profiles are synthesised deterministically per
region with realistic ranges and internal consistency constraints
(e.g. ethnic shares sum to 1, poverty anticorrelates with income).

The *independence* finding survives the substitution by construction:
the engine's geo-ranker never reads these features, so any correlation
the analysis finds would be spurious — exactly the null the paper tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping

from repro.geo.regions import Region
from repro.seeding import derive_rng

__all__ = ["DEMOGRAPHIC_FEATURES", "DemographicProfile", "demographic_profile"]

#: The 25 demographic features examined in paper §3.2.
DEMOGRAPHIC_FEATURES: List[str] = [
    "population",
    "population_density",
    "median_age",
    "median_income",
    "mean_income",
    "poverty_rate",
    "unemployment_rate",
    "high_school_attainment",
    "bachelors_attainment",
    "graduate_attainment",
    "white_share",
    "black_share",
    "hispanic_share",
    "asian_share",
    "other_ethnicity_share",
    "english_fluency",
    "foreign_born_share",
    "homeownership_rate",
    "median_home_value",
    "median_rent",
    "commute_minutes",
    "households",
    "household_size",
    "veteran_share",
    "internet_access_rate",
]

_GEOGRAPHY_SEED = 20151028


@dataclass(frozen=True)
class DemographicProfile:
    """A 25-feature demographic vector for one region."""

    region_name: str
    features: Mapping[str, float]

    def __post_init__(self) -> None:
        missing = set(DEMOGRAPHIC_FEATURES) - set(self.features)
        if missing:
            raise ValueError(f"profile missing features: {sorted(missing)}")

    def __getitem__(self, feature: str) -> float:
        return self.features[feature]

    def vector(self) -> List[float]:
        """Feature values in the canonical :data:`DEMOGRAPHIC_FEATURES` order."""
        return [self.features[name] for name in DEMOGRAPHIC_FEATURES]


def demographic_profile(region: Region) -> DemographicProfile:
    """Synthesise the demographic profile of ``region``.

    Deterministic per region (keyed by qualified name), with realistic
    ranges and the internal constraints described in the module docstring.
    """
    rng = derive_rng(_GEOGRAPHY_SEED, "demographics", region.qualified_name)

    population = rng.lognormvariate(11.0, 1.1)  # ~60k median, heavy tail
    density = rng.lognormvariate(5.0, 1.4)  # people per square mile
    median_income = rng.uniform(32_000, 95_000)
    income_noise = rng.uniform(0.95, 1.25)
    mean_income = median_income * income_noise
    # Poverty anticorrelates with income with some residual noise.
    income_pos = (median_income - 32_000) / (95_000 - 32_000)
    poverty = max(0.02, min(0.40, 0.30 - 0.22 * income_pos + rng.gauss(0, 0.03)))
    unemployment = max(0.02, min(0.20, 0.5 * poverty + rng.gauss(0.03, 0.015)))

    hs = rng.uniform(0.75, 0.95)
    bachelors = rng.uniform(0.12, min(0.55, hs - 0.2))
    graduate = rng.uniform(0.04, bachelors * 0.6)

    # Ethnic composition via a crude stick-breaking draw.
    white = rng.uniform(0.45, 0.95)
    remaining = 1.0 - white
    black = remaining * rng.uniform(0.1, 0.7)
    remaining -= black
    hispanic = remaining * rng.uniform(0.1, 0.8)
    remaining -= hispanic
    asian = remaining * rng.uniform(0.1, 0.9)
    other = max(0.0, 1.0 - white - black - hispanic - asian)

    features: Dict[str, float] = {
        "population": population,
        "population_density": density,
        "median_age": rng.uniform(28.0, 48.0),
        "median_income": median_income,
        "mean_income": mean_income,
        "poverty_rate": poverty,
        "unemployment_rate": unemployment,
        "high_school_attainment": hs,
        "bachelors_attainment": bachelors,
        "graduate_attainment": graduate,
        "white_share": white,
        "black_share": black,
        "hispanic_share": hispanic,
        "asian_share": asian,
        "other_ethnicity_share": other,
        "english_fluency": rng.uniform(0.80, 0.99),
        "foreign_born_share": rng.uniform(0.01, 0.25),
        "homeownership_rate": rng.uniform(0.40, 0.80),
        "median_home_value": rng.uniform(70_000, 450_000),
        "median_rent": rng.uniform(550, 1_800),
        "commute_minutes": rng.uniform(14.0, 38.0),
        "households": population / rng.uniform(2.1, 2.9),
        "household_size": rng.uniform(2.1, 2.9),
        "veteran_share": rng.uniform(0.04, 0.14),
        "internet_access_rate": rng.uniform(0.60, 0.97),
    }
    return DemographicProfile(region_name=region.qualified_name, features=features)
