"""Granularities and study-location selection.

The paper picks 66 query locations: the centroids of 22 random US states
(*national* granularity), the centroids of 22 random Ohio counties
(*state* granularity), and 15 voting districts in Cuyahoga County
(*county* granularity).  :func:`select_study_locations` reproduces that
selection deterministically from a seed.
"""

from __future__ import annotations

import enum
import itertools
import statistics
from dataclasses import dataclass
from typing import Dict, List, Sequence

from repro.geo.cuyahoga import cuyahoga_voting_districts
from repro.geo.ohio import ohio_county_regions
from repro.geo.regions import Region
from repro.geo.usa import us_state_regions
from repro.seeding import derive_rng

__all__ = [
    "Granularity",
    "StudyLocations",
    "select_study_locations",
    "all_known_regions",
]

#: Paper defaults: 22 states + 22 counties + 15 districts.
DEFAULT_STATE_COUNT = 22
DEFAULT_COUNTY_COUNT = 22
DEFAULT_DISTRICT_COUNT = 15


class Granularity(enum.Enum):
    """The three spatial scales the study compares.

    Values sort from smallest to largest scale; ``Granularity.order()``
    gives the canonical plotting order used by every figure.
    """

    COUNTY = "county"  # voting districts inside Cuyahoga County (~1 mi)
    STATE = "state"  # county centroids inside Ohio (~100 mi)
    NATIONAL = "national"  # state centroids across the USA (~1000 mi)

    @staticmethod
    def order() -> List["Granularity"]:
        """Granularities from smallest to largest spatial scale."""
        return [Granularity.COUNTY, Granularity.STATE, Granularity.NATIONAL]

    @property
    def label(self) -> str:
        """Axis label as printed in the paper's figures."""
        return {
            Granularity.COUNTY: "County (Cuyahoga)",
            Granularity.STATE: "State (Ohio)",
            Granularity.NATIONAL: "National (USA)",
        }[self]


@dataclass(frozen=True)
class StudyLocations:
    """The location sets for all three granularities."""

    by_granularity: Dict[Granularity, List[Region]]

    def locations(self, granularity: Granularity) -> List[Region]:
        """The query locations at one granularity."""
        return list(self.by_granularity[granularity])

    def all_locations(self) -> List[Region]:
        """Every location in the study, county scale first."""
        result: List[Region] = []
        for granularity in Granularity.order():
            result.extend(self.by_granularity[granularity])
        return result

    def total(self) -> int:
        """Total number of query locations."""
        return sum(len(v) for v in self.by_granularity.values())

    def mean_pairwise_distance_miles(self, granularity: Granularity) -> float:
        """Mean great-circle distance between location pairs.

        The paper reports ~1 mile for districts and ~100 miles for Ohio
        counties; this lets tests and benchmarks check the synthesised
        geography matches that scale.
        """
        regions = self.by_granularity[granularity]
        distances = [
            a.distance_miles(b) for a, b in itertools.combinations(regions, 2)
        ]
        if not distances:
            raise ValueError(f"need at least two locations at {granularity}")
        return statistics.fmean(distances)


def all_known_regions() -> Dict[str, Region]:
    """Every region in the geographic pools, by qualified name.

    Covers all 50 states, all 88 Ohio counties, and the full synthesised
    Cuyahoga precinct pool — a superset of any study's sampled
    locations, so analyses can resolve locations regardless of which
    seed sampled them.
    """
    regions: Dict[str, Region] = {}
    for region in us_state_regions():
        regions[region.qualified_name] = region
    for region in ohio_county_regions():
        regions[region.qualified_name] = region
    for region in cuyahoga_voting_districts():
        regions[region.qualified_name] = region
    return regions


def _sample(rng, pool: Sequence[Region], count: int, *, exclude: Sequence[str] = ()) -> List[Region]:
    candidates = [r for r in pool if r.name not in exclude]
    if count > len(candidates):
        raise ValueError(f"cannot sample {count} from pool of {len(candidates)}")
    return sorted(rng.sample(candidates, count), key=Region.key)


def select_study_locations(
    seed: int,
    *,
    state_count: int = DEFAULT_STATE_COUNT,
    county_count: int = DEFAULT_COUNTY_COUNT,
    district_count: int = DEFAULT_DISTRICT_COUNT,
) -> StudyLocations:
    """Pick the study's query locations, reproducing the paper's design.

    Ohio is always included among the national-level states (the study is
    anchored there), Cuyahoga is always among the Ohio counties, and the
    districts are sampled from the synthesised Cuyahoga precinct pool.

    Args:
        seed: Master seed; the same seed always yields the same study.
        state_count: States at national granularity (paper: 22).
        county_count: Ohio counties at state granularity (paper: 22).
        district_count: Cuyahoga districts at county granularity (paper: 15).
    """
    rng = derive_rng(seed, "study-locations")
    states = _sample(rng, us_state_regions(), state_count - 1, exclude=("Ohio",))
    states.append(next(r for r in us_state_regions() if r.name == "Ohio"))
    states.sort(key=Region.key)

    counties = _sample(rng, ohio_county_regions(), county_count - 1, exclude=("Cuyahoga",))
    counties.append(next(r for r in ohio_county_regions() if r.name == "Cuyahoga"))
    counties.sort(key=Region.key)

    districts = _sample(rng, cuyahoga_voting_districts(), district_count)

    return StudyLocations(
        by_granularity={
            Granularity.NATIONAL: states,
            Granularity.STATE: counties,
            Granularity.COUNTY: districts,
        }
    )
