"""Cuyahoga County voting districts.

The county granularity of the study issues queries from the centroids of
15 voting districts inside Cuyahoga County, ~1 mile apart on average.
Real precinct shapefiles are not available offline, so districts are
synthesised as a jittered grid over the urbanised core of the county
around Cleveland — preserving the property the study depends on: a set
of locations separated by on the order of one mile.
"""

from __future__ import annotations

from typing import List

from repro.geo.coords import KM_PER_MILE, LatLon, destination
from repro.geo.regions import Region, RegionKind
from repro.seeding import derive_rng

__all__ = ["CUYAHOGA_CENTER", "cuyahoga_voting_districts"]

#: Approximate centroid of Cuyahoga County (Cleveland metro), Ohio.
CUYAHOGA_CENTER = LatLon(41.4339, -81.6758)

_GEOGRAPHY_SEED = 20151028
# Paper: the sampled voting districts are "on average 1 mile apart" —
# a tight urban cluster.  The grid pitch below gives a 60-precinct pool
# spanning ~5 miles, whose 15-district samples have nearest-neighbour
# spacing under a mile and mean pairwise distance of ~2 miles.
_GRID_SPACING_MILES = 0.85
_JITTER_MILES = 0.18


def cuyahoga_voting_districts(count: int = 60) -> List[Region]:
    """Synthesise ``count`` voting-district centroids in Cuyahoga County.

    Districts are laid out on a jittered square grid with sub-mile pitch
    centred on the county centroid, matching the paper's "on average 1
    mile apart".  The layout is deterministic: the same ``count`` always
    yields the same districts.

    Args:
        count: Number of districts to synthesise (the study samples 15 of
            these; the default of 60 approximates the pool of real
            precincts a sample would be drawn from).
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    side = 1
    while side * side < count:
        side += 1
    rng = derive_rng(_GEOGRAPHY_SEED, "cuyahoga-districts", count)
    districts: List[Region] = []
    half = (side - 1) / 2.0
    index = 0
    for row in range(side):
        for col in range(side):
            if index >= count:
                break
            north_miles = (row - half) * _GRID_SPACING_MILES + rng.uniform(
                -_JITTER_MILES, _JITTER_MILES
            )
            east_miles = (col - half) * _GRID_SPACING_MILES + rng.uniform(
                -_JITTER_MILES, _JITTER_MILES
            )
            point = destination(
                CUYAHOGA_CENTER,
                0.0 if north_miles >= 0 else 180.0,
                abs(north_miles) * KM_PER_MILE,
            )
            point = destination(
                point,
                90.0 if east_miles >= 0 else 270.0,
                abs(east_miles) * KM_PER_MILE,
            )
            index += 1
            districts.append(
                Region(
                    name=f"Precinct-{index:03d}",
                    kind=RegionKind.DISTRICT,
                    center=point,
                    parent="Cuyahoga",
                    fips=f"39035-{index:03d}",
                )
            )
    return districts
