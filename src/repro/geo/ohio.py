"""Ohio counties.

The state granularity of the study issues queries from the centroids of
22 randomly chosen Ohio counties, which the paper reports are ~100 miles
apart on average.  All 88 county names are real.  Centroids for a set of
well-known counties are real approximate values; the remainder are
synthesised deterministically inside Ohio's bounding box (documented
substitution — the study depends only on the *scale* of inter-county
distances, not on exact coordinates).
"""

from __future__ import annotations

from typing import Dict, List

from repro.geo.coords import LatLon
from repro.geo.regions import Region, RegionKind
from repro.seeding import derive_rng

__all__ = ["OHIO_COUNTIES", "ohio_county_regions", "ohio_county"]

#: The 88 counties of Ohio.
OHIO_COUNTIES: List[str] = [
    "Adams", "Allen", "Ashland", "Ashtabula", "Athens", "Auglaize",
    "Belmont", "Brown", "Butler", "Carroll", "Champaign", "Clark",
    "Clermont", "Clinton", "Columbiana", "Coshocton", "Crawford",
    "Cuyahoga", "Darke", "Defiance", "Delaware", "Erie", "Fairfield",
    "Fayette", "Franklin", "Fulton", "Gallia", "Geauga", "Greene",
    "Guernsey", "Hamilton", "Hancock", "Hardin", "Harrison", "Henry",
    "Highland", "Hocking", "Holmes", "Huron", "Jackson", "Jefferson",
    "Knox", "Lake", "Lawrence", "Licking", "Logan", "Lorain", "Lucas",
    "Madison", "Mahoning", "Marion", "Medina", "Meigs", "Mercer",
    "Miami", "Monroe", "Montgomery", "Morgan", "Morrow", "Muskingum",
    "Noble", "Ottawa", "Paulding", "Perry", "Pickaway", "Pike",
    "Portage", "Preble", "Putnam", "Richland", "Ross", "Sandusky",
    "Scioto", "Seneca", "Shelby", "Stark", "Summit", "Trumbull",
    "Tuscarawas", "Union", "Van Wert", "Vinton", "Warren", "Washington",
    "Wayne", "Williams", "Wood", "Wyandot",
]

#: Real approximate centroids for the most populous / well-known counties.
_KNOWN_CENTROIDS: Dict[str, LatLon] = {
    "Cuyahoga": LatLon(41.4339, -81.6758),
    "Franklin": LatLon(39.9696, -83.0093),
    "Hamilton": LatLon(39.1946, -84.5438),
    "Summit": LatLon(41.1260, -81.5317),
    "Montgomery": LatLon(39.7545, -84.2898),
    "Lucas": LatLon(41.6846, -83.4682),
    "Stark": LatLon(40.8140, -81.3674),
    "Butler": LatLon(39.4395, -84.5756),
    "Lorain": LatLon(41.2951, -82.1515),
    "Mahoning": LatLon(41.0145, -80.7762),
    "Lake": LatLon(41.7137, -81.2452),
    "Warren": LatLon(39.4273, -84.1666),
    "Trumbull": LatLon(41.3175, -80.7610),
    "Delaware": LatLon(40.2785, -83.0049),
    "Licking": LatLon(40.0916, -82.4830),
    "Athens": LatLon(39.3338, -82.0451),
    "Wood": LatLon(41.3617, -83.6227),
}

# Ohio's bounding box, clipped well inside the borders so synthesised
# centroids do not fall in Lake Erie, across the river, or close enough
# to a neighbouring state that nearest-centroid reverse geolocation
# (see repro.geo.locate) would misattribute them.
_OHIO_LAT_RANGE = (39.35, 41.30)
_OHIO_LON_RANGE = (-84.20, -81.30)

# Synthetic centroid placement is seeded by a fixed constant, not the
# study seed: the *map of Ohio* is part of the world, not the experiment.
_GEOGRAPHY_SEED = 20151028  # IMC'15 opening day


def _synthesise_centroid(county: str) -> LatLon:
    rng = derive_rng(_GEOGRAPHY_SEED, "ohio-county-centroid", county)
    lat = rng.uniform(*_OHIO_LAT_RANGE)
    lon = rng.uniform(*_OHIO_LON_RANGE)
    return LatLon(round(lat, 4), round(lon, 4))


def ohio_county(name: str) -> Region:
    """Return the :class:`Region` for one Ohio county by name."""
    if name not in OHIO_COUNTIES:
        raise KeyError(f"unknown Ohio county: {name!r}")
    center = _KNOWN_CENTROIDS.get(name) or _synthesise_centroid(name)
    fips = f"39{(OHIO_COUNTIES.index(name) * 2 + 1):03d}"
    return Region(name=name, kind=RegionKind.COUNTY, center=center, parent="Ohio", fips=fips)


def ohio_county_regions() -> List[Region]:
    """All 88 Ohio counties as :class:`Region` objects, alphabetical."""
    return [ohio_county(name) for name in OHIO_COUNTIES]
