"""US state centroids.

The national granularity of the study issues queries from the centroids
of 22 randomly chosen states.  Coordinates below are approximate interior
centroids (within ~30 km of published geographic centers), which is far
more precise than the study needs — inter-state distances are hundreds of
miles.
"""

from __future__ import annotations

from typing import Dict, List

from repro.geo.coords import LatLon
from repro.geo.regions import Region, RegionKind

__all__ = ["US_STATES", "us_state_regions", "us_state"]

#: Approximate geographic centers of the 50 US states: name -> (lat, lon).
US_STATES: Dict[str, LatLon] = {
    "Alabama": LatLon(32.7794, -86.8287),
    "Alaska": LatLon(64.0685, -152.2782),
    "Arizona": LatLon(34.2744, -111.6602),
    "Arkansas": LatLon(34.8938, -92.4426),
    "California": LatLon(37.1841, -119.4696),
    "Colorado": LatLon(38.9972, -105.5478),
    "Connecticut": LatLon(41.6219, -72.7273),
    "Delaware": LatLon(38.9896, -75.5050),
    "Florida": LatLon(28.6305, -82.4497),
    "Georgia": LatLon(32.6415, -83.4426),
    "Hawaii": LatLon(20.2927, -156.3737),
    "Idaho": LatLon(44.3509, -114.6130),
    "Illinois": LatLon(40.0417, -89.1965),
    "Indiana": LatLon(39.8942, -86.2816),
    "Iowa": LatLon(42.0751, -93.4960),
    "Kansas": LatLon(38.4937, -98.3804),
    "Kentucky": LatLon(37.5347, -85.3021),
    "Louisiana": LatLon(31.0689, -91.9968),
    "Maine": LatLon(45.3695, -69.2428),
    "Maryland": LatLon(39.0550, -76.7909),
    "Massachusetts": LatLon(42.2596, -71.8083),
    "Michigan": LatLon(44.3467, -85.4102),
    "Minnesota": LatLon(46.2807, -94.3053),
    "Mississippi": LatLon(32.7364, -89.6678),
    "Missouri": LatLon(38.3566, -92.4580),
    "Montana": LatLon(47.0527, -109.6333),
    "Nebraska": LatLon(41.5378, -99.7951),
    "Nevada": LatLon(39.3289, -116.6312),
    "New Hampshire": LatLon(43.6805, -71.5811),
    "New Jersey": LatLon(40.1907, -74.6728),
    "New Mexico": LatLon(34.4071, -106.1126),
    "New York": LatLon(42.9538, -75.5268),
    "North Carolina": LatLon(35.5557, -79.3877),
    "North Dakota": LatLon(47.4501, -100.4659),
    "Ohio": LatLon(40.2862, -82.7937),
    "Oklahoma": LatLon(35.5889, -97.4943),
    "Oregon": LatLon(43.9336, -120.5583),
    "Pennsylvania": LatLon(40.8781, -77.7996),
    "Rhode Island": LatLon(41.6762, -71.5562),
    "South Carolina": LatLon(33.9169, -80.8964),
    "South Dakota": LatLon(44.4443, -100.2263),
    "Tennessee": LatLon(35.8580, -86.3505),
    "Texas": LatLon(31.4757, -99.3312),
    "Utah": LatLon(39.3055, -111.6703),
    "Vermont": LatLon(44.0687, -72.6658),
    "Virginia": LatLon(37.5215, -78.8537),
    "Washington": LatLon(47.3826, -120.4472),
    "West Virginia": LatLon(38.6409, -80.6227),
    "Wisconsin": LatLon(44.6243, -89.9941),
    "Wyoming": LatLon(42.9957, -107.5512),
}

#: FIPS codes for the 50 states, used as stable identifiers.
_STATE_FIPS: Dict[str, str] = {
    "Alabama": "01", "Alaska": "02", "Arizona": "04", "Arkansas": "05",
    "California": "06", "Colorado": "08", "Connecticut": "09",
    "Delaware": "10", "Florida": "12", "Georgia": "13", "Hawaii": "15",
    "Idaho": "16", "Illinois": "17", "Indiana": "18", "Iowa": "19",
    "Kansas": "20", "Kentucky": "21", "Louisiana": "22", "Maine": "23",
    "Maryland": "24", "Massachusetts": "25", "Michigan": "26",
    "Minnesota": "27", "Mississippi": "28", "Missouri": "29",
    "Montana": "30", "Nebraska": "31", "Nevada": "32",
    "New Hampshire": "33", "New Jersey": "34", "New Mexico": "35",
    "New York": "36", "North Carolina": "37", "North Dakota": "38",
    "Ohio": "39", "Oklahoma": "40", "Oregon": "41", "Pennsylvania": "42",
    "Rhode Island": "44", "South Carolina": "45", "South Dakota": "46",
    "Tennessee": "47", "Texas": "48", "Utah": "49", "Vermont": "50",
    "Virginia": "51", "Washington": "53", "West Virginia": "54",
    "Wisconsin": "55", "Wyoming": "56",
}


def us_state(name: str) -> Region:
    """Return the :class:`Region` for one state by name."""
    try:
        center = US_STATES[name]
    except KeyError:
        raise KeyError(f"unknown US state: {name!r}") from None
    return Region(
        name=name,
        kind=RegionKind.STATE,
        center=center,
        parent="USA",
        fips=_STATE_FIPS[name],
    )


def us_state_regions() -> List[Region]:
    """All 50 states as :class:`Region` objects, in alphabetical order."""
    return [us_state(name) for name in sorted(US_STATES)]
