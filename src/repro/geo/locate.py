"""Reverse geolocation: coordinate → enclosing top-level region.

The engine scopes some content (regional government pages, region-wide
news outlets) to the user's state/province.  Without offline
shapefiles, containment is approximated by nearest *anchor*: every
region contributes its centroid plus its major cities, and the region
owning the closest anchor wins.  City anchors matter near borders —
Cincinnati (Hamilton County, OH) is closer to Indiana's centroid than
to Ohio's, but its own anchor resolves it correctly.

The anchor set is a :class:`RegionLocator`, so the same mechanism works
for any country (see :mod:`repro.geo.germany` for the second pack,
demonstrating the paper's "extended to other countries" direction).
:func:`nearest_state` is the US-bound convenience used throughout.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.geo.coords import LatLon
from repro.geo.usa import US_STATES

__all__ = ["RegionLocator", "US_LOCATOR", "nearest_state"]


class RegionLocator:
    """Nearest-anchor assignment of coordinates to named regions."""

    def __init__(self, name: str, anchors: Sequence[Tuple[str, LatLon]]):
        if not anchors:
            raise ValueError("a locator needs at least one anchor")
        self.name = name
        self._anchors: List[Tuple[str, LatLon]] = list(anchors)
        self._cache: Dict[LatLon, str] = {}

    @classmethod
    def from_tables(
        cls,
        name: str,
        centroids: Dict[str, LatLon],
        city_anchors: Dict[str, List[Tuple[float, float]]],
    ) -> "RegionLocator":
        """Build a locator from centroid + city-anchor tables."""
        anchors: List[Tuple[str, LatLon]] = []
        for region in sorted(centroids):
            anchors.append((region, centroids[region]))
            for lat, lon in city_anchors.get(region, ()):
                anchors.append((region, LatLon(lat, lon)))
        return cls(name, anchors)

    def regions(self) -> List[str]:
        """All region names the locator can resolve to."""
        return sorted({name for name, _ in self._anchors})

    def nearest_region(self, point: LatLon) -> str:
        """Name of the region owning the anchor closest to ``point``."""
        cached = self._cache.get(point)
        if cached is not None:
            return cached
        best = self._anchors[0][0]
        best_distance = float("inf")
        for name, anchor in self._anchors:
            distance = point.distance_km(anchor)
            if distance < best_distance:
                best = name
                best_distance = distance
        if len(self._cache) < 65536:
            self._cache[point] = best
        return best


#: Major-city anchors per US state (approximate coordinates).  Only
#: cities that materially improve border resolution are needed;
#: centroids cover the interior.
_US_CITY_ANCHORS: Dict[str, List[Tuple[float, float]]] = {
    "Ohio": [
        (41.4993, -81.6944),  # Cleveland
        (39.9612, -82.9988),  # Columbus
        (39.1031, -84.5120),  # Cincinnati
        (41.6528, -83.5379),  # Toledo
        (39.7589, -84.1916),  # Dayton
        (40.7989, -81.3784),  # Canton
        (41.0998, -80.6495),  # Youngstown
        (40.7684, -82.5515),  # Mansfield
        (39.3292, -82.1013),  # Athens
        (40.4203, -80.6520),  # Steubenville
        (41.0442, -83.6499),  # Findlay
        (40.7426, -84.1052),  # Lima
    ],
    "Indiana": [(39.7684, -86.1581), (41.5934, -87.3464), (37.9716, -87.5711)],
    "Kentucky": [(38.2527, -85.7585), (38.0406, -84.5037), (36.9685, -86.4808)],
    "West Virginia": [(38.3498, -81.6326), (39.6295, -79.9559), (40.0700, -80.7209)],
    "Pennsylvania": [(39.9526, -75.1652), (40.4406, -79.9959), (41.2033, -77.1945)],
    "Michigan": [(42.3314, -83.0458), (42.9634, -85.6681), (43.0125, -83.6875)],
    "New York": [(40.7128, -74.0060), (42.8864, -78.8784), (43.0481, -76.1474)],
    "Illinois": [(41.8781, -87.6298), (39.7817, -89.6501), (38.5200, -89.9839)],
    "Missouri": [(38.6270, -90.1994), (39.0997, -94.5786)],
    "Kansas": [(39.1141, -94.6275), (37.6872, -97.3301)],
    "New Jersey": [(40.7357, -74.1724), (39.9526, -75.1196)],
    "Maryland": [(39.2904, -76.6122), (38.5976, -77.0000)],
    "Virginia": [(37.5407, -77.4360), (38.8048, -77.0469)],
    "Texas": [(29.7604, -95.3698), (32.7767, -96.7970), (31.7619, -106.4850)],
    "California": [(34.0522, -118.2437), (37.7749, -122.4194), (32.7157, -117.1611)],
    "Florida": [(25.7617, -80.1918), (30.3322, -81.6557), (27.9506, -82.4572)],
    "Georgia": [(33.7490, -84.3880), (32.0809, -81.0912)],
    "Massachusetts": [(42.3601, -71.0589), (42.1015, -72.5898)],
    "Washington": [(47.6062, -122.3321), (46.2396, -119.1006)],
    "Oregon": [(45.5152, -122.6784), (44.0521, -123.0868)],
    "Nevada": [(36.1699, -115.1398), (39.5296, -119.8138)],
    "Arizona": [(33.4484, -112.0740), (32.2226, -110.9747)],
    "Colorado": [(39.7392, -104.9903), (38.8339, -104.8214)],
    "Minnesota": [(44.9778, -93.2650), (46.7867, -92.1005)],
    "Wisconsin": [(43.0389, -87.9065), (43.0731, -89.4012)],
    "Iowa": [(41.5868, -93.6250), (42.5006, -96.4003)],
    "Nebraska": [(41.2565, -95.9345), (40.8136, -96.7026)],
    "Tennessee": [(36.1627, -86.7816), (35.1495, -90.0490), (35.0456, -85.3097)],
    "North Carolina": [(35.2271, -80.8431), (35.7796, -78.6382)],
    "South Carolina": [(34.0007, -81.0348), (32.7765, -79.9311)],
    "Alabama": [(33.5186, -86.8104), (30.6954, -88.0399)],
    "Louisiana": [(29.9511, -90.0715), (32.5093, -92.1193)],
    "Oklahoma": [(35.4676, -97.5164), (36.1540, -95.9928)],
    "Arkansas": [(34.7465, -92.2896)],
    "Mississippi": [(32.2988, -90.1848)],
    "Utah": [(40.7608, -111.8910)],
    "New Mexico": [(35.0844, -106.6504)],
    "Idaho": [(43.6150, -116.2023)],
    "Montana": [(45.7833, -108.5007)],
    "Wyoming": [(41.1400, -104.8202)],
    "North Dakota": [(46.8772, -96.7898)],
    "South Dakota": [(43.5446, -96.7311)],
    "Maine": [(43.6591, -70.2568)],
    "New Hampshire": [(42.9956, -71.4548)],
    "Vermont": [(44.4759, -73.2121)],
    "Connecticut": [(41.7658, -72.6734), (41.3083, -72.9279)],
    "Rhode Island": [(41.8240, -71.4128)],
    "Delaware": [(39.7391, -75.5398)],
    "Alaska": [(61.2181, -149.9003)],
    "Hawaii": [(21.3069, -157.8583)],
}

#: The default locator: the 50 US states.
US_LOCATOR = RegionLocator.from_tables("USA", US_STATES, _US_CITY_ANCHORS)


def nearest_state(point: LatLon) -> str:
    """Name of the US state owning the anchor closest to ``point``."""
    return US_LOCATOR.nearest_region(point)
