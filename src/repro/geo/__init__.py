"""Geographic substrate: coordinates, regions, study locations, demographics.

The paper compares search results collected at three granularities —
voting districts inside Cuyahoga County (~1 mile apart), county centroids
inside Ohio (~100 miles apart), and centroids of US states.  This package
provides those location sets, the coordinate math used throughout the
engine and the analyses, and per-region demographic feature vectors used
by the demographics-correlation experiment (paper §3.2).
"""

from repro.geo.coords import (
    EARTH_RADIUS_KM,
    KM_PER_MILE,
    LatLon,
    centroid,
    destination,
    haversine_km,
    haversine_miles,
)
from repro.geo.cuyahoga import CUYAHOGA_CENTER, cuyahoga_voting_districts
from repro.geo.demographics import (
    DEMOGRAPHIC_FEATURES,
    DemographicProfile,
    demographic_profile,
)
from repro.geo.granularity import Granularity, StudyLocations, select_study_locations
from repro.geo.ohio import OHIO_COUNTIES, ohio_county_regions
from repro.geo.regions import Region, RegionKind
from repro.geo.usa import US_STATES, us_state_regions

__all__ = [
    "EARTH_RADIUS_KM",
    "KM_PER_MILE",
    "LatLon",
    "centroid",
    "destination",
    "haversine_km",
    "haversine_miles",
    "CUYAHOGA_CENTER",
    "cuyahoga_voting_districts",
    "DEMOGRAPHIC_FEATURES",
    "DemographicProfile",
    "demographic_profile",
    "Granularity",
    "StudyLocations",
    "select_study_locations",
    "OHIO_COUNTIES",
    "ohio_county_regions",
    "Region",
    "RegionKind",
    "US_STATES",
    "us_state_regions",
]
