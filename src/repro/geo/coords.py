"""Latitude/longitude coordinates and great-circle geometry.

All distance math in the reproduction goes through this module so that
the engine's geo-ranker, the location pickers, and the analysis code
agree on a single distance definition (haversine on a spherical Earth —
accurate to ~0.5% which is far below anything the study depends on).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Sequence

__all__ = [
    "EARTH_RADIUS_KM",
    "KM_PER_MILE",
    "LatLon",
    "haversine_km",
    "haversine_miles",
    "destination",
    "centroid",
]

EARTH_RADIUS_KM = 6371.0088
KM_PER_MILE = 1.609344


@dataclass(frozen=True, order=True)
class LatLon:
    """A WGS84-style latitude/longitude pair in decimal degrees.

    Instances are immutable and hashable so they can key caches (the
    engine memoises candidate pools per snapped coordinate).
    """

    lat: float
    lon: float

    def __post_init__(self) -> None:
        if not -90.0 <= self.lat <= 90.0:
            raise ValueError(f"latitude out of range: {self.lat}")
        if not -180.0 <= self.lon <= 180.0:
            raise ValueError(f"longitude out of range: {self.lon}")

    def distance_km(self, other: "LatLon") -> float:
        """Great-circle distance to ``other`` in kilometres."""
        return haversine_km(self, other)

    def distance_miles(self, other: "LatLon") -> float:
        """Great-circle distance to ``other`` in statute miles."""
        return haversine_miles(self, other)

    def offset(self, bearing_deg: float, distance_km: float) -> "LatLon":
        """The point ``distance_km`` away along ``bearing_deg``."""
        return destination(self, bearing_deg, distance_km)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"({self.lat:.5f}, {self.lon:.5f})"


def haversine_km(a: LatLon, b: LatLon) -> float:
    """Great-circle distance between two points in kilometres."""
    lat1, lon1 = math.radians(a.lat), math.radians(a.lon)
    lat2, lon2 = math.radians(b.lat), math.radians(b.lon)
    dlat = lat2 - lat1
    dlon = lon2 - lon1
    h = math.sin(dlat / 2) ** 2 + math.cos(lat1) * math.cos(lat2) * math.sin(dlon / 2) ** 2
    return 2 * EARTH_RADIUS_KM * math.asin(min(1.0, math.sqrt(h)))


def haversine_miles(a: LatLon, b: LatLon) -> float:
    """Great-circle distance between two points in statute miles."""
    return haversine_km(a, b) / KM_PER_MILE


def destination(origin: LatLon, bearing_deg: float, distance_km: float) -> LatLon:
    """The destination point from ``origin`` along a great circle.

    Used to synthesise voting-district grids and to scatter POIs around a
    region centroid.
    """
    if distance_km < 0:
        raise ValueError(f"distance must be non-negative, got {distance_km}")
    angular = distance_km / EARTH_RADIUS_KM
    bearing = math.radians(bearing_deg)
    lat1 = math.radians(origin.lat)
    lon1 = math.radians(origin.lon)
    lat2 = math.asin(
        math.sin(lat1) * math.cos(angular) + math.cos(lat1) * math.sin(angular) * math.cos(bearing)
    )
    lon2 = lon1 + math.atan2(
        math.sin(bearing) * math.sin(angular) * math.cos(lat1),
        math.cos(angular) - math.sin(lat1) * math.sin(lat2),
    )
    # Normalise longitude to [-180, 180).
    lon2_deg = (math.degrees(lon2) + 540.0) % 360.0 - 180.0
    return LatLon(math.degrees(lat2), lon2_deg)


def centroid(points: Iterable[LatLon]) -> LatLon:
    """The (spherical) centroid of a set of points.

    Computed by averaging the unit vectors of each point, which behaves
    correctly across the antimeridian — unlike naive lat/lon averaging.
    """
    pts: Sequence[LatLon] = list(points)
    if not pts:
        raise ValueError("centroid of empty point set is undefined")
    x = y = z = 0.0
    for p in pts:
        lat = math.radians(p.lat)
        lon = math.radians(p.lon)
        x += math.cos(lat) * math.cos(lon)
        y += math.cos(lat) * math.sin(lon)
        z += math.sin(lat)
    n = len(pts)
    x, y, z = x / n, y / n, z / n
    norm = math.sqrt(x * x + y * y + z * z)
    if norm < 1e-12:
        raise ValueError("centroid is undefined for antipodal point sets")
    lat = math.asin(z / norm)
    lon = math.atan2(y, x)
    return LatLon(math.degrees(lat), math.degrees(lon))
