"""The region hierarchy used by the study.

A :class:`Region` is a named geographic unit with a representative
coordinate (its centroid).  The paper's three granularities map onto
three :class:`RegionKind` values: ``STATE`` (national granularity uses
state centroids), ``COUNTY`` (state granularity uses Ohio county
centroids), and ``DISTRICT`` (county granularity uses Cuyahoga voting
districts).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional, Tuple

from repro.geo.coords import LatLon

__all__ = ["RegionKind", "Region"]


class RegionKind(enum.Enum):
    """The level of a region in the nation → district hierarchy."""

    NATION = "nation"
    STATE = "state"
    COUNTY = "county"
    DISTRICT = "district"


@dataclass(frozen=True)
class Region:
    """A named geographic unit with a centroid.

    Attributes:
        name: Human-readable name, e.g. ``"Ohio"`` or ``"Cuyahoga"``.
        kind: Level in the hierarchy.
        center: Representative coordinate (queries are issued from here).
        parent: Name of the enclosing region (``None`` for the nation).
        fips: Census FIPS-style identifier where applicable.
    """

    name: str
    kind: RegionKind
    center: LatLon
    parent: Optional[str] = None
    fips: Optional[str] = None

    @property
    def qualified_name(self) -> str:
        """Unambiguous name, e.g. ``"county:Ohio/Cuyahoga"``."""
        prefix = f"{self.parent}/" if self.parent else ""
        return f"{self.kind.value}:{prefix}{self.name}"

    def distance_miles(self, other: "Region") -> float:
        """Great-circle distance between the two region centroids."""
        return self.center.distance_miles(other.center)

    def key(self) -> Tuple[str, str]:
        """A stable sort/dict key."""
        return (self.kind.value, self.qualified_name)
