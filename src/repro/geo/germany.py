"""Germany country pack — the "other countries" extension.

The paper's conclusion: "Our methodology can easily be extended to
other countries and search engines."  This module is the country half
of that claim: the same three-granularity design transplanted onto
German geography —

* **national** granularity: centroids of the 16 Länder,
* **state** granularity: district (Kreis) centroids inside Bavaria
  (Germany's largest Land, the Ohio analogue),
* **county** granularity: Bezirke of Berlin (the Cuyahoga analogue —
  the most populous urban area, districts ~a few km apart).

Land centroids and major-city anchors are real approximate values;
Bavarian Kreis centroids are synthesised inside Bavaria's bounding box
(same documented substitution as Ohio's counties).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.geo.coords import KM_PER_MILE, LatLon, destination
from repro.geo.granularity import Granularity, StudyLocations, _sample
from repro.geo.locate import RegionLocator
from repro.geo.regions import Region, RegionKind
from repro.seeding import derive_rng

__all__ = [
    "GERMAN_LAENDER",
    "GERMANY_LOCATOR",
    "german_land_regions",
    "bavarian_kreis_regions",
    "berlin_bezirk_regions",
    "germany_study_locations",
]

#: Approximate centroids of the 16 German Länder.
GERMAN_LAENDER: Dict[str, LatLon] = {
    "Baden-Wuerttemberg": LatLon(48.6616, 9.3501),
    "Bayern": LatLon(48.7904, 11.4979),
    "Berlin": LatLon(52.5200, 13.4050),
    "Brandenburg": LatLon(52.4125, 12.5316),
    "Bremen": LatLon(53.0793, 8.8017),
    "Hamburg": LatLon(53.5511, 9.9937),
    "Hessen": LatLon(50.6521, 9.1624),
    "Mecklenburg-Vorpommern": LatLon(53.6127, 12.4296),
    "Niedersachsen": LatLon(52.6367, 9.8451),
    "Nordrhein-Westfalen": LatLon(51.4332, 7.6616),
    "Rheinland-Pfalz": LatLon(50.1183, 7.3090),
    "Saarland": LatLon(49.3964, 7.0230),
    "Sachsen": LatLon(51.1045, 13.2017),
    "Sachsen-Anhalt": LatLon(51.9503, 11.6923),
    "Schleswig-Holstein": LatLon(54.2194, 9.6961),
    "Thueringen": LatLon(50.9013, 11.0262),
}

#: Major-city anchors per Land (for border resolution).
_GERMAN_CITY_ANCHORS: Dict[str, List[Tuple[float, float]]] = {
    "Bayern": [(48.1351, 11.5820), (49.4521, 11.0767), (49.0134, 12.1016)],
    "Baden-Wuerttemberg": [(48.7758, 9.1829), (47.9990, 7.8421)],
    "Nordrhein-Westfalen": [(50.9375, 6.9603), (51.5136, 7.4653), (51.2277, 6.7735)],
    "Hessen": [(50.1109, 8.6821), (51.3127, 9.4797)],
    "Niedersachsen": [(52.3759, 9.7320), (53.0793, 8.8017)],
    "Sachsen": [(51.3397, 12.3731), (51.0504, 13.7373)],
    "Berlin": [(52.5200, 13.4050)],
    "Hamburg": [(53.5511, 9.9937)],
    "Rheinland-Pfalz": [(49.9929, 8.2473)],
    "Thueringen": [(50.9848, 11.0299)],
    "Brandenburg": [(52.3906, 13.0645)],
    "Mecklenburg-Vorpommern": [(54.0924, 12.0991)],
    "Schleswig-Holstein": [(54.3233, 10.1228)],
    "Sachsen-Anhalt": [(52.1205, 11.6276), (51.4964, 11.9688)],
    "Saarland": [(49.2402, 6.9969)],
    "Bremen": [(53.0793, 8.8017)],
}

#: The German locator (drop-in for the US one in the engine).
GERMANY_LOCATOR = RegionLocator.from_tables(
    "Germany", GERMAN_LAENDER, _GERMAN_CITY_ANCHORS
)

_GEOGRAPHY_SEED = 20151028

# Bavaria's bounding box, clipped well inside its borders so the
# nearest-anchor locator never attributes a synthesised Kreis to a
# neighbouring Land.
_BAVARIA_LAT_RANGE = (47.95, 49.85)
_BAVARIA_LON_RANGE = (10.45, 12.55)

#: Real Bezirke of Berlin with approximate centres.
_BERLIN_BEZIRKE: List[Tuple[str, float, float]] = [
    ("Mitte", 52.5200, 13.4050),
    ("Friedrichshain-Kreuzberg", 52.5070, 13.4500),
    ("Pankow", 52.5970, 13.4360),
    ("Charlottenburg-Wilmersdorf", 52.5060, 13.3040),
    ("Spandau", 52.5360, 13.2000),
    ("Steglitz-Zehlendorf", 52.4340, 13.2420),
    ("Tempelhof-Schoeneberg", 52.4670, 13.3850),
    ("Neukoelln", 52.4410, 13.4360),
    ("Treptow-Koepenick", 52.4430, 13.5740),
    ("Marzahn-Hellersdorf", 52.5370, 13.6060),
    ("Lichtenberg", 52.5310, 13.4970),
    ("Reinickendorf", 52.5880, 13.3290),
]


def german_land_regions() -> List[Region]:
    """The 16 Länder as regions (the 'state centroids' analogue)."""
    return [
        Region(
            name=name,
            kind=RegionKind.STATE,
            center=GERMAN_LAENDER[name],
            parent="Germany",
        )
        for name in sorted(GERMAN_LAENDER)
    ]


def bavarian_kreis_regions(count: int = 71) -> List[Region]:
    """Synthesised district (Kreis) centroids inside Bavaria.

    Bavaria has 71 Landkreise; their centroids are synthesised inside
    the state's bounding box, ~50-100 km apart — the Ohio-counties
    analogue at state granularity.
    """
    if count <= 0:
        raise ValueError(f"count must be positive, got {count}")
    regions: List[Region] = []
    for index in range(count):
        rng = derive_rng(_GEOGRAPHY_SEED, "bavaria-kreis", index)
        center = LatLon(
            round(rng.uniform(*_BAVARIA_LAT_RANGE), 4),
            round(rng.uniform(*_BAVARIA_LON_RANGE), 4),
        )
        regions.append(
            Region(
                name=f"Kreis-{index + 1:03d}",
                kind=RegionKind.COUNTY,
                center=center,
                parent="Bayern",
            )
        )
    return regions


def berlin_bezirk_regions() -> List[Region]:
    """Berlin's 12 Bezirke (the Cuyahoga voting-district analogue).

    Bezirk centres are a few kilometres apart; to mirror the paper's
    ~1-mile district spacing, each Bezirk also contributes a jittered
    sub-centre, giving a 24-point urban pool.
    """
    regions: List[Region] = []
    for index, (name, lat, lon) in enumerate(_BERLIN_BEZIRKE):
        center = LatLon(lat, lon)
        regions.append(
            Region(
                name=name,
                kind=RegionKind.DISTRICT,
                center=center,
                parent="Berlin",
            )
        )
        rng = derive_rng(_GEOGRAPHY_SEED, "berlin-subdistrict", index)
        offset = destination(
            center, rng.uniform(0, 360), rng.uniform(0.8, 1.6) * KM_PER_MILE
        )
        regions.append(
            Region(
                name=f"{name}-Sued" if offset.lat < lat else f"{name}-Nord",
                kind=RegionKind.DISTRICT,
                center=offset,
                parent="Berlin",
            )
        )
    return regions


def germany_study_locations(
    seed: int,
    *,
    land_count: int = 10,
    kreis_count: int = 10,
    bezirk_count: int = 8,
) -> StudyLocations:
    """The paper's three-granularity design on German geography.

    Berlin is always among the Länder (the study is anchored there, as
    Ohio anchors the US design).
    """
    rng = derive_rng(seed, "germany-study-locations")
    laender = _sample(rng, german_land_regions(), land_count - 1, exclude=("Berlin",))
    laender.append(next(r for r in german_land_regions() if r.name == "Berlin"))
    laender.sort(key=Region.key)
    kreise = _sample(rng, bavarian_kreis_regions(), kreis_count)
    bezirke = _sample(rng, berlin_bezirk_regions(), bezirk_count)
    return StudyLocations(
        by_granularity={
            Granularity.NATIONAL: laender,
            Granularity.STATE: kreise,
            Granularity.COUNTY: bezirke,
        }
    )
