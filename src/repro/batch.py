"""Round-batched SERP construction (the lock-step hot path).

The paper's workload has one defining shape: a *round* issues the same
query from every (location, copy) treatment at the same virtual minute.
Everything request-independent in ranking — candidate pools, static
score vectors, suggestion strips, per-datacenter skew vectors — is
therefore shared by construction across a round's requests, and only
the per-request terms (A/B jitter, session boost) differ.

This module is the seam where the runner hands that structure to the
engine:

* :func:`prewarm_round` — called by the runner when it submits a round;
  builds the shared static state for every cell the round will touch,
  so the per-request path is a single vectorized pass over prebuilt
  tuples (:meth:`Ranker.build_pages_batch` / the ``build_page`` fast
  path).  Idempotent and purely cache-filling: a warm round is a
  handful of dict hits.
* :func:`prewarm_study` — the pre-fork warmup: walks the whole
  schedule once in the parent process so forked workers inherit hot
  pools, bundles, digest caches, and suggestion strips copy-on-write
  and never rebuild them (see ``docs/PERFORMANCE.md`` for the sharing
  contract).

Because gateway replicas share one :class:`Ranker` with the direct
engine (see :func:`repro.serve.gateway.build_replicas`), warming the
study's engine warms every serving path.
"""

from __future__ import annotations

from typing import Dict, Iterable, Sequence, Set, Tuple

from repro.queries.model import QueryCategory
from repro.seeding import stable_hash, stable_unit

__all__ = ["predicted_maps_cells", "prewarm_round", "prewarm_study"]


def _treatment_locations(treatments: Iterable) -> list:
    """Distinct GPS fixes a set of treatments reports, in fleet order."""
    seen = set()
    locations = []
    for treatment in treatments:
        center = treatment.region.center
        if center not in seen:
            seen.add(center)
            locations.append(center)
    return locations


def prewarm_round(study, query, treatments: Sequence) -> None:
    """Build the shared static state for one round ahead of serving.

    ``treatments`` is the subset of the study's treatments this caller
    will actually crawl (a worker passes its shard, the sequential loop
    passes everything) — warming cells another shard owns would
    duplicate exactly the work sharding is meant to split.
    """
    ranker = study.engine.ranker
    datacenters = [datacenter.name for datacenter in study.cluster]
    ranker.prewarm(query, _treatment_locations(treatments), datacenters)


def predicted_maps_cells(study) -> Dict[object, Tuple[object, Set]]:
    """Predict which (query, cell) pairs will open the maps-card gate.

    The gate (:meth:`Ranker._maps_card`) keys on (query, nonce) only,
    and nonces are ``stable_hash("request-nonce", browser_id, ordinal)``
    with the ordinal advancing once per search — so on a clean run the
    entire gate sequence is known before a single request is issued.
    This walks the schedule with simulated per-browser counters and
    collects, per local query, the snapped cells where at least one
    request passes the gate: exactly the maps cards the crawl will ask
    for.

    Retries (rate limiting, chaos faults) consume extra nonces and
    shift a browser's counter past the simulation; from then on the
    prediction is approximate for that browser.  That only costs
    performance at the margin — a card warmed in vain, or a missed one
    built lazily in the worker — never parity: warming is pure cache
    filling, and the serving path recomputes the real gate per request.

    Returns ``{query.key: (query, {snapped cells})}``.
    """
    ranker = study.engine.ranker
    cal = ranker.calibration
    seed = ranker.seed
    snap = (lambda p: p) if not cal.snap_to_grid else ranker._snap_grid.snap
    counters: Dict[str, int] = {}
    needed: Dict[object, Tuple[object, Set]] = {}
    snapped_centers = {
        id(treatment): snap(treatment.region.center)
        for treatment in study.treatments
    }
    for scheduled in study.iter_rounds():
        query = scheduled.query
        local = query.category is QueryCategory.LOCAL
        probability = (
            cal.maps_prob_brand if query.is_brand else cal.maps_prob_generic
        )
        for treatment in study.treatments:
            namespace = treatment.browser._nonce_namespace
            ordinal = counters.get(namespace, 0) + 1
            counters[namespace] = ordinal
            if not local:
                continue
            nonce = stable_hash("request-nonce", namespace, ordinal)
            if stable_unit("maps-gate", seed, query.key, nonce) < probability:
                needed.setdefault(query.key, (query, set()))[1].add(
                    snapped_centers[id(treatment)]
                )
    return needed


def prewarm_study(study) -> dict:
    """The pre-fork warmup: every round's static state, built once.

    Walks the schedule's distinct queries against every treatment cell
    (rounds repeat the same cells day after day, so one pass covers the
    whole run).  Returns the ranker's :meth:`cache_info` so callers can
    log or assert what the warmup materialised.

    Safe to call on a live study at any point: it only fills pure
    memos, never serving state (sessions, rate-limiter windows, queue
    depths all stay untouched), so output bytes are identical with or
    without the warmup.
    """
    locations = _treatment_locations(study.treatments)
    datacenters = [datacenter.name for datacenter in study.cluster]
    ranker = study.engine.ranker
    for query in study.config.queries:
        ranker.prewarm(query, locations, datacenters)
    for query, cells in predicted_maps_cells(study).values():
        ranker.prewarm_maps(query, cells)
    return ranker.cache_info()
