"""The study's 240-term query corpus.

Three categories, matching paper §2.1:

* 33 **local** queries — physical establishments and public services,
  split between national *brands* ("Starbucks") and *generic* terms
  ("school").  Expected upper bound on location personalization.
* 87 **controversial** queries — news/politics issues (Table 1 terms
  included verbatim).  Personalizing these by location would be the
  worrying Filter Bubble case.
* 120 **politician** names — 11 Cuyahoga County Board members, 53 Ohio
  legislators, 18 members of the US Congress from Ohio, 36 members not
  from Ohio, plus Joe Biden and Barack Obama.
"""

from repro.queries.controversial import TABLE1_TERMS, controversial_queries
from repro.queries.corpus import QueryCorpus, build_corpus
from repro.queries.local import LOCAL_BRAND_TERMS, LOCAL_GENERIC_TERMS, local_queries
from repro.queries.model import PoliticianScope, Query, QueryCategory
from repro.queries.politicians import politician_queries

__all__ = [
    "TABLE1_TERMS",
    "controversial_queries",
    "QueryCorpus",
    "build_corpus",
    "LOCAL_BRAND_TERMS",
    "LOCAL_GENERIC_TERMS",
    "local_queries",
    "PoliticianScope",
    "Query",
    "QueryCategory",
    "politician_queries",
]
