"""The 120 politician-name queries.

Composition matches paper §2.1 exactly:

* 11 members of the Cuyahoga County Board,
* 53 members of the Ohio House and Senate,
* 18 members of the US Senate and House from Ohio,
* 36 members of the US House and Senate *not* from Ohio,
* Joe Biden and Barack Obama.

Real rosters are not available offline; names are synthesised from US
name-frequency pools.  The two real Ohio congressmen the paper calls out
for name ambiguity — "Bill Johnson" and "Tim Ryan" — are included
verbatim and flagged ``is_common_name``, as are any synthesised names
whose first and last name both come from the high-frequency pools.
"""

from __future__ import annotations

from typing import List, Sequence, Set

from repro.queries.model import PoliticianScope, Query, QueryCategory
from repro.seeding import derive_rng

__all__ = ["politician_queries", "POLITICIAN_ROSTER_SEED"]

#: Roster synthesis is part of the fixed world, like geography.
POLITICIAN_ROSTER_SEED = 20151028

_COMMON_FIRST = [
    "James", "John", "Robert", "Michael", "William", "David", "Richard",
    "Joseph", "Thomas", "Charles", "Mary", "Patricia", "Jennifer",
    "Linda", "Elizabeth", "Barbara", "Susan", "Jessica", "Sarah", "Karen",
    "Bill", "Tim", "Mike", "Dave", "Tom", "Dan", "Jim", "Bob",
]
_UNCOMMON_FIRST = [
    "Marcia", "Sherrod", "Quentin", "Rosalind", "Thaddeus", "Maxine",
    "Blanche", "Orrin", "Mitch", "Nancy", "Dennis", "Marcy", "Frederica",
    "Zoe", "Raul", "Tulsi", "Cory", "Kirsten", "Tammy", "Mazie",
    "Jeanne", "Heidi", "Amy", "Claire", "Debbie", "Lamar", "Thad",
    "Saxby", "Johnny", "Lindsey", "Rand", "Marco", "Ted", "Jerry",
]
_COMMON_LAST = [
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller",
    "Davis", "Wilson", "Moore", "Taylor", "Anderson", "Thomas",
    "Jackson", "White", "Harris", "Martin", "Thompson", "Young", "Ryan",
]
_UNCOMMON_LAST = [
    "Kucinich", "Voinovich", "Kasich", "Boehner", "Kaptur", "Fudge",
    "Gillibrand", "Blumenthal", "Murkowski", "Heitkamp", "Klobuchar",
    "Shaheen", "Portman", "Vance", "Stivers", "Wenstrup", "Latta",
    "Gibbs", "Renacci", "Turner", "Beatty", "Joyce", "Chabot",
    "Tiberi", "Crowley", "Pelosi", "Hoyer", "Scalise", "McCarthy",
    "Cantor", "Issa", "Gowdy", "Amash", "Mulvaney", "Meadows",
]

_OTHER_STATES = [
    "California", "Texas", "New York", "Florida", "Pennsylvania",
    "Illinois", "Michigan", "Georgia", "North Carolina", "Virginia",
    "Washington", "Massachusetts", "Arizona", "Indiana", "Tennessee",
    "Missouri", "Wisconsin", "Minnesota", "Colorado", "Alabama",
]


def _synthesise_names(
    rng,
    count: int,
    used: Set[str],
    *,
    common_fraction: float,
) -> List[tuple]:
    """Generate ``count`` unique (name, is_common) pairs."""
    names: List[tuple] = []
    while len(names) < count:
        common = rng.random() < common_fraction
        if common:
            first = rng.choice(_COMMON_FIRST)
            last = rng.choice(_COMMON_LAST)
        else:
            first = rng.choice(_COMMON_FIRST + _UNCOMMON_FIRST)
            last = rng.choice(_UNCOMMON_LAST)
        name = f"{first} {last}"
        if name in used:
            continue
        used.add(name)
        names.append((name, common))
    return names


def _make_queries(
    names: Sequence[tuple],
    scope: PoliticianScope,
    home_state: str,
) -> List[Query]:
    return [
        Query(
            text=name,
            category=QueryCategory.POLITICIAN,
            politician_scope=scope,
            home_state=home_state,
            is_common_name=common,
        )
        for name, common in names
    ]


def politician_queries() -> List[Query]:
    """The full 120-politician roster, deterministic across processes."""
    rng = derive_rng(POLITICIAN_ROSTER_SEED, "politician-roster")
    used: Set[str] = {"Joe Biden", "Barack Obama", "Bill Johnson", "Tim Ryan"}

    queries: List[Query] = []

    county_names = _synthesise_names(rng, 11, used, common_fraction=0.3)
    queries.extend(_make_queries(county_names, PoliticianScope.COUNTY, "Ohio"))

    state_names = _synthesise_names(rng, 53, used, common_fraction=0.25)
    queries.extend(_make_queries(state_names, PoliticianScope.STATE, "Ohio"))

    # 18 federal legislators from Ohio; the paper's two ambiguous real
    # names are both Ohio US-House members.
    federal_ohio_names = [("Bill Johnson", True), ("Tim Ryan", True)]
    federal_ohio_names += _synthesise_names(rng, 16, used, common_fraction=0.2)
    queries.extend(_make_queries(federal_ohio_names, PoliticianScope.FEDERAL_OHIO, "Ohio"))

    federal_other_names = _synthesise_names(rng, 36, used, common_fraction=0.2)
    for (name, common), state_index in zip(
        federal_other_names, range(len(federal_other_names))
    ):
        state = _OTHER_STATES[state_index % len(_OTHER_STATES)]
        queries.append(
            Query(
                text=name,
                category=QueryCategory.POLITICIAN,
                politician_scope=PoliticianScope.FEDERAL_OTHER,
                home_state=state,
                is_common_name=common,
            )
        )

    for name in ("Joe Biden", "Barack Obama"):
        queries.append(
            Query(
                text=name,
                category=QueryCategory.POLITICIAN,
                politician_scope=PoliticianScope.NATIONAL,
                home_state=None,
                is_common_name=False,
            )
        )
    return queries
