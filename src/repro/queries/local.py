"""The 33 local query terms.

These are read directly off the x-axes of Figures 3, 4 and 6 in the
paper.  They split into national *brand* terms and *generic*
establishment/service terms; the paper finds brands are less noisy and
less personalized, largely because brand queries do not trigger Maps
cards (§3.1).
"""

from __future__ import annotations

from typing import List

from repro.queries.model import Query, QueryCategory

__all__ = ["LOCAL_BRAND_TERMS", "LOCAL_GENERIC_TERMS", "LOCAL_TERMS", "local_queries"]

#: National chains / brand names (9 terms).
LOCAL_BRAND_TERMS: List[str] = [
    "Starbucks",
    "Chipotle",
    "Dairy Queen",
    "McDonalds",
    "Subway",
    "Burger King",
    "KFC",
    "Wendy's",
    "Chick-fil-a",
]

#: Generic establishments and public services (24 terms).
#: Together with the brands these are the 33 local terms of Figs 3/4/6.
LOCAL_GENERIC_TERMS: List[str] = [
    "Post Office",
    "Polling Place",
    "Train",
    "University",
    "Sushi",
    "Football",
    "Bank",
    "Burger",
    "Rail",
    "Coffee",
    "Restaurant",
    "Park",
    "Fast Food",
    "Police Station",
    "Bus",
    "School",
    "Fire Station",
    "Airport",
    "Hospital",
    "College",
    "Station",
    "High School",
    "Elementary School",
    "Middle School",
]

#: All 33 local terms, brands first.
LOCAL_TERMS: List[str] = LOCAL_BRAND_TERMS + LOCAL_GENERIC_TERMS


def local_queries() -> List[Query]:
    """The 33 local queries with brand annotations."""
    brands = {term.lower() for term in LOCAL_BRAND_TERMS}
    return [
        Query(text=term, category=QueryCategory.LOCAL, is_brand=term.lower() in brands)
        for term in LOCAL_TERMS
    ]
