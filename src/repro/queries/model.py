"""Query model shared by the corpus, the engine, and the analyses."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

__all__ = ["QueryCategory", "PoliticianScope", "Query"]


class QueryCategory(enum.Enum):
    """The three query types compared throughout the paper."""

    LOCAL = "local"
    CONTROVERSIAL = "controversial"
    POLITICIAN = "politician"

    @property
    def label(self) -> str:
        """Legend label as printed in the paper's figures."""
        return {
            QueryCategory.LOCAL: "Local",
            QueryCategory.CONTROVERSIAL: "Controversial",
            QueryCategory.POLITICIAN: "Politicians",
        }[self]


class PoliticianScope(enum.Enum):
    """How geographically scoped a politician's constituency is."""

    COUNTY = "county"  # Cuyahoga County Board
    STATE = "state"  # Ohio House / Senate
    FEDERAL_OHIO = "federal-ohio"  # US House/Senate members from Ohio
    FEDERAL_OTHER = "federal-other"  # US House/Senate members not from Ohio
    NATIONAL = "national"  # Biden, Obama


@dataclass(frozen=True)
class Query:
    """One search term with its study annotations.

    Attributes:
        text: The query string as typed into the search box.
        category: Local / controversial / politician.
        is_brand: For local queries — whether the term names a national
            chain (brands tend not to trigger Maps cards; paper §3.1).
        politician_scope: For politician queries — constituency scope.
        home_state: For politician queries — the politician's state.
        is_common_name: For politician queries — whether the name is
            shared by many people (ambiguity drives residual
            personalization; paper §3.2).
    """

    text: str
    category: QueryCategory
    is_brand: bool = False
    politician_scope: Optional[PoliticianScope] = None
    home_state: Optional[str] = None
    is_common_name: bool = False

    def __post_init__(self) -> None:
        if not self.text.strip():
            raise ValueError("query text must be non-empty")
        if self.category is QueryCategory.POLITICIAN and self.politician_scope is None:
            raise ValueError(f"politician query {self.text!r} needs a scope")
        if self.category is not QueryCategory.POLITICIAN and self.politician_scope is not None:
            raise ValueError(f"{self.category} query {self.text!r} must not set a scope")
        if self.is_brand and self.category is not QueryCategory.LOCAL:
            raise ValueError("is_brand only applies to local queries")

    @property
    def key(self) -> str:
        """Stable identifier used in seeds and data files."""
        return f"{self.category.value}:{self.text.lower()}"
