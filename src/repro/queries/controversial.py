"""The 87 controversial query terms.

Table 1 of the paper lists 18 example terms verbatim; the full released
corpus is no longer fetchable offline, so the remaining 69 are drawn from
the same universe the paper describes — "news or politics-related
issues" that were not tied to a specific newsworthy event.  The three
terms the paper singles out as most personalized ("health", "republican
party", "politics") are included.
"""

from __future__ import annotations

from typing import List

from repro.queries.model import Query, QueryCategory

__all__ = ["TABLE1_TERMS", "CONTROVERSIAL_TERMS", "controversial_queries"]

#: The 18 example terms printed in Table 1, verbatim.
TABLE1_TERMS: List[str] = [
    "Progressive Tax",
    "Impose A Flat Tax",
    "End Medicaid",
    "Affordable Health And Care Act",
    "Fluoridate Water",
    "Stem Cell Research",
    "Andrew Wakefield Vindicated",
    "Autism Caused By Vaccines",
    "US Government Loses AAA Bond Rate",
    "Is Global Warming Real",
    "Man Made Global Warming Hoax",
    "Nuclear Power Plants",
    "Offshore Drilling",
    "Genetically Modified Organisms",
    "Late Term Abortion",
    "Barack Obama Birth Certificate",
    "Impeach Barack Obama",
    "Gay Marriage",
]

#: Terms §3.2 names as the most personalized controversial queries.
_HIGHLIGHTED_TERMS: List[str] = ["Health", "Republican Party", "Politics"]

#: The remaining synthesised issue terms (same universe as Table 1).
_EXTRA_TERMS: List[str] = [
    "Gun Control",
    "Second Amendment Rights",
    "Assault Weapons Ban",
    "Death Penalty",
    "Capital Punishment Deterrence",
    "Minimum Wage Increase",
    "Living Wage",
    "Right To Work Laws",
    "Union Collective Bargaining",
    "Illegal Immigration",
    "Immigration Reform",
    "Path To Citizenship",
    "Border Fence",
    "Deportation Policy",
    "Marijuana Legalization",
    "Medical Marijuana",
    "War On Drugs",
    "Mandatory Minimum Sentences",
    "Prison Overcrowding",
    "Private Prisons",
    "Voter Id Laws",
    "Gerrymandering",
    "Campaign Finance Reform",
    "Super Pacs",
    "Citizens United",
    "Electoral College Abolition",
    "Term Limits For Congress",
    "Social Security Privatization",
    "Raise Retirement Age",
    "Medicare Cuts",
    "Single Payer Healthcare",
    "Health Insurance Mandate",
    "Vaccine Exemptions",
    "Teaching Evolution",
    "Intelligent Design In Schools",
    "School Prayer",
    "Common Core Standards",
    "School Vouchers",
    "Charter Schools",
    "Affirmative Action",
    "College Tuition Free",
    "Student Loan Forgiveness",
    "Welfare Reform",
    "Food Stamp Cuts",
    "Estate Tax Repeal",
    "Capital Gains Tax",
    "Corporate Tax Loopholes",
    "Balanced Budget Amendment",
    "Government Shutdown",
    "Debt Ceiling",
    "Federal Reserve Audit",
    "Too Big To Fail Banks",
    "Wall Street Regulation",
    "Keystone Pipeline",
    "Fracking",
    "Carbon Tax",
    "Cap And Trade",
    "Renewable Energy Subsidies",
    "Coal Industry Jobs",
    "Endangered Species Act",
    "Net Neutrality",
    "Nsa Surveillance",
    "Patriot Act",
    "Drone Strikes",
    "Guantanamo Bay Closure",
    "Military Spending Cuts",
]


def _full_term_list() -> List[str]:
    terms = TABLE1_TERMS + _HIGHLIGHTED_TERMS + _EXTRA_TERMS
    return terms[:87]


#: The full list of 87 controversial terms.
CONTROVERSIAL_TERMS: List[str] = _full_term_list()


def controversial_queries() -> List[Query]:
    """The 87 controversial queries."""
    return [Query(text=term, category=QueryCategory.CONTROVERSIAL) for term in CONTROVERSIAL_TERMS]
