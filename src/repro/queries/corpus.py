"""Corpus assembly: the full 240-query study corpus.

Corpora serialise to JSON so custom audit corpora can be versioned
alongside collected datasets.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional

from repro.queries.controversial import controversial_queries
from repro.queries.local import local_queries
from repro.queries.model import PoliticianScope, Query, QueryCategory
from repro.queries.politicians import politician_queries

__all__ = ["QueryCorpus", "build_corpus"]


def _query_to_dict(query: Query) -> dict:
    raw = {"text": query.text, "category": query.category.value}
    if query.is_brand:
        raw["is_brand"] = True
    if query.politician_scope is not None:
        raw["politician_scope"] = query.politician_scope.value
    if query.home_state is not None:
        raw["home_state"] = query.home_state
    if query.is_common_name:
        raw["is_common_name"] = True
    return raw


def _query_from_dict(raw: dict) -> Query:
    scope = raw.get("politician_scope")
    return Query(
        text=raw["text"],
        category=QueryCategory(raw["category"]),
        is_brand=raw.get("is_brand", False),
        politician_scope=PoliticianScope(scope) if scope else None,
        home_state=raw.get("home_state"),
        is_common_name=raw.get("is_common_name", False),
    )


@dataclass(frozen=True)
class QueryCorpus:
    """The study's query corpus, indexed by category and text."""

    queries: List[Query]

    def __post_init__(self) -> None:
        texts = [q.text.lower() for q in self.queries]
        duplicates = {t for t in texts if texts.count(t) > 1}
        if duplicates:
            raise ValueError(f"duplicate query texts: {sorted(duplicates)}")

    def by_category(self, category: QueryCategory) -> List[Query]:
        """All queries of one category, corpus order preserved."""
        return [q for q in self.queries if q.category is category]

    def get(self, text: str) -> Optional[Query]:
        """Look up a query by its text, case-insensitively."""
        lowered = text.lower()
        for query in self.queries:
            if query.text.lower() == lowered:
                return query
        return None

    def counts(self) -> Dict[QueryCategory, int]:
        """Number of queries per category."""
        return {
            category: len(self.by_category(category)) for category in QueryCategory
        }

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    # -- persistence ----------------------------------------------------------

    def save(self, path) -> None:
        """Write the corpus as JSON (one object per query)."""
        payload = [_query_to_dict(q) for q in self.queries]
        Path(path).write_text(json.dumps(payload, indent=2), encoding="utf-8")

    @classmethod
    def load(cls, path) -> "QueryCorpus":
        """Read a corpus written by :meth:`save`.

        Raises:
            ValueError: on malformed input, naming the offending entry.
        """
        raw = json.loads(Path(path).read_text(encoding="utf-8"))
        if not isinstance(raw, list):
            raise ValueError(f"{path}: expected a JSON array of queries")
        queries: List[Query] = []
        for index, entry in enumerate(raw):
            try:
                queries.append(_query_from_dict(entry))
            except (KeyError, TypeError, ValueError) as error:
                raise ValueError(f"{path}: entry {index}: {error}") from error
        return cls(queries=queries)


def build_corpus() -> QueryCorpus:
    """Build the paper's full corpus: 33 local + 87 controversial + 120 politicians."""
    return QueryCorpus(
        queries=local_queries() + controversial_queries() + politician_queries()
    )
