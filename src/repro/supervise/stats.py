"""Supervision metrics and the recovery ledger.

:class:`SupervisorStats` is a :class:`~repro.obs.metrics.MetricSet`
like every other stats holder in the repo — plain summable counters —
so it snapshots, restores, and registers into the unified metrics
registry with zero bespoke plumbing.  :class:`SupervisorEvent` records
are the *ledger*: one structured entry per detection/recovery action,
in the order the supervisor took them, which is what
``repro chaos --kill-workers`` prints and CI uploads as an artifact.

Counters and ledger answer different questions: the counters say *how
much* supervision happened (and merge into the registry), the ledger
says *what exactly* happened to which shard, in order.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import List, Optional

from repro.obs.metrics import MetricSet

__all__ = ["SupervisorStats", "SupervisorEvent", "SupervisorReport"]


@dataclass
class SupervisorStats(MetricSet):
    """Counters for one supervised parallel run."""

    heartbeats: int = 0
    """Liveness messages received (one per worker per round start)."""
    rounds_received: int = 0
    """Round results received (re-executed rounds counted once)."""
    crashes_detected: int = 0
    """Worker processes found dead (non-zero exit or dead pipe)."""
    stalls_detected: int = 0
    """Workers killed after missing their liveness deadline."""
    worker_errors: int = 0
    """Shard executions that raised inside a live worker."""
    respawns: int = 0
    """Replacement worker processes spawned."""
    reassignments: int = 0
    """Shards handed to a surviving worker instead of a respawn."""
    workers_lost: int = 0
    """Worker slots permanently retired (degradation N -> N-1)."""
    quarantined_shards: int = 0
    """Shards given up on after K deterministic failures."""
    quarantined_failures: int = 0
    """``shard-quarantined`` CrawlFailures synthesized for lost rounds."""

    @property
    def recoveries(self) -> int:
        """Recovery actions taken (respawn or reassign)."""
        return self.respawns + self.reassignments


@dataclass(frozen=True)
class SupervisorEvent:
    """One entry in the recovery ledger."""

    kind: str
    """``crash-detected`` / ``stall-detected`` / ``worker-error`` /
    ``respawned`` / ``reassigned`` / ``quarantined``."""
    worker: int
    """Worker slot the event concerns."""
    shard: int
    """Shard (== unsupervised worker id) the event concerns."""
    generation: int
    """How many times this shard had failed when the event fired."""
    resume_ordinal: int
    """The round re-execution (re)starts from, at event time."""
    virtual_minutes: float
    """Virtual time of the shard's last heartbeat (schedule position)."""
    detail: str = ""
    """Human-readable specifics (exit code, silence, survivor, ...)."""


@dataclass
class SupervisorReport:
    """What a supervised run leaves behind: counters + ordered ledger."""

    workers: int
    """Worker slots the run started with."""
    stats: SupervisorStats = field(default_factory=SupervisorStats)
    events: List[SupervisorEvent] = field(default_factory=list)

    def record(self, event: SupervisorEvent) -> None:
        self.events.append(event)

    @property
    def clean(self) -> bool:
        """True when no failure was ever detected."""
        return not self.events

    def to_dict(self) -> dict:
        return {
            "workers": self.workers,
            "stats": self.stats.capture_state(),
            "events": [asdict(event) for event in self.events],
        }

    def render(self, *, limit: Optional[int] = None) -> str:
        """The recovery ledger as the chaos CLI prints it."""
        stats = self.stats
        lines = [
            "supervision ledger "
            f"(workers={self.workers}, heartbeats={stats.heartbeats}):",
            f"  detected   crashes={stats.crashes_detected} "
            f"stalls={stats.stalls_detected} errors={stats.worker_errors}",
            f"  recovered  respawned={stats.respawns} "
            f"reassigned={stats.reassignments} workers-lost={stats.workers_lost}",
            f"  quarantined shards={stats.quarantined_shards} "
            f"(synthesized failures={stats.quarantined_failures})",
        ]
        events = self.events if limit is None else self.events[-limit:]
        for event in events:
            lines.append(
                f"  t={event.virtual_minutes:9.2f}  {event.kind:16s} "
                f"shard={event.shard} worker={event.worker} "
                f"gen={event.generation} resume@{event.resume_ordinal}"
                + (f"  {event.detail}" if event.detail else "")
            )
        if not self.events:
            lines.append("  (no failures detected)")
        return "\n".join(lines)
