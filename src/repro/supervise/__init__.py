"""Self-healing supervision for parallel crawls and the serve gateway.

Public surface:

* :func:`run_supervised` — execute a study sharded across supervised
  worker processes with crash/hang detection, deterministic recovery,
  and quarantine (reachable as ``Study.run(workers=N, supervise=True)``);
* :class:`SupervisorPolicy` — detection/recovery knobs;
* :class:`KillSpec` — reproducible worker-murder points for tests and
  the ``repro chaos --kill-workers`` CLI;
* :class:`SupervisorStats` / :class:`SupervisorReport` /
  :class:`SupervisorEvent` — counters plus the ordered recovery ledger.
"""

from repro.supervise.stats import (
    SupervisorEvent,
    SupervisorReport,
    SupervisorStats,
)
from repro.supervise.supervisor import (
    KillSpec,
    SupervisorPolicy,
    run_supervised,
)

__all__ = [
    "KillSpec",
    "SupervisorEvent",
    "SupervisorPolicy",
    "SupervisorReport",
    "SupervisorStats",
    "run_supervised",
]
