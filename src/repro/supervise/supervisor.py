"""Self-healing parallel execution: supervise, detect, recover.

The paper's 44-machine lock-step crawl only worked because a dead
machine could be re-imaged and rejoined without invalidating the other
43.  This module gives ``Study.run(workers=N, supervise=True)`` the
same property on one host: worker processes are monitored, failures
are classified, and the failed worker's shard is re-executed from its
last state snapshot — on a respawned process or reassigned to a
surviving worker — with the merged dataset staying byte-identical to
the sequential run.

Execution model
---------------
Supervised workers are *shard executors*, not one-shot processes: each
worker loops on a private command queue, receiving ``("run", shard,
indices, start_ordinal, state, generation)`` assignments and streaming
results back over the shared result queue.  That is what makes
reassignment cheap — handing a dead worker's shard to an idle survivor
is just another command, no new process required — and what lets the
pool degrade gracefully from N workers to N−1 … 1.

Detection
---------
* **Crash** — the worker process has an exit code while its shard is
  unfinished (OOM kill, ``os._exit``, interpreter abort).  Detected by
  polling ``Process.exitcode``; in-flight messages are drained first so
  the resume point is as far forward as the worker actually got.
* **Stall** — the worker is alive but silent.  Liveness is virtual-time
  first: every worker heartbeats at each round boundary with its
  schedule position, so a worker ``stall_rounds`` behind the leader
  that has also been wall-silent for ``stall_grace_seconds`` missed its
  deadline.  A pure wall-clock watchdog (``stall_timeout_seconds``)
  backstops the case where *no* leader is advancing (e.g. workers=1).
  Stalled workers are SIGKILLed and handled like crashes.
* **Worker error** — the shard raised inside a live worker; the worker
  reports a traceback and stays in the pool.

Recovery
--------
The shard's last accepted per-round snapshot (the same
:meth:`Study.capture_state` payload checkpoint resume uses) restores
engine/browser/stats state exactly, so re-execution resumes at the
first unreceived round and is byte-identical — the partial round a
crash discarded is re-crawled from the same state it started from.  A
shard that fails ``quarantine_after`` consecutive times *without
delivering a round* is deterministic-failure-quarantined: its crawled
prefix is kept, every remaining (round × treatment) cell becomes a
structured ``CrawlFailure(kind="shard-quarantined")``, and the hole
stays visible in ``per_location_coverage`` — never silent loss.

Determinism under test
----------------------
:class:`KillSpec` murders workers at exact points (round boundary or
the Nth request of a round) for the parity matrix, and
``FaultPlan.worker_fault`` drives chaos-style crashes/stalls keyed on
(request nonce, incarnation generation) — generation keying is what
lets a respawned worker get *past* the request that killed its
predecessor, so plan-driven crashes recover instead of looping.
"""

from __future__ import annotations

import multiprocessing
import os
import queue as queue_module
import time
import traceback
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.runner import CrawlFailure, CrawlStats, Study
from repro.faults.injector import FaultStats
from repro.seeding import stable_hash
from repro.supervise.stats import SupervisorEvent, SupervisorReport

__all__ = [
    "KillSpec",
    "SupervisorPolicy",
    "run_supervised",
]

#: Exit codes chosen by injected kills (visible in ledger details).
_BOUNDARY_CRASH_EXIT = 73
_MIDROUND_CRASH_EXIT = 74
_PLAN_CRASH_EXIT = 57

#: Per-worker message-queue slack before backpressure kicks in.
_QUEUE_DEPTH_PER_WORKER = 8


@dataclass(frozen=True)
class SupervisorPolicy:
    """Detection/recovery knobs for one supervised run.

    The defaults are deliberately conservative: false stall positives
    only cost wasted re-execution (parity is unaffected and the
    quarantine counter resets on progress), but a too-eager watchdog
    on a loaded CI host would churn.
    """

    quarantine_after: int = 3
    """Consecutive failures *without progress* before a shard is
    quarantined.  The counter resets every time the shard delivers a
    round, so an unlucky chaos plan does not look deterministic."""

    max_respawns: Optional[int] = None
    """Replacement-process budget for the whole run (``None`` =
    unlimited).  Once exhausted, recovery degrades to reassigning
    shards to surviving workers."""

    stall_timeout_seconds: float = 120.0
    """Wall-clock silence after which a busy worker is presumed hung,
    regardless of schedule position (the watchdog fallback)."""

    stall_grace_seconds: float = 10.0
    """Minimum wall-clock silence before the virtual deadline below
    may fire (absorbs scheduler hiccups on loaded hosts)."""

    stall_rounds: int = 2
    """Virtual-time liveness deadline: a silent worker this many rounds
    behind the most advanced shard has missed its heartbeat."""

    poll_seconds: float = 0.2
    """Result-queue poll interval (bounds detection latency)."""

    def __post_init__(self) -> None:
        if self.quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if self.max_respawns is not None and self.max_respawns < 0:
            raise ValueError("max_respawns must be >= 0 or None")
        if self.stall_rounds < 1:
            raise ValueError("stall_rounds must be >= 1")


@dataclass(frozen=True)
class KillSpec:
    """Kill a worker at an exact, reproducible point (test harness).

    A spec targets a *shard* (not a worker slot — reassignment moves
    shards between slots) and fires inside whichever incarnation is
    executing it.
    """

    shard: int
    """Shard the kill targets."""

    ordinal: int
    """Schedule round the kill fires in."""

    request: Optional[int] = None
    """``None`` kills at the round boundary, *after* the round's result
    message is flushed to the parent; ``n`` kills mid-round, before the
    shard's n-th engine request of that round is dispatched."""

    mode: str = "crash"
    """``"crash"`` = ``os._exit`` (SIGKILL-equivalent); ``"stall"`` =
    block forever (exercises the hang watchdog)."""

    generation: Optional[int] = 0
    """Which incarnation dies: ``0`` = only the first (recovery
    succeeds), ``None`` = every incarnation (deterministic failure —
    the quarantine path)."""

    def __post_init__(self) -> None:
        if self.mode not in ("crash", "stall"):
            raise ValueError(f"unknown kill mode {self.mode!r}")


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


class _WorkerHarness:
    """One shard execution inside a supervised worker.

    Bridges three things into the running :class:`Study`:
    heartbeats/results onto the parent's queue, :class:`KillSpec`
    murder points, and the ``FaultPlan`` worker-fault context (the
    injector calls :meth:`crash`/:meth:`stall` through the duck-typed
    ``worker_context`` hook, keyed on :attr:`generation`).
    """

    def __init__(
        self,
        worker_id: int,
        shard_id: int,
        generation: int,
        result_queue,
        kill_specs: Sequence[KillSpec],
    ) -> None:
        self.worker_id = worker_id
        self.shard_id = shard_id
        self.generation = generation
        self.queue = result_queue
        self.specs = [
            spec
            for spec in kill_specs
            if spec.shard == shard_id
            and spec.generation in (None, generation)
        ]
        self._ordinal = -1
        self._submits = 0

    def arm(self, study: Study) -> None:
        network = study.network
        # Plan-driven worker faults fire only inside supervised workers:
        # the injector consults this context (when the plan carries
        # worker rates) before dispatching each request.
        network.worker_context = self
        if any(spec.request is not None for spec in self.specs):
            original = network.submit

            def submit(*args, **kwargs):
                self._submits += 1
                for spec in self.specs:
                    if (
                        spec.request is not None
                        and spec.ordinal == self._ordinal
                        and spec.request == self._submits
                    ):
                        self._die(spec.mode, flush=False)
                return original(*args, **kwargs)

            network.submit = submit

    def heartbeat(self, ordinal: int, timestamp: float) -> None:
        self._ordinal = ordinal
        self._submits = 0
        self.queue.put(
            ("heartbeat", self.worker_id, self.shard_id, ordinal, timestamp)
        )

    def emit_round(self, ordinal: int, outcomes, state, spans) -> None:
        self.queue.put(
            ("round", self.worker_id, self.shard_id, ordinal, outcomes, state, spans)
        )
        for spec in self.specs:
            if spec.request is None and spec.ordinal == ordinal:
                self._die(spec.mode, flush=True)

    # -- murder weapons (also the FaultPlan worker_context protocol) ----------

    def crash(self) -> None:
        """Plan-driven crash, pre-dispatch: nothing of the partial
        round escapes the process, so resume is byte-exact."""
        self._flush_queue()
        os._exit(_PLAN_CRASH_EXIT)

    def stall(self) -> None:
        """Plan-driven hang: block until the supervisor SIGKILLs us."""
        while True:
            time.sleep(3600)

    def _flush_queue(self) -> None:
        """Drain the feeder thread before dying.

        ``multiprocessing.Queue`` writes happen on a background feeder
        thread under a write lock *shared across processes*.  Exiting
        while our feeder is mid-write would take that lock to the
        grave and wedge every surviving worker's queue — so even
        "dirty" deaths drain first.  The current partial round is still
        discarded with the process: its round message was never
        enqueued, only already-complete rounds and heartbeats flush.
        """
        try:
            self.queue.close()
            self.queue.join_thread()
        except Exception:
            pass

    def _die(self, mode: str, *, flush: bool) -> None:
        self._flush_queue()
        if mode == "stall":
            self.stall()
        os._exit(_BOUNDARY_CRASH_EXIT if flush else _MIDROUND_CRASH_EXIT)


def _supervised_worker_main(
    worker_id: int,
    config,
    result_queue,
    command_queue,
    kill_specs: Tuple[KillSpec, ...],
    trace: bool,
) -> None:
    """Supervised worker loop: execute shard assignments until told to exit.

    Each assignment rebuilds a fresh :class:`Study` (cheap — everything
    derives from the config seed) and restores the shard's snapshot if
    one is given, so a reassigned or respawned shard resumes exactly
    where its previous incarnation's last *accepted* round left off.
    """
    while True:
        command = command_queue.get()
        if command[0] == "exit":
            return
        _, shard_id, indices, start_ordinal, state, generation = command
        try:
            study = Study(config)
            if state is not None:
                study.restore_state(state)
            harness = _WorkerHarness(
                worker_id, shard_id, generation, result_queue, kill_specs
            )
            harness.arm(study)
            study.run_shard(
                list(indices),
                on_round=harness.emit_round,
                on_round_start=harness.heartbeat,
                start_ordinal=start_ordinal,
                capture_state=True,
                trace=trace,
            )
            result_queue.put(
                ("shard-done", worker_id, shard_id, study.stats, study.fault_stats)
            )
        except BaseException:
            result_queue.put(
                ("error", worker_id, shard_id, traceback.format_exc())
            )


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------


@dataclass
class _ShardState:
    """Parent-side bookkeeping for one shard's lifecycle."""

    shard_id: int
    indices: Tuple[int, ...]
    next_ordinal: int = 0
    """First round not yet accepted — the resume point."""
    snapshot: Optional[dict] = None
    """Last accepted round's :meth:`Study.capture_state` payload."""
    generation: int = 0
    """Total failures so far == incarnation number of the next run."""
    failures_since_progress: int = 0
    done: bool = False
    quarantined: bool = False
    worker: Optional[int] = None
    """Slot currently executing this shard (None = unassigned)."""
    last_virtual: float = 0.0
    """Virtual minutes of the last heartbeat (schedule position)."""


@dataclass
class _WorkerSlot:
    """Parent-side bookkeeping for one worker slot."""

    worker_id: int
    process: multiprocessing.process.BaseProcess
    command_queue: object
    shard: Optional[int] = None
    """Shard this slot is executing (None = idle)."""
    dead: bool = False
    retired: bool = False
    """Counted as lost capacity already (degradation N -> N-1)."""
    last_message_wall: float = field(default_factory=time.monotonic)

    @property
    def available(self) -> bool:
        return not self.dead and self.shard is None


class _Supervisor:
    """The parent-side supervision loop for one run."""

    def __init__(
        self,
        study: Study,
        plan,
        policy: SupervisorPolicy,
        report: SupervisorReport,
        context,
        result_queue,
        sink,
        builder,
        kill_specs: Tuple[KillSpec, ...],
        trace: bool,
        event_builder=None,
    ) -> None:
        self.study = study
        self.policy = policy
        self.report = report
        self.stats = report.stats
        self.context = context
        self.result_queue = result_queue
        self.sink = sink
        self.builder = builder
        self.event_builder = event_builder
        self.kill_specs = kill_specs
        self.trace = trace
        self.total_rounds = study.round_count()
        self.shards = [
            _ShardState(shard_id=i, indices=tuple(indices))
            for i, indices in enumerate(plan.assignments)
        ]
        self.slots: List[_WorkerSlot] = []
        self.orphans: deque = deque()
        self.respawns_used = 0
        # Merge state, as in the unsupervised executor — except
        # arrivals hold shard-id *sets* (a shard's round can arrive
        # from any incarnation, but only once).
        self.pending: Dict[int, list] = {}
        self.spans: Dict[int, list] = {}
        self.arrivals: Dict[int, Set[int]] = {}
        self.next_flush = 0
        self._all_shards = frozenset(s.shard_id for s in self.shards)
        self.dataset: Optional[SerpDataset] = None

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        for shard in self.shards:
            slot = self._spawn_slot(len(self.slots))
            self.slots.append(slot)
            self._assign(shard, slot)

    def _spawn_slot(self, worker_id: int) -> _WorkerSlot:
        command_queue = self.context.Queue()
        process = self.context.Process(
            target=_supervised_worker_main,
            args=(
                worker_id,
                self.study.config,
                self.result_queue,
                command_queue,
                self.kill_specs,
                self.trace,
            ),
            name=f"crawl-worker-{worker_id}",
            daemon=True,
        )
        process.start()
        return _WorkerSlot(
            worker_id=worker_id, process=process, command_queue=command_queue
        )

    def _assign(self, shard: _ShardState, slot: _WorkerSlot) -> None:
        shard.worker = slot.worker_id
        slot.shard = shard.shard_id
        slot.last_message_wall = time.monotonic()
        slot.command_queue.put(
            (
                "run",
                shard.shard_id,
                shard.indices,
                shard.next_ordinal,
                shard.snapshot,
                shard.generation,
            )
        )

    def run(self, dataset: SerpDataset) -> None:
        self.dataset = dataset
        self.start()
        while not all(s.done or s.quarantined for s in self.shards):
            try:
                message = self.result_queue.get(timeout=self.policy.poll_seconds)
            except queue_module.Empty:
                self._watchdog()
                continue
            self._dispatch(message)
            self._watchdog()
        self._flush_ready()
        if self.next_flush != self.total_rounds:
            raise RuntimeError(
                f"supervised merge incomplete: flushed {self.next_flush} "
                f"of {self.total_rounds} rounds"
            )

    def shutdown(self) -> None:
        for slot in self.slots:
            if slot.dead:
                continue
            try:
                slot.command_queue.put(("exit",))
            except Exception:
                pass
        deadline = time.monotonic() + 5.0
        for slot in self.slots:
            slot.process.join(timeout=max(0.0, deadline - time.monotonic()))
        for slot in self.slots:
            if slot.process.is_alive():
                slot.process.terminate()
        for slot in self.slots:
            slot.process.join()

    # -- message handling ----------------------------------------------------

    def _dispatch(self, message) -> None:
        kind = message[0]
        if kind == "heartbeat":
            _, worker_id, shard_id, ordinal, timestamp = message
            shard = self.shards[shard_id]
            if ordinal < shard.next_ordinal:
                return  # stale incarnation
            self._touch(worker_id)
            shard.last_virtual = timestamp
            self.stats.heartbeats += 1
        elif kind == "round":
            _, worker_id, shard_id, ordinal, outcomes, state, round_spans = message
            shard = self.shards[shard_id]
            self._touch(worker_id)
            if shard.done or shard.quarantined or ordinal != shard.next_ordinal:
                return  # duplicate from a dead incarnation
            self.pending.setdefault(ordinal, []).extend(outcomes)
            if round_spans is not None:
                self.spans.setdefault(ordinal, []).extend(round_spans)
            self.arrivals.setdefault(ordinal, set()).add(shard_id)
            shard.snapshot = state
            shard.next_ordinal = ordinal + 1
            shard.failures_since_progress = 0
            self.stats.rounds_received += 1
            self._flush_ready()
        elif kind == "shard-done":
            _, worker_id, shard_id, stats, fault_stats = message
            shard = self.shards[shard_id]
            self._touch(worker_id)
            if shard.done or shard.quarantined:
                return
            if shard.next_ordinal != self.total_rounds:
                return  # stale incarnation that resumed behind a newer one
            shard.done = True
            shard.worker = None
            # The completing incarnation restored the shard's snapshot,
            # so its counters cover the *whole* shard — merge once.
            self.study.stats.merge(stats)
            self.study.fault_stats.merge(fault_stats)
            self._release_slot(self.slots[worker_id])
        else:  # "error"
            _, worker_id, shard_id, tb = message
            self._touch(worker_id)
            slot = self.slots[worker_id]
            slot.shard = None
            self.stats.worker_errors += 1
            detail = tb.strip().splitlines()[-1] if tb.strip() else "unknown error"
            self._handle_failure(
                self.shards[shard_id], slot, "worker-error", detail
            )

    def _touch(self, worker_id: int) -> None:
        self.slots[worker_id].last_message_wall = time.monotonic()

    def _flush_ready(self) -> None:
        while self.arrivals.get(self.next_flush) == self._all_shards:
            outcomes = sorted(
                self.pending.pop(self.next_flush), key=lambda pair: pair[0]
            )
            round_spans = self.spans.pop(self.next_flush, None)
            del self.arrivals[self.next_flush]
            if self.builder is not None:
                self.builder.add_round(self.next_flush, round_spans or [])
            if self.event_builder is not None:
                self.event_builder.add_round(self.next_flush, outcomes)
            for _, outcome in outcomes:
                if isinstance(outcome, SerpRecord):
                    self.dataset.add(outcome)
                    if self.sink is not None:
                        self.sink(outcome)
                else:
                    self.study.failures.append(outcome)
            self.next_flush += 1

    # -- detection -----------------------------------------------------------

    def _watchdog(self) -> None:
        now = time.monotonic()
        leader = max(
            (s.next_ordinal for s in self.shards if not s.quarantined),
            default=0,
        )
        for slot in self.slots:
            if slot.dead or slot.shard is None:
                continue
            shard = self.shards[slot.shard]
            if slot.process.exitcode is not None:
                # Drain in-flight messages first: the dead worker's
                # final rounds may still sit in the queue, and accepting
                # them moves the resume point forward.
                self._drain()
                if slot.dead or slot.shard is None:
                    continue  # the drain resolved it (e.g. shard-done)
                self.stats.crashes_detected += 1
                slot.dead = True
                slot.shard = None
                self._handle_failure(
                    shard,
                    slot,
                    "crash-detected",
                    f"exit code {slot.process.exitcode}",
                )
                continue
            silence = now - slot.last_message_wall
            wall_stalled = silence >= self.policy.stall_timeout_seconds
            virtual_stalled = (
                silence >= self.policy.stall_grace_seconds
                and leader - shard.next_ordinal >= self.policy.stall_rounds
            )
            if wall_stalled or virtual_stalled:
                self.stats.stalls_detected += 1
                slot.process.kill()
                slot.process.join()
                slot.dead = True
                slot.shard = None
                deadline = (
                    "wall watchdog" if wall_stalled else "virtual deadline"
                )
                self._handle_failure(
                    shard,
                    slot,
                    "stall-detected",
                    f"{deadline}: silent {silence:.1f}s at round "
                    f"{shard.next_ordinal} (leader {leader})",
                )

    def _drain(self) -> None:
        """Process every message already in the queue, without blocking."""
        while True:
            try:
                message = self.result_queue.get_nowait()
            except queue_module.Empty:
                return
            self._dispatch(message)

    # -- recovery ------------------------------------------------------------

    def _event(self, kind: str, shard: _ShardState, worker: int, detail: str) -> None:
        self.report.record(
            SupervisorEvent(
                kind=kind,
                worker=worker,
                shard=shard.shard_id,
                generation=shard.generation,
                resume_ordinal=shard.next_ordinal,
                virtual_minutes=shard.last_virtual,
                detail=detail,
            )
        )

    def _handle_failure(
        self, shard: _ShardState, slot: _WorkerSlot, kind: str, detail: str
    ) -> None:
        if shard.done or shard.quarantined:
            return
        shard.worker = None
        shard.generation += 1
        shard.failures_since_progress += 1
        self._event(kind, shard, slot.worker_id, detail)
        if shard.failures_since_progress >= self.policy.quarantine_after:
            self._quarantine(shard)
            return
        self._recover(shard)

    def _recover(self, shard: _ShardState) -> None:
        # Cheapest first: an idle surviving worker takes the shard with
        # no new process.  Otherwise respawn (within budget) to keep
        # pool capacity; otherwise park the shard until a survivor goes
        # idle — graceful degradation from N workers to N-1 ... 1.
        for slot in self.slots:
            if slot.available and slot.process.is_alive():
                self._reassign(shard, slot)
                return
        budget_left = (
            self.policy.max_respawns is None
            or self.respawns_used < self.policy.max_respawns
        )
        survivors = any(
            not slot.dead and slot.process.is_alive() for slot in self.slots
        )
        if budget_left or not survivors:
            # A respawn past the budget only happens when the pool is
            # empty — the alternative is deadlock, not degradation.
            self._respawn(shard)
            return
        self.orphans.append(shard.shard_id)

    def _respawn(self, shard: _ShardState) -> None:
        self.respawns_used += 1
        self.stats.respawns += 1
        slot = self._spawn_slot(len(self.slots))
        self.slots.append(slot)
        self._assign(shard, slot)
        self._event(
            "respawned",
            shard,
            slot.worker_id,
            f"replacement process (generation {shard.generation})",
        )

    def _reassign(self, shard: _ShardState, slot: _WorkerSlot) -> None:
        self.stats.reassignments += 1
        self._retire_dead_slots()
        self._assign(shard, slot)
        self._event(
            "reassigned",
            shard,
            slot.worker_id,
            f"to surviving worker {slot.worker_id} "
            f"(generation {shard.generation})",
        )

    def _retire_dead_slots(self) -> None:
        """Book lost capacity once per dead slot we chose not to replace."""
        for slot in self.slots:
            if slot.dead and not slot.retired:
                slot.retired = True
                self.stats.workers_lost += 1

    def _release_slot(self, slot: _WorkerSlot) -> None:
        slot.shard = None
        if self.orphans:
            shard = self.shards[self.orphans.popleft()]
            self._reassign(shard, slot)

    # -- quarantine ----------------------------------------------------------

    def _quarantine(self, shard: _ShardState) -> None:
        """Give up on a deterministically failing shard — loudly.

        The crawled prefix is kept (stats from the last snapshot, rounds
        already merged); every remaining (round × treatment) cell
        becomes a structured failure that flows through
        ``per_location_coverage`` like any other, so the hole is
        visible, attributable, and never silent.
        """
        shard.quarantined = True
        self.stats.quarantined_shards += 1
        self._event(
            "quarantined",
            shard,
            -1,
            f"after {shard.failures_since_progress} consecutive failures "
            f"without progress; rounds {shard.next_ordinal}.."
            f"{self.total_rounds - 1} forfeited",
        )
        if shard.snapshot is not None:
            prefix_stats = CrawlStats()
            prefix_stats.restore_state(shard.snapshot["stats"])
            self.study.stats.merge(prefix_stats)
            prefix_faults = FaultStats()
            prefix_faults.restore_state(shard.snapshot["fault_stats"])
            self.study.fault_stats.merge(prefix_faults)
        reason = (
            f"shard {shard.shard_id} quarantined after "
            f"{shard.failures_since_progress} consecutive worker failures"
        )
        for scheduled in self.study.iter_rounds():
            if scheduled.ordinal < shard.next_ordinal:
                continue
            for index in shard.indices:
                treatment = self.study.treatments[index]
                self.pending.setdefault(scheduled.ordinal, []).append(
                    (
                        index,
                        CrawlFailure(
                            query=scheduled.query.text,
                            location_name=treatment.region.qualified_name,
                            day=scheduled.day_offset,
                            copy_index=treatment.copy_index,
                            reason=reason,
                            kind="shard-quarantined",
                        ),
                    )
                )
                self.study.stats.record_failure_kind("shard-quarantined")
                self.stats.quarantined_failures += 1
            self.arrivals.setdefault(scheduled.ordinal, set()).add(shard.shard_id)

    # -- trace integration ---------------------------------------------------

    def event_trees(self, trace_id: str, root_id: str) -> List[dict]:
        """The recovery ledger as zero-length spans under the study root."""
        from repro.obs.trace import format_id

        trees = []
        for seq, event in enumerate(self.report.events):
            trees.append(
                {
                    "id": format_id(
                        stable_hash("supervisor-span", trace_id, seq)
                    ),
                    "parent": root_id,
                    "name": f"supervisor.{event.kind}",
                    "start": event.virtual_minutes,
                    "end": event.virtual_minutes,
                    "attrs": {
                        "worker": event.worker,
                        "shard": event.shard,
                        "generation": event.generation,
                        "resume_ordinal": event.resume_ordinal,
                        "detail": event.detail,
                    },
                    "events": [],
                    "children": [],
                }
            )
        return trees


def run_supervised(
    study: Study,
    *,
    workers: int,
    sink=None,
    start_method: Optional[str] = None,
    trace: Optional[str] = None,
    events: Optional[str] = None,
    policy: Optional[SupervisorPolicy] = None,
    kill_specs: Sequence[KillSpec] = (),
) -> SerpDataset:
    """Run ``study`` sharded across supervised worker processes.

    Behaves like :func:`repro.parallel.run_parallel` — byte-identical
    merged dataset, stats, failures — but survives worker crashes,
    hangs, and errors (see the module docstring for the model).  Leaves
    the :class:`~repro.supervise.stats.SupervisorReport` on
    ``study.supervisor`` (counters + ordered recovery ledger).

    Args:
        study: A freshly constructed study.
        workers: Requested worker count (clamped to occupied machines).
        sink: Optional per-record callable, as in :meth:`Study.run`.
        start_method: ``multiprocessing`` start method override.
        trace: Optional canonical trace path.  Recovery events are
            appended as ``supervisor.*`` spans under the study root, so
            a clean supervised trace is byte-identical to the
            unsupervised one.
        events: Optional wide-event log path.  Events are synthesized
            from the merged outcome stream, so a supervised log is
            byte-identical to the sequential one even across recoveries.
        policy: Detection/recovery knobs (default
            :class:`SupervisorPolicy`).
        kill_specs: :class:`KillSpec` murder points (tests/chaos CLI).
    """
    from repro.parallel.executor import _preferred_start_method, plan_shards

    if study.stats.requests or study.failures:
        raise ValueError(
            "supervised run requires a freshly constructed Study "
            "(this one has already crawled)"
        )
    policy = policy or SupervisorPolicy()
    plan = plan_shards(len(study.treatments), len(study.fleet), workers)
    report = SupervisorReport(workers=plan.workers)
    study.supervisor = report
    builder = study._trace_builder(trace) if trace is not None else None
    event_builder = study._events_builder(events) if events is not None else None
    context = multiprocessing.get_context(
        start_method or _preferred_start_method()
    )
    result_queue = context.Queue(maxsize=plan.workers * _QUEUE_DEPTH_PER_WORKER)
    supervisor = _Supervisor(
        study,
        plan,
        policy,
        report,
        context,
        result_queue,
        sink,
        builder,
        tuple(kill_specs),
        trace is not None,
        event_builder,
    )
    dataset = SerpDataset()
    try:
        supervisor.run(dataset)
    finally:
        if builder is not None:
            if report.events:
                builder.add_trees(
                    supervisor.event_trees(
                        builder.trace_id, study.tracer.study_span_id()
                    )
                )
            builder.close()
            study.tracer.disable()
        if event_builder is not None:
            event_builder.close()
        supervisor.shutdown()
    return dataset
