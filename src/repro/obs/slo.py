"""Multi-window burn-rate SLOs over the wide-event log.

An SLO declares an objective (e.g. "99% of serve requests end fresh")
per subsystem stream; the engine walks the event log in virtual time
and maintains two sliding windows — a *fast* window that catches sharp
regressions and a *slow* window that confirms they are sustained (the
standard multi-window multi-burn alerting shape).  The burn rate is
the window's bad fraction divided by the SLO's error budget: burn 1.0
spends the budget exactly at the objective's pace, burn 14.4 spends a
30-day budget in 50 hours.  An alert **fires** when *both* windows
exceed their thresholds and **resolves** when the fast window falls
back below — the resulting ledger is a pure function of the event
stream, so it is identical across worker counts and kill/resume by
construction (the log itself is).

One classifier, one accounting
------------------------------
:func:`is_bad_serve_outcome` is the **single** definition of a bad
serve outcome, imported by the fleet's brownout controller and used
here — the SLO engine must never disagree with the controller about
what counts against the window.  Beyond sharing the classifier, the
engine *observes* the controller rather than re-deriving it: serve
events carry the exact ``counted`` mark the controller applied (the
deliberate-brownout-shed exclusion), and
:func:`verify_brownout_accounting` replays the controller's window
arithmetic from those marks and checks it lands on the very
(bad, total) integers the controller journaled in its
``serve.control`` transitions.  Audit drift alerts likewise enter the
ledger verbatim from ``audit`` events instead of being recomputed.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

__all__ = [
    "SLO",
    "SLOResult",
    "SLOReport",
    "DEFAULT_SLOS",
    "is_bad_serve_outcome",
    "is_bad_event",
    "evaluate_slos",
    "verify_brownout_accounting",
]


def is_bad_serve_outcome(outcome: str) -> bool:
    """Whether a fleet outcome counts against the serve SLO window.

    The one shared definition: anything that is not a fresh page —
    stale, shed, failed — is bad.  The fleet's brownout controller and
    the SLO engine both import this; they cannot drift apart.
    """
    return outcome != "served_fresh"


@dataclass(frozen=True)
class SLO:
    """One service-level objective over a wide-event stream."""

    name: str
    stream: str
    """Which event stream the SLO measures (``crawl``, ``serve``, ...)."""
    objective: float
    """Target good fraction, e.g. ``0.99``."""
    kind: str = "availability"
    """``availability`` (bad outcomes) or ``latency`` (slow requests)."""
    latency_threshold_minutes: float = 0.0
    """For ``latency`` SLOs: virtual latency above this is bad."""
    fast_window_minutes: float = 5.0
    slow_window_minutes: float = 60.0
    fast_burn_threshold: float = 14.4
    slow_burn_threshold: float = 6.0

    def __post_init__(self) -> None:
        if not 0.0 < self.objective < 1.0:
            raise ValueError("objective must be in (0, 1)")
        if self.kind not in ("availability", "latency"):
            raise ValueError(f"unknown SLO kind {self.kind!r}")
        if self.kind == "latency" and self.latency_threshold_minutes <= 0:
            raise ValueError("latency SLOs need a positive threshold")
        if self.fast_window_minutes <= 0 or self.slow_window_minutes <= 0:
            raise ValueError("window minutes must be positive")

    @property
    def error_budget(self) -> float:
        return 1.0 - self.objective


#: The stock per-subsystem objectives ``repro telemetry slo`` evaluates.
#: 5m/1h virtual-time windows with the canonical 14.4x/6x burn pairing.
DEFAULT_SLOS: Tuple[SLO, ...] = (
    SLO(name="crawl-availability", stream="crawl", objective=0.99),
    SLO(name="serve-availability", stream="serve", objective=0.99),
    SLO(
        name="serve-latency",
        stream="serve",
        objective=0.95,
        kind="latency",
        latency_threshold_minutes=1.0,
    ),
)


def is_bad_event(slo: SLO, event: dict) -> bool:
    """Classify one event against one SLO."""
    if slo.kind == "latency":
        return event.get("latency", 0.0) > slo.latency_threshold_minutes
    outcome = event.get("outcome", "")
    if slo.stream == "serve":
        return is_bad_serve_outcome(outcome)
    return outcome != "ok"


@dataclass
class SLOResult:
    """One SLO evaluated over a whole event log."""

    slo: SLO
    total: int = 0
    bad: int = 0
    alerts: List[dict] = field(default_factory=list)

    @property
    def good_fraction(self) -> float:
        return 1.0 - (self.bad / self.total) if self.total else 1.0

    @property
    def met(self) -> bool:
        return self.good_fraction >= self.slo.objective

    @property
    def firing(self) -> bool:
        """Whether the last ledger transition left the alert firing."""
        return bool(self.alerts) and self.alerts[-1]["state"] == "firing"


@dataclass
class SLOReport:
    """Every SLO's result plus the merged deterministic alert ledger."""

    results: List[SLOResult]
    ledger: List[dict]
    """Burn-rate transitions, brownout transitions, and audit alerts in
    virtual-time order — the artifact the determinism tests compare."""
    brownout_mismatches: List[str]
    """Window-accounting disagreements with the fleet controller
    (empty = the engine reproduced its arithmetic exactly)."""

    @property
    def violations(self) -> List[str]:
        """What ``repro telemetry slo --check`` gates on."""
        problems = [
            f"SLO {result.slo.name}: good fraction "
            f"{result.good_fraction:.4f} below objective "
            f"{result.slo.objective:g} ({result.bad}/{result.total} bad)"
            for result in self.results
            if not result.met
        ]
        problems.extend(
            f"SLO {result.slo.name}: burn-rate alert still firing at end of log"
            for result in self.results
            if result.firing
        )
        problems.extend(self.brownout_mismatches)
        return problems


class _BurnWindow:
    """A sliding (virtual-time, bad) window tracking its bad count."""

    __slots__ = ("minutes", "samples", "bad")

    def __init__(self, minutes: float) -> None:
        self.minutes = minutes
        self.samples: Deque[Tuple[float, bool]] = deque()
        self.bad = 0

    def add(self, ts: float, bad: bool) -> None:
        self.samples.append((ts, bad))
        if bad:
            self.bad += 1
        horizon = ts - self.minutes
        while self.samples and self.samples[0][0] < horizon:
            _, was_bad = self.samples.popleft()
            if was_bad:
                self.bad -= 1

    def burn_rate(self, budget: float) -> float:
        total = len(self.samples)
        if not total:
            return 0.0
        return (self.bad / total) / budget


def _evaluate_one(slo: SLO, events: List[dict]) -> SLOResult:
    result = SLOResult(slo=slo)
    fast = _BurnWindow(slo.fast_window_minutes)
    slow = _BurnWindow(slo.slow_window_minutes)
    firing = False
    for event in events:
        bad = is_bad_event(slo, event)
        result.total += 1
        if bad:
            result.bad += 1
        ts = event["ts"]
        fast.add(ts, bad)
        slow.add(ts, bad)
        burn_fast = fast.burn_rate(slo.error_budget)
        burn_slow = slow.burn_rate(slo.error_budget)
        if (
            not firing
            and burn_fast >= slo.fast_burn_threshold
            and burn_slow >= slo.slow_burn_threshold
        ):
            firing = True
            result.alerts.append(
                {
                    "at": ts,
                    "slo": slo.name,
                    "kind": "burn-rate",
                    "state": "firing",
                    "burn_fast": round(burn_fast, 4),
                    "burn_slow": round(burn_slow, 4),
                }
            )
        elif firing and burn_fast < slo.fast_burn_threshold:
            firing = False
            result.alerts.append(
                {
                    "at": ts,
                    "slo": slo.name,
                    "kind": "burn-rate",
                    "state": "resolved",
                    "burn_fast": round(burn_fast, 4),
                    "burn_slow": round(burn_slow, 4),
                }
            )
    return result


def verify_brownout_accounting(
    events: List[dict], *, window_minutes: Optional[float] = None
) -> List[str]:
    """Replay the brownout window from serve events' ``counted`` marks.

    The fleet journals ``(window_bad, window_total)`` on every
    ``brownout.enter`` / ``brownout.exit`` control event.  This replays
    the same arithmetic — append counted samples, classify with the
    shared :func:`is_bad_serve_outcome`, prune to the window horizon —
    and reports any control point where the recomputed integers differ.
    An empty list means the SLO engine reproduces the controller's
    accounting exactly, with no second source of truth: the classifier
    is imported, the exclusions are the controller's own marks.
    """
    problems: List[str] = []
    window: Deque[Tuple[float, bool]] = deque()
    bad_count = 0
    minutes = window_minutes
    for event in events:
        stream = event.get("stream")
        if stream == "serve.control" and event.get("control", "").startswith(
            "brownout."
        ):
            if minutes is None:
                minutes = event.get("window_minutes")
            ts = event["ts"]
            if minutes is not None:
                horizon = ts - minutes
                while window and window[0][0] < horizon:
                    _, was_bad = window.popleft()
                    if was_bad:
                        bad_count -= 1
            if (len(window), bad_count) != (
                event.get("window_total"),
                event.get("window_bad"),
            ):
                problems.append(
                    f"brownout accounting mismatch at ts={ts}: controller "
                    f"saw bad/total {event.get('window_bad')}/"
                    f"{event.get('window_total')}, replay computed "
                    f"{bad_count}/{len(window)}"
                )
        elif stream == "serve" and event.get("counted"):
            window.append((event["ts"], is_bad_serve_outcome(event["outcome"])))
            if is_bad_serve_outcome(event["outcome"]):
                bad_count += 1
    return problems


def evaluate_slos(
    events: List[dict], slos: Sequence[SLO] = DEFAULT_SLOS
) -> SLOReport:
    """Evaluate every SLO over one event list; build the merged ledger."""
    by_stream: Dict[str, List[dict]] = {}
    for event in events:
        by_stream.setdefault(event.get("stream", ""), []).append(event)
    results = [
        _evaluate_one(slo, by_stream.get(slo.stream, [])) for slo in slos
    ]
    ledger: List[dict] = []
    for result in results:
        ledger.extend(result.alerts)
    # The fleet's brownout transitions and the audit service's drift
    # alerts join the ledger verbatim — observed, not re-derived.
    for event in by_stream.get("serve.control", []):
        control = event.get("control", "")
        if control.startswith("brownout."):
            ledger.append(
                {
                    "at": event["ts"],
                    "slo": "fleet-brownout",
                    "kind": "brownout",
                    "state": (
                        "firing" if control == "brownout.enter" else "resolved"
                    ),
                    "bad_fraction": event.get("bad_fraction"),
                    "window_bad": event.get("window_bad"),
                    "window_total": event.get("window_total"),
                }
            )
    for event in by_stream.get("audit", []):
        for series in event.get("alert_series", []):
            ledger.append(
                {
                    "at": event["ts"],
                    "slo": f"audit:{event.get('audit')}",
                    "kind": "audit-drift",
                    "state": "firing",
                    "cycle": event.get("cycle"),
                    "series": series,
                }
            )
    ledger.sort(key=lambda entry: (entry["at"], entry["slo"], entry["state"]))
    # The replay needs the original interleaving (controller transitions
    # happen *before* the triggering request's own serve event), so it
    # filters the full stream itself rather than taking the per-stream
    # buckets.
    return SLOReport(
        results=results,
        ledger=ledger,
        brownout_mismatches=verify_brownout_accounting(events),
    )
