"""Trace exporters: canonical JSONL, validation, Chrome ``trace_event``.

The on-disk trace is JSON Lines with three record kinds::

    {"kind": "header",  "version": 1, "trace_id": ..., "meta": {...}}
    {"kind": "span",    "id": ..., "parent": ..., "name": ..., "start": ...,
                        "end": ..., "attrs": {...}, "events": [...]}
    {"kind": "summary", "rounds": R, "spans": S, "trace_id": ...}

Spans are written flattened (parent links, no nesting) in canonical
order: per round, the round span first, then each treatment's tree
depth-first in ascending treatment order; after the last round, the
root ``study.run`` span, then the summary.  Every line is
``json.dumps(..., sort_keys=True)`` with fixed separators — byte
determinism is a format property, not a hope.

``meta`` is the study's checkpoint fingerprint: the same dict that
gates checkpoint resume, so a trace is self-describing about which
study produced it.

The Chrome exporter rewrites a trace into the ``trace_event`` JSON that
Perfetto / ``chrome://tracing`` open directly: one timeline row per
treatment, one virtual minute displayed as one minute.
"""

from __future__ import annotations

import json
from typing import Dict, Iterator, List, Optional, Tuple

from repro.obs.trace import TRACE_VERSION

__all__ = [
    "TraceBuilder",
    "read_trace",
    "validate_trace",
    "chrome_trace",
    "write_chrome_trace",
    "speedscope_trace",
    "write_speedscope",
]


def _dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _walk(node: dict) -> Iterator[dict]:
    """Depth-first over a span tree, children in recorded order."""
    yield node
    for child in node["children"]:
        yield from _walk(child)


def _span_line(node: dict) -> dict:
    return {
        "kind": "span",
        "id": node["id"],
        "parent": node["parent"],
        "name": node["name"],
        "start": node["start"],
        "end": node["end"],
        "attrs": node["attrs"],
        "events": node["events"],
    }


class TraceBuilder:
    """Streams a canonical trace file as rounds complete.

    Both the sequential run loop and the parallel merge feed this one
    code path, which is what makes ``workers=N`` traces byte-identical:
    by the time a round reaches :meth:`add_round` its span trees are in
    canonical treatment order regardless of which process produced
    them.  With a :class:`~repro.obs.replay.GatewayReplay`, canonical
    gateway spans are synthesized here — at merge time — rather than
    recorded live (see :mod:`repro.obs.replay` for why).
    """

    def __init__(self, path, *, trace_id: str, meta: dict, replay=None):
        from repro.obs.trace import Tracer

        self._handle = open(path, "w", encoding="utf-8")
        self.trace_id = trace_id
        self.replay = replay
        keyed = Tracer()
        keyed.enable(trace_id)
        self._study_id = keyed.study_span_id()
        self._round_id = keyed.round_span_id
        self._rounds = 0
        self._spans = 0
        self._min_start: Optional[float] = None
        self._max_end = 0.0
        self._closed = False
        self._write(
            {
                "kind": "header",
                "version": TRACE_VERSION,
                "trace_id": trace_id,
                "meta": meta,
            }
        )

    def _write(self, payload: dict) -> None:
        self._handle.write(_dumps(payload) + "\n")

    def add_round(self, ordinal: int, trees: List[dict]) -> None:
        """Write one round: its span, then each treatment tree."""
        trees = sorted(trees, key=lambda tree: tree["attrs"]["treatment"])
        if self.replay is not None:
            self.replay.annotate_round(trees)
        start = min(tree["start"] for tree in trees) if trees else 0.0
        end = max(tree["end"] for tree in trees) if trees else start
        attrs = {"ordinal": ordinal, "treatments": len(trees)}
        if trees:
            attrs["query"] = trees[0]["attrs"].get("query")
        self._write(
            {
                "kind": "span",
                "id": self._round_id(ordinal),
                "parent": self._study_id,
                "name": "round",
                "start": start,
                "end": end,
                "attrs": attrs,
                "events": [],
            }
        )
        self._spans += 1
        for tree in trees:
            for node in _walk(tree):
                self._write(_span_line(node))
                self._spans += 1
        if self._min_start is None or start < self._min_start:
            self._min_start = start
        if end > self._max_end:
            self._max_end = end
        self._rounds += 1

    def add_trees(self, trees: List[dict]) -> None:
        """Write free-standing span trees (serving traces, no rounds)."""
        for tree in trees:
            for node in _walk(tree):
                self._write(_span_line(node))
                self._spans += 1
            if self._min_start is None or tree["start"] < self._min_start:
                self._min_start = tree["start"]
            if tree["end"] > self._max_end:
                self._max_end = tree["end"]

    def close(self) -> None:
        """Write the root span and summary, then close the file."""
        if self._closed:
            return
        self._closed = True
        self._write(
            {
                "kind": "span",
                "id": self._study_id,
                "parent": "",
                "name": "study.run",
                "start": self._min_start if self._min_start is not None else 0.0,
                "end": self._max_end,
                "attrs": {"rounds": self._rounds},
                "events": [],
            }
        )
        self._spans += 1
        self._write(
            {
                "kind": "summary",
                "trace_id": self.trace_id,
                "rounds": self._rounds,
                "spans": self._spans,
            }
        )
        self._handle.close()


def _scan_trace(path):
    """Parse a trace's durable prefix; (header, spans, summary, torn, size).

    ``torn`` is the byte offset where an unterminated or unparseable
    tail begins (``None`` when the file is whole) — the trace format is
    unframed JSONL, so like every pre-framing journal reader the
    recovery rule is: the durable prefix is everything before the first
    line that fails to parse.
    """
    header: Optional[dict] = None
    summary: Optional[dict] = None
    spans: List[dict] = []
    torn: Optional[int] = None
    with open(path, "rb") as handle:
        data = handle.read()
    offset = 0
    while offset < len(data):
        newline = data.find(b"\n", offset)
        if newline < 0:
            torn = offset  # the write in flight at death
            break
        line = data[offset : newline].strip()
        if line:
            try:
                record = json.loads(line.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                torn = offset
                break
            kind = record.get("kind")
            if kind == "header":
                header = record
            elif kind == "span":
                spans.append(record)
            elif kind == "summary":
                summary = record
            else:
                raise ValueError(f"unknown trace record kind {kind!r}")
        offset = newline + 1
    return header, spans, summary, torn, len(data)


def read_trace(path) -> Tuple[dict, List[dict], Optional[dict]]:
    """Parse a trace file into (header, spans, summary).

    Torn tails are tolerated: the durable prefix is returned, with
    ``summary`` ``None`` when the summary line was lost.
    """
    header, spans, summary, _, _ = _scan_trace(path)
    if header is None:
        raise ValueError(f"{path}: not a trace file (no header line)")
    return header, spans, summary


def validate_trace(path) -> List[str]:
    """Structural checks over a trace file; returns problems (empty = ok).

    Checks: header present and versioned; no torn tail (reported as
    ``truncated: true`` with the byte offset of the durable prefix);
    span ids unique; every parent id exists (the root's empty parent
    excepted); ``end >= start`` and events inside their span's bounds;
    round ordinals contiguous from 0; summary counts match the file.
    """
    problems: List[str] = []
    try:
        header, spans, summary, torn, size = _scan_trace(path)
    except (ValueError, json.JSONDecodeError) as error:
        return [str(error)]
    if header is None:
        return [f"{path}: not a trace file (no header line)"]
    if torn is not None:
        problems.append(
            f"truncated: true — durable prefix ends at byte {torn} "
            f"({size - torn} byte(s) torn)"
        )
    if header.get("version") != TRACE_VERSION:
        problems.append(f"unsupported trace version {header.get('version')!r}")
    if not header.get("trace_id"):
        problems.append("header has no trace_id")
    seen: Dict[str, dict] = {}
    for span in spans:
        span_id = span["id"]
        if span_id in seen:
            problems.append(f"duplicate span id {span_id} ({span['name']})")
        seen[span_id] = span
        if span["end"] < span["start"]:
            problems.append(
                f"span {span['name']} ({span_id}) ends before it starts"
            )
        for event in span["events"]:
            if not span["start"] <= event["at"] <= span["end"]:
                problems.append(
                    f"event {event['name']} at {event['at']} outside span "
                    f"{span['name']} [{span['start']}, {span['end']}]"
                )
    roots = 0
    for span in spans:
        parent = span["parent"]
        if parent == "":
            roots += 1
            continue
        if parent not in seen:
            problems.append(
                f"span {span['name']} ({span['id']}) has unknown parent {parent}"
            )
    if roots != 1:
        problems.append(f"expected exactly one root span, found {roots}")
    ordinals = sorted(
        span["attrs"]["ordinal"] for span in spans if span["name"] == "round"
    )
    if ordinals != list(range(len(ordinals))):
        problems.append(f"round ordinals not contiguous from 0: {ordinals[:10]}...")
    if summary is None:
        problems.append("no summary line (truncated trace?)")
    else:
        if summary.get("spans") != len(spans):
            problems.append(
                f"summary says {summary.get('spans')} spans, file holds {len(spans)}"
            )
        if summary.get("rounds") != len(ordinals):
            problems.append(
                f"summary says {summary.get('rounds')} rounds, file holds "
                f"{len(ordinals)}"
            )
        if summary.get("trace_id") != header.get("trace_id"):
            problems.append("summary trace_id differs from header")
    return problems


#: Chrome ``trace_event`` timestamps are microseconds; one virtual
#: study minute is displayed as one minute of trace time.
_MICROS_PER_VIRTUAL_MINUTE = 60_000_000


def chrome_trace(path) -> dict:
    """Convert a trace file to Chrome ``trace_event`` JSON.

    Open the result in https://ui.perfetto.dev or ``chrome://tracing``.
    Rows (``tid``): 0 is the schedule (study + round spans); each
    treatment gets its own row, labelled with its location.
    """
    header, spans, _ = read_trace(path)
    by_id = {span["id"]: span for span in spans}

    def tid_of(span: dict) -> int:
        node = span
        while node is not None:
            treatment = node["attrs"].get("treatment")
            if treatment is not None:
                return int(treatment) + 1
            node = by_id.get(node["parent"])
        return 0

    events: List[dict] = []
    thread_names: Dict[int, str] = {0: "schedule"}
    for span in spans:
        tid = tid_of(span)
        if tid and tid not in thread_names and span["name"] == "crawl":
            thread_names[tid] = span["attrs"].get("location", f"treatment {tid - 1}")
        ts = span["start"] * _MICROS_PER_VIRTUAL_MINUTE
        duration = max(1.0, (span["end"] - span["start"]) * _MICROS_PER_VIRTUAL_MINUTE)
        events.append(
            {
                "name": span["name"],
                "cat": span["name"].split(".")[0],
                "ph": "X",
                "ts": ts,
                "dur": duration,
                "pid": 1,
                "tid": tid,
                "args": span["attrs"],
            }
        )
        for event in span["events"]:
            events.append(
                {
                    "name": event["name"],
                    "cat": "event",
                    "ph": "i",
                    "s": "t",
                    "ts": event["at"] * _MICROS_PER_VIRTUAL_MINUTE,
                    "pid": 1,
                    "tid": tid,
                    "args": event["attrs"],
                }
            )
    for tid in sorted(thread_names):
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": 1,
                "tid": tid,
                "args": {"name": thread_names[tid]},
            }
        )
    return {
        "displayTimeUnit": "ms",
        "otherData": {"trace_id": header["trace_id"]},
        "traceEvents": events,
    }


def write_chrome_trace(path, out) -> None:
    """Export ``path`` (canonical JSONL) as Chrome trace JSON at ``out``."""
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(chrome_trace(path), handle, sort_keys=True)
        handle.write("\n")


def speedscope_trace(path) -> dict:
    """Convert a trace file to speedscope's evented-profile JSON.

    Open the result at https://www.speedscope.app (or any compatible
    viewer) for interactive flamegraphs.  One evented profile per
    timeline row — the schedule plus each treatment, matching the
    Chrome exporter's ``tid`` layout — with open/close events in
    microseconds (one virtual minute = 60,000,000).
    """
    header, spans, _ = read_trace(path)
    by_id = {span["id"]: span for span in spans}
    by_parent: Dict[str, List[dict]] = {}
    for span in spans:
        by_parent.setdefault(span["parent"], []).append(span)

    def tid_of(span: dict) -> int:
        node = span
        while node is not None:
            treatment = node["attrs"].get("treatment")
            if treatment is not None:
                return int(treatment) + 1
            node = by_id.get(node["parent"])
        return 0

    names = sorted({span["name"] for span in spans})
    frame_index = {name: index for index, name in enumerate(names)}
    row_names: Dict[int, str] = {0: "schedule"}
    row_spans: Dict[int, List[dict]] = {}
    for span in spans:
        tid = tid_of(span)
        row_spans.setdefault(tid, []).append(span)
        if tid and tid not in row_names and span["name"] == "crawl":
            row_names[tid] = span["attrs"].get("location", f"treatment {tid - 1}")

    profiles = []
    for tid in sorted(row_spans):
        members = {span["id"] for span in row_spans[tid]}
        events: List[dict] = []
        start_value: Optional[float] = None
        end_value = 0.0

        def visit(span: dict, low: float, high: float) -> None:
            # Clamp into the parent's bounds: speedscope rejects
            # profiles whose close events are not perfectly LIFO.
            nonlocal start_value, end_value
            start = min(max(span["start"], low), high)
            end = min(max(span["end"], start), high)
            start_micros = start * _MICROS_PER_VIRTUAL_MINUTE
            end_micros = end * _MICROS_PER_VIRTUAL_MINUTE
            if start_value is None or start_micros < start_value:
                start_value = start_micros
            if end_micros > end_value:
                end_value = end_micros
            events.append(
                {"type": "O", "frame": frame_index[span["name"]], "at": start_micros}
            )
            for child in sorted(
                (
                    node
                    for node in by_parent.get(span["id"], [])
                    if node["id"] in members
                ),
                key=lambda node: (node["start"], node["id"]),
            ):
                visit(child, start, end)
            events.append(
                {"type": "C", "frame": frame_index[span["name"]], "at": end_micros}
            )

        # Roots of this row: spans whose parent lives on another row
        # (or nowhere) — each opens a fresh stack.
        roots = sorted(
            (
                span
                for span in row_spans[tid]
                if span["parent"] not in members
            ),
            key=lambda span: (span["start"], span["id"]),
        )
        for root in roots:
            visit(root, root["start"], max(root["end"], root["start"]))
        profiles.append(
            {
                "type": "evented",
                "name": row_names.get(tid, f"treatment {tid - 1}"),
                "unit": "microseconds",
                "startValue": start_value if start_value is not None else 0.0,
                "endValue": end_value,
                "events": events,
            }
        )

    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": f"repro trace {header['trace_id']}",
        "activeProfileIndex": 0,
        "exporter": "repro",
        "shared": {"frames": [{"name": name} for name in names]},
        "profiles": profiles,
    }


def write_speedscope(path, out) -> None:
    """Export ``path`` (canonical JSONL) as speedscope JSON at ``out``."""
    with open(out, "w", encoding="utf-8") as handle:
        json.dump(speedscope_trace(path), handle, sort_keys=True)
        handle.write("\n")
