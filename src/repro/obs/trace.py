"""Span-based tracing over virtual time.

A trace is a tree of spans — ``study.run`` → ``round`` → ``crawl`` (one
per treatment) → ``attempt`` → layer spans (``engine.handle``,
``gateway.queue`` / ``gateway.service``) — each carrying start/end in
*virtual* study minutes plus point-in-time events (injected faults,
retry backoffs, breaker transitions, DNS answers).  No wall-clock value
ever enters a span, which is what makes traces a deterministic artifact
rather than a log.

Determinism is structural, not incidental:

* the ``trace_id`` derives from the study's checkpoint fingerprint, so
  every worker of a sharded run — and every re-run of the same config —
  agrees on it without coordination;
* span ids derive from the parent id, the span name, and the sibling
  ordinal (``stable_hash``, like every other identity in this repo), so
  a span's id is a pure function of its position in the tree;
* treatment root spans key on ``(round ordinal, treatment index)``, the
  same canonical coordinates the parallel executor merges by.

The tracer is **disabled by default** and every hook is a cheap
early-return when it is off — the crawl bench records the overhead.
Workers emit per-shard span trees each round; the parent merges them in
canonical round order (the checkpoint-journal design), which is why
trace files are byte-identical for any worker count.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.seeding import stable_hash

__all__ = ["TRACE_VERSION", "Tracer", "NULL_TRACER", "trace_id_for", "format_id"]

TRACE_VERSION = 1

_ID_MASK = (1 << 64) - 1


def format_id(value: int) -> str:
    """64-bit hex rendering of a ``stable_hash`` (the span-id format)."""
    return format(value & _ID_MASK, "016x")


def trace_id_for(fingerprint: dict) -> str:
    """Derive the trace id from a study's checkpoint fingerprint.

    Same config → same trace id, in every worker process, with no
    coordination — the root of cross-process span-id agreement.
    """
    return format_id(
        stable_hash("trace-id", json.dumps(fingerprint, sort_keys=True))
    )


class _SpanHandle:
    """One span under construction (mutable until :meth:`Tracer.end`)."""

    __slots__ = ("span_id", "parent_id", "name", "start", "end", "attrs",
                 "events", "children", "child_seq")

    def __init__(self, span_id: str, parent_id: str, name: str, start: float,
                 attrs: Dict[str, object]):
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.start = start
        self.end: Optional[float] = None
        self.attrs = attrs
        self.events: List[dict] = []
        self.children: List["_SpanHandle"] = []
        self.child_seq = 0

    def to_node(self) -> dict:
        """The JSON-able tree node (children nested for transport)."""
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "attrs": self.attrs,
            "events": self.events,
            "children": [child.to_node() for child in self.children],
        }


class Tracer:
    """Records span trees per round; drained by the run loop.

    All methods are no-ops while :attr:`enabled` is false, so the
    tracer can be threaded through every layer (network, engine,
    gateway, faults) unconditionally.
    """

    __slots__ = ("enabled", "trace_id", "_stack", "_trees", "_ordinal", "_root_seq")

    def __init__(self) -> None:
        self.enabled = False
        self.trace_id = ""
        self._stack: List[_SpanHandle] = []
        self._trees: List[_SpanHandle] = []
        self._ordinal: Optional[int] = None
        self._root_seq = 0

    def enable(self, trace_id: str) -> None:
        self.enabled = True
        self.trace_id = trace_id
        self._stack.clear()
        self._trees.clear()
        self._ordinal = None
        self._root_seq = 0

    def disable(self) -> None:
        self.enabled = False
        self._stack.clear()
        self._trees.clear()
        self._ordinal = None

    # -- deterministic ids ---------------------------------------------------

    def study_span_id(self) -> str:
        return format_id(stable_hash("span", self.trace_id, "root"))

    def round_span_id(self, ordinal: int) -> str:
        return format_id(stable_hash("span", self.trace_id, "round", ordinal))

    # -- recording -----------------------------------------------------------

    def begin_round(self, ordinal: int) -> None:
        """Set the round context; treatment roots parent onto this round."""
        if not self.enabled:
            return
        self._ordinal = ordinal

    def begin(self, name: str, *, start: float, **attrs) -> None:
        """Open a span as a child of the innermost open span.

        With no span open, the new span is a root: inside a round and
        carrying a ``treatment`` attr it keys on (round, treatment) —
        position-stable across worker counts — otherwise it keys on a
        per-tracer sequence (single-process serving traces).
        """
        if not self.enabled:
            return
        if self._stack:
            parent = self._stack[-1]
            parent_id = parent.span_id
            span_id = format_id(
                stable_hash("span", parent_id, name, parent.child_seq)
            )
            parent.child_seq += 1
        elif self._ordinal is not None and "treatment" in attrs:
            parent_id = self.round_span_id(self._ordinal)
            span_id = format_id(
                stable_hash(
                    "span", self.trace_id, "round", self._ordinal,
                    "treatment", attrs["treatment"], name,
                )
            )
        else:
            parent_id = self.study_span_id()
            span_id = format_id(
                stable_hash("span", self.trace_id, "seq", self._root_seq)
            )
            self._root_seq += 1
        handle = _SpanHandle(span_id, parent_id, name, start, dict(attrs))
        if self._stack:
            self._stack[-1].children.append(handle)
        else:
            self._trees.append(handle)
        self._stack.append(handle)

    def end(self, *, end: Optional[float] = None, **attrs) -> None:
        """Close the innermost open span.

        Without an explicit ``end``, the span closes at the latest
        virtual time it contains (children's ends, event times, its own
        start) — so instantaneous spans need no bookkeeping.
        """
        if not self.enabled:
            return
        handle = self._stack.pop()
        if attrs:
            handle.attrs.update(attrs)
        if end is None:
            end = handle.start
            for child in handle.children:
                if child.end is not None and child.end > end:
                    end = child.end
            for event in handle.events:
                if event["at"] > end:
                    end = event["at"]
        handle.end = end

    def event(self, name: str, *, at: float, **attrs) -> None:
        """Attach a point-in-time event to the innermost open span."""
        if not self.enabled or not self._stack:
            return
        self._stack[-1].events.append({"name": name, "at": at, "attrs": attrs})

    def current_span_id(self) -> Optional[str]:
        """The innermost open span's id — wide-event exemplar linkage."""
        if not self.enabled or not self._stack:
            return None
        return self._stack[-1].span_id

    def annotate(self, **attrs) -> None:
        """Merge attrs into the innermost open span."""
        if not self.enabled or not self._stack:
            return
        self._stack[-1].attrs.update(attrs)

    def drain(self) -> List[dict]:
        """Return and clear the completed root span trees.

        Called at round boundaries (and at the end of serving traces);
        every span must be closed by then.
        """
        if self._stack:
            raise RuntimeError(
                f"drain with {len(self._stack)} span(s) still open "
                f"(innermost: {self._stack[-1].name!r})"
            )
        trees = [tree.to_node() for tree in self._trees]
        self._trees.clear()
        return trees


#: The shared disabled tracer layers default to; a Study replaces it
#: with its own instance on the layers it traces.
NULL_TRACER = Tracer()
