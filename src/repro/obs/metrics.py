"""The unified metrics layer: histograms, the stats protocol, the registry.

Three subsystems keep counters — :class:`~repro.core.runner.CrawlStats`,
:class:`~repro.serve.stats.GatewayStats`, and
:class:`~repro.faults.injector.FaultStats` — and before this module each
carried its own ``capture_state`` / ``restore_state`` / ``merge``
boilerplate.  Everything here exists to collapse that into one
protocol:

* :class:`Histogram` — a fixed-bucket virtual-latency histogram with
  streaming mean/max, the one latency type every reporter shares (the
  gateway's latency accumulators and the chaos CLI's retry histogram
  both render through it).
* :class:`MetricSet` — a mixin for stats dataclasses.  It derives
  snapshot/restore/merge from the dataclass fields themselves: ints and
  floats sum, dicts sum per key, histograms delegate, gauges listed in
  ``_MAX_FIELDS`` merge by max, and ``restore_state`` **rejects**
  unknown or missing keys instead of blindly ``setattr``-ing whatever a
  snapshot contains.  The field-level semantics compose with checkpoint
  resume: a restored stats object is ``==`` to the one captured.
* :class:`MetricsRegistry` — named counters/gauges/labeled
  counters/histograms *bound* to the live stats objects.  A snapshot is
  a plain JSON dict; it renders as Prometheus text exposition or an
  aligned table, merges associatively, and restores strictly.

Everything is virtual-time (study minutes); nothing here reads a clock.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field, fields
from typing import ClassVar, Dict, List, Optional, Tuple

__all__ = [
    "DEFAULT_LATENCY_BUCKETS_MINUTES",
    "Histogram",
    "MetricSet",
    "MetricsRegistry",
    "build_study_registry",
    "render_prometheus",
    "render_table",
]

#: Fixed virtual-latency bucket upper bounds (study minutes).  The
#: smallest bucket is half the default replica service time; the
#: largest is the retry-backoff cap.  Fixed buckets are what make
#: histograms mergeable across shards without re-binning.
DEFAULT_LATENCY_BUCKETS_MINUTES: Tuple[float, ...] = (
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.0,
    4.0,
    8.0,
    16.0,
)

SNAPSHOT_VERSION = 1


@dataclass
class Histogram:
    """A fixed-bucket histogram over virtual minutes.

    ``counts`` holds one bucket per bound (observation ``<= bound``)
    plus a final overflow bucket.  ``count`` / ``total_minutes`` /
    ``max_minutes`` keep the streaming aggregates the old
    ``LatencyAccumulator`` exposed, so ``mean_minutes`` and
    ``max_minutes`` read exactly as before.
    """

    bounds: Tuple[float, ...] = DEFAULT_LATENCY_BUCKETS_MINUTES
    counts: List[int] = field(default_factory=list)
    count: int = 0
    total_minutes: float = 0.0
    max_minutes: float = 0.0

    def __post_init__(self) -> None:
        self.bounds = tuple(self.bounds)
        if any(b >= a for b, a in zip(self.bounds, self.bounds[1:])):
            raise ValueError("histogram bounds must be strictly increasing")
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        if len(self.counts) != len(self.bounds) + 1:
            raise ValueError(
                f"expected {len(self.bounds) + 1} buckets, got {len(self.counts)}"
            )

    def observe(self, minutes: float) -> None:
        """Record one observation."""
        self.counts[bisect.bisect_left(self.bounds, minutes)] += 1
        self.count += 1
        self.total_minutes += minutes
        if minutes > self.max_minutes:
            self.max_minutes = minutes

    #: ``LatencyAccumulator``-compatible spelling.
    record = observe

    @property
    def mean_minutes(self) -> float:
        return self.total_minutes / self.count if self.count else 0.0

    @classmethod
    def from_counts(cls, counts: Dict[int, int]) -> "Histogram":
        """Build a histogram from exact integer observations.

        The chaos retry histogram (attempts-used → requests) arrives as
        a plain dict; each key becomes its own bucket bound so the
        render is exact, not binned.
        """
        bounds = tuple(float(k) for k in sorted(counts))
        histogram = cls(bounds=bounds or (1.0,))
        for value, times in counts.items():
            index = bisect.bisect_left(histogram.bounds, float(value))
            histogram.counts[index] += times
            histogram.count += times
            histogram.total_minutes += float(value) * times
            if value > histogram.max_minutes:
                histogram.max_minutes = float(value)
        return histogram

    def merge(self, other: "Histogram") -> None:
        """Fold another shard's histogram into this one (same bounds)."""
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} vs {other.bounds}"
            )
        for index, value in enumerate(other.counts):
            self.counts[index] += value
        self.count += other.count
        self.total_minutes += other.total_minutes
        if other.max_minutes > self.max_minutes:
            self.max_minutes = other.max_minutes

    def bucket_label(self, index: int) -> str:
        if index >= len(self.bounds):
            return f">{self.bounds[-1]:g}" if self.bounds else "all"
        return f"<={self.bounds[index]:g}"

    def render(self, *, indent: str = "", unit: str = "", width: int = 24) -> str:
        """Per-bucket counts with a proportional bar, one line each."""
        if not self.count:
            return f"{indent}(empty)"
        peak = max(self.counts)
        suffix = f" {unit}" if unit else ""
        lines = []
        for index, value in enumerate(self.counts):
            if not value:
                continue
            bar = "#" * max(1, round(width * value / peak))
            lines.append(
                f"{indent}{self.bucket_label(index):>8}{suffix}: {value:<7d} {bar}"
            )
        lines.append(
            f"{indent}count={self.count} mean={self.mean_minutes:.3f} "
            f"max={self.max_minutes:.3f}"
        )
        return "\n".join(lines)

    # -- snapshot protocol ---------------------------------------------------

    def capture_state(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "total_minutes": self.total_minutes,
            "max_minutes": self.max_minutes,
        }

    def restore_state(self, state: dict) -> None:
        unknown = set(state) - {"bounds", "counts", "count", "total_minutes", "max_minutes"}
        if unknown:
            raise ValueError(f"unknown histogram snapshot keys: {sorted(unknown)}")
        bounds = tuple(state["bounds"])
        counts = list(state["counts"])
        if len(counts) != len(bounds) + 1:
            raise ValueError("histogram snapshot bucket count does not match bounds")
        self.bounds = bounds
        self.counts = counts
        self.count = state["count"]
        self.total_minutes = state["total_minutes"]
        self.max_minutes = state["max_minutes"]


class MetricSet:
    """Snapshot/merge/restore derived from a stats dataclass's fields.

    Subclasses stay plain dataclasses (equality, reprs, and tests that
    compare stats objects keep working); this mixin only supplies the
    protocol every stats holder used to hand-write:

    * ``capture_state()`` — JSON-able dict keyed by field name (dict
      fields have their keys stringified; histograms nest their own
      snapshot);
    * ``restore_state(state)`` — strict inverse: unknown or missing
      keys raise instead of being silently dropped or ``setattr``-ed;
    * ``merge(other)`` — counters sum, dict counters sum per key,
      histograms merge, and fields named in ``_MAX_FIELDS`` (gauges
      like a queue-depth high-water mark) take the max.

    ``_INT_KEYED_FIELDS`` names dict fields whose keys are ints (JSON
    stringifies them; restore converts back).
    """

    _INT_KEYED_FIELDS: ClassVar[Tuple[str, ...]] = ()
    _MAX_FIELDS: ClassVar[Tuple[str, ...]] = ()

    def capture_state(self) -> dict:
        state: dict = {}
        for spec in fields(self):  # type: ignore[arg-type]
            value = getattr(self, spec.name)
            if isinstance(value, Histogram):
                state[spec.name] = value.capture_state()
            elif isinstance(value, dict):
                state[spec.name] = {str(k): v for k, v in value.items()}
            else:
                state[spec.name] = value
        return state

    def restore_state(self, state: dict) -> None:
        known = {spec.name for spec in fields(self)}  # type: ignore[arg-type]
        unknown = set(state) - known
        if unknown:
            raise ValueError(
                f"unknown {type(self).__name__} snapshot keys: {sorted(unknown)}"
            )
        missing = known - set(state)
        if missing:
            raise ValueError(
                f"missing {type(self).__name__} snapshot keys: {sorted(missing)}"
            )
        for spec in fields(self):  # type: ignore[arg-type]
            value = getattr(self, spec.name)
            snapshot = state[spec.name]
            if isinstance(value, Histogram):
                fresh = Histogram()
                fresh.restore_state(snapshot)
                setattr(self, spec.name, fresh)
            elif isinstance(value, dict):
                if spec.name in self._INT_KEYED_FIELDS:
                    setattr(self, spec.name, {int(k): v for k, v in snapshot.items()})
                else:
                    setattr(self, spec.name, dict(snapshot))
            else:
                setattr(self, spec.name, snapshot)

    def merge(self, other) -> None:
        if type(other) is not type(self):
            raise TypeError(
                f"cannot merge {type(other).__name__} into {type(self).__name__}"
            )
        for spec in fields(self):  # type: ignore[arg-type]
            mine = getattr(self, spec.name)
            theirs = getattr(other, spec.name)
            if isinstance(mine, Histogram):
                mine.merge(theirs)
            elif isinstance(mine, dict):
                for key, value in theirs.items():
                    mine[key] = mine.get(key, 0) + value
            elif spec.name in self._MAX_FIELDS:
                if theirs > mine:
                    setattr(self, spec.name, theirs)
            else:
                setattr(self, spec.name, mine + theirs)


@dataclass(frozen=True)
class _BoundMetric:
    """One registry entry: a name bound to an attribute of a live object."""

    name: str
    kind: str  # "counter" | "gauge" | "labeled" | "histogram"
    obj: object
    attr: str
    help: str = ""
    label: str = ""
    int_labels: bool = False

    def read(self):
        value = getattr(self.obj, self.attr)
        if self.kind == "histogram":
            return value.capture_state()
        if self.kind == "labeled":
            return {str(k): v for k, v in value.items()}
        return value

    def write(self, value) -> None:
        if self.kind == "histogram":
            fresh = Histogram()
            fresh.restore_state(value)
            setattr(self.obj, self.attr, fresh)
        elif self.kind == "labeled":
            keys = (int(k) for k in value) if self.int_labels else iter(value)
            setattr(self.obj, self.attr, {k: value[str(k)] for k in keys})
        else:
            setattr(self.obj, self.attr, value)


_VALID_KINDS = ("counter", "gauge", "labeled", "histogram")


class MetricsRegistry:
    """Named metrics bound to live stats objects.

    The registry does not own any numbers — it reads them from the
    objects it was built over (so a snapshot taken after a checkpoint
    restore reflects the restored counters), and ``restore`` writes
    values back through the same bindings.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, _BoundMetric] = {}

    def __contains__(self, name: str) -> bool:
        return name in self._metrics

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def _register(self, metric: _BoundMetric) -> None:
        if metric.kind not in _VALID_KINDS:
            raise ValueError(f"unknown metric kind {metric.kind!r}")
        if metric.name in self._metrics:
            raise ValueError(f"metric {metric.name!r} registered twice")
        self._metrics[metric.name] = metric

    def register_counter(self, name: str, obj, attr: str, *, help: str = "") -> None:
        self._register(_BoundMetric(name, "counter", obj, attr, help))

    def register_gauge(self, name: str, obj, attr: str, *, help: str = "") -> None:
        self._register(_BoundMetric(name, "gauge", obj, attr, help))

    def register_labeled(
        self,
        name: str,
        obj,
        attr: str,
        *,
        label: str,
        help: str = "",
        int_labels: bool = False,
    ) -> None:
        self._register(
            _BoundMetric(name, "labeled", obj, attr, help, label, int_labels)
        )

    def register_histogram(self, name: str, obj, attr: str, *, help: str = "") -> None:
        self._register(_BoundMetric(name, "histogram", obj, attr, help))

    # -- snapshot protocol ---------------------------------------------------

    def snapshot(self) -> dict:
        """A JSON-able, self-describing dump of every registered metric."""
        metrics = {}
        for name in sorted(self._metrics):
            metric = self._metrics[name]
            entry = {"kind": metric.kind, "value": metric.read()}
            if metric.help:
                entry["help"] = metric.help
            if metric.label:
                entry["label"] = metric.label
            metrics[name] = entry
        return {"version": SNAPSHOT_VERSION, "metrics": metrics}

    def restore(self, snapshot: dict) -> None:
        """Write a snapshot back into the bound objects (strict)."""
        entries = snapshot["metrics"]
        unknown = set(entries) - set(self._metrics)
        if unknown:
            raise ValueError(f"snapshot holds unregistered metrics: {sorted(unknown)}")
        missing = set(self._metrics) - set(entries)
        if missing:
            raise ValueError(f"snapshot is missing metrics: {sorted(missing)}")
        for name, entry in entries.items():
            metric = self._metrics[name]
            if entry["kind"] != metric.kind:
                raise ValueError(
                    f"metric {name!r} kind mismatch: snapshot says "
                    f"{entry['kind']!r}, registry says {metric.kind!r}"
                )
            metric.write(entry["value"])

    def merge(self, snapshot: dict) -> None:
        """Fold another run's snapshot into the bound objects."""
        for name, entry in snapshot["metrics"].items():
            metric = self._metrics.get(name)
            if metric is None:
                raise ValueError(f"cannot merge unregistered metric {name!r}")
            current = metric.read()
            if metric.kind == "histogram":
                merged = Histogram()
                merged.restore_state(current)
                other = Histogram()
                other.restore_state(entry["value"])
                merged.merge(other)
                metric.write(merged.capture_state())
            elif metric.kind == "labeled":
                combined = dict(current)
                for key, value in entry["value"].items():
                    combined[key] = combined.get(key, 0) + value
                metric.write(combined)
            elif metric.kind == "gauge":
                metric.write(max(current, entry["value"]))
            else:
                metric.write(current + entry["value"])

    def render_prometheus(self) -> str:
        return render_prometheus(self.snapshot())

    def render_table(self) -> str:
        return render_table(self.snapshot())


def _prom_name(name: str) -> str:
    return f"repro_{name}"


def _prom_escape_label(value: str) -> str:
    """Escape a label value per the text exposition format."""
    return (
        value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _prom_escape_help(text: str) -> str:
    """Escape HELP text per the text exposition format."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def render_prometheus(snapshot: dict) -> str:
    """Prometheus text exposition format for a registry snapshot.

    Conformant exposition: histogram buckets are cumulative and end at
    ``le="+Inf"`` equal to ``_count``, ``_sum``/``_count`` ride under
    the histogram family, and the max-tracking sidecar is its own
    ``_max`` gauge family (a bare extra sample under a histogram TYPE
    is invalid).  Label values and HELP text are escaped.
    """
    lines: List[str] = []
    for name in sorted(snapshot["metrics"]):
        entry = snapshot["metrics"][name]
        kind, value = entry["kind"], entry["value"]
        full = _prom_name(name)
        if entry.get("help"):
            lines.append(f"# HELP {full} {_prom_escape_help(entry['help'])}")
        if kind in ("counter", "gauge"):
            lines.append(f"# TYPE {full} {kind}")
            lines.append(f"{full} {value}")
        elif kind == "labeled":
            label = entry.get("label", "key")
            lines.append(f"# TYPE {full} counter")
            for key in sorted(value):
                escaped = _prom_escape_label(key)
                lines.append(f'{full}{{{label}="{escaped}"}} {value[key]}')
        else:  # histogram
            lines.append(f"# TYPE {full} histogram")
            cumulative = 0
            for bound, count in zip(value["bounds"], value["counts"]):
                cumulative += count
                lines.append(f'{full}_bucket{{le="{bound:g}"}} {cumulative}')
            cumulative += value["counts"][-1]
            lines.append(f'{full}_bucket{{le="+Inf"}} {cumulative}')
            lines.append(f"{full}_sum {value['total_minutes']}")
            lines.append(f"{full}_count {value['count']}")
            lines.append(f"# TYPE {full}_max gauge")
            lines.append(f"{full}_max {value['max_minutes']}")
    return "\n".join(lines) + ("\n" if lines else "")


def render_table(snapshot: dict) -> str:
    """Aligned human-readable rendering of a registry snapshot."""
    rows: List[Tuple[str, str]] = []
    for name in sorted(snapshot["metrics"]):
        entry = snapshot["metrics"][name]
        kind, value = entry["kind"], entry["value"]
        if kind in ("counter", "gauge"):
            rows.append((name, str(value)))
        elif kind == "labeled":
            if not value:
                rows.append((name, "(none)"))
            for key in sorted(value):
                rows.append((f"{name}{{{key}}}", str(value[key])))
        else:
            mean = value["total_minutes"] / value["count"] if value["count"] else 0.0
            rows.append(
                (
                    name,
                    f"count={value['count']} mean={mean:.3f} "
                    f"max={value['max_minutes']:.3f} (minutes)",
                )
            )
    if not rows:
        return "(no metrics)"
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}}  {value}" for name, value in rows)


def build_study_registry(study, *, include_caches: bool = False) -> MetricsRegistry:
    """Wire one study's stats holders into a registry.

    Crawl and fault counters are always present; gateway metrics join
    when the study routes via the serving gateway.  (In a parallel
    crawl the gateway's live telemetry is shard-local and is *not*
    merged back — the canonical gateway view for a crawl is the trace
    replay; see ``docs/OBSERVABILITY.md``.)

    ``include_caches`` additionally binds the ranker's memo hit/miss
    counters (``ranker_cache_*``).  They are opt-in because cache
    traffic is an implementation detail of *how* a run was executed:
    a resumed or differently-sharded run serves the same pages with
    different hit counts, and the default registry's snapshot is part
    of the byte-identity contract across kill/resume.
    """
    registry = MetricsRegistry()
    if include_caches:
        ranker = study.engine.ranker
        registry.register_counter(
            "ranker_cache_hits_total", ranker, "_hits",
            help="ranking memo hits (bundles and unit vectors)",
        )
        registry.register_counter(
            "ranker_cache_misses_total", ranker, "_misses",
            help="ranking memo misses (bundles and unit vectors)",
        )
    stats = study.stats
    crawl_help = {
        "requests": "query attempts issued (excluding breaker fast-fails)",
        "retries": "second-and-later attempts",
        "captchas": "RATE_LIMITED interstitials seen",
        "pages": "complete SERPs collected",
        "crashes": "browser crashes absorbed by restart",
        "dns_failures": "hostname resolution failures",
        "timeouts": "requests abandoned by the client",
        "server_errors": "HTTP 5xx responses",
        "malformed": "200 OK pages that were not complete SERPs",
        "overloads": "requests shed by the gateway",
        "breaker_fastfails": "attempts suppressed by an open breaker",
    }
    for attr, help_text in crawl_help.items():
        registry.register_counter(f"crawl_{attr}_total", stats, attr, help=help_text)
    registry.register_labeled(
        "crawl_failures_total",
        stats,
        "failures_by_kind",
        label="kind",
        help="terminal failures by kind",
    )
    fault_stats = study.fault_stats
    registry.register_labeled(
        "faults_injected_total", fault_stats, "injected", label="kind",
        help="faults the plan injected",
    )
    registry.register_labeled(
        "faults_absorbed_total", fault_stats, "absorbed", label="kind",
        help="failed attempts a retry recovered",
    )
    registry.register_labeled(
        "faults_terminal_total", fault_stats, "terminal", label="kind",
        help="failed attempts that ended their round",
    )
    registry.register_labeled(
        "faults_attempts_total",
        fault_stats,
        "retry_histogram",
        label="attempts",
        int_labels=True,
        help="delivered queries by attempts used",
    )
    if getattr(study, "gateway", None) is not None:
        gstats = study.gateway.stats
        for attr in (
            "requests",
            "cache_hits",
            "cache_misses",
            "cache_bypasses",
            "cache_evictions",
            "cache_expirations",
            "admitted",
            "rejected",
            "retries",
            "hedges",
            "rate_limited",
            "degraded_served",
        ):
            registry.register_counter(f"gateway_{attr}_total", gstats, attr)
        registry.register_gauge(
            "gateway_max_queue_depth", gstats, "max_queue_depth",
            help="high-water queue depth",
        )
        registry.register_labeled(
            "gateway_replica_requests_total",
            gstats,
            "replica_requests",
            label="replica",
        )
        registry.register_histogram(
            "gateway_queue_wait_minutes", gstats, "queue_wait",
            help="virtual queue wait",
        )
        registry.register_histogram(
            "gateway_service_minutes", gstats, "service", help="virtual service time",
        )
        registry.register_histogram(
            "gateway_total_minutes", gstats, "total", help="virtual total latency",
        )
    supervisor = getattr(study, "supervisor", None)
    if supervisor is not None:
        sstats = supervisor.stats
        supervise_help = {
            "heartbeats": "round-start liveness beats received",
            "rounds_received": "round results accepted by the parent",
            "crashes_detected": "worker exits noticed mid-shard",
            "stalls_detected": "workers killed for missing their deadline",
            "worker_errors": "structured exceptions reported by workers",
            "respawns": "replacement worker processes started",
            "reassignments": "shards handed to an already-live worker",
            "workers_lost": "worker slots permanently retired",
            "quarantined_shards": "shards given up on after repeated failures",
            "quarantined_failures": "result cells synthesized as shard-quarantined",
        }
        for attr, help_text in supervise_help.items():
            registry.register_counter(
                f"supervisor_{attr}_total", sstats, attr, help=help_text
            )
    return registry
