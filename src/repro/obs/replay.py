"""Canonical gateway spans via merge-time admission replay.

Why replay instead of recording?  When a crawl is sharded over N
workers, each worker rebuilds its own gateway, and that gateway's
*telemetry* — queue depth, queue wait, which replica round-robin picks
— depends on which shard of the traffic it saw.  The served bytes
don't (replicas are interchangeable and pages are request-determined,
which is why the dataset stays byte-identical), but live gateway spans
would differ per worker count and break the trace-parity invariant.

So the crawl path never records gateway spans live.  Instead, at merge
time — where attempts from all shards are already in canonical (round,
treatment, attempt) order — :class:`GatewayReplay` re-runs the
admission model over the full request stream: the same
:class:`~repro.serve.admission.ReplicaQueue` maths, the same routing
policy, the same replica fleet, fed in the order the sequential
gateway would have seen.  The resulting ``gateway.queue`` /
``gateway.service`` spans are the canonical serving timeline of the
study, identical for every worker count by construction.

Scope: the study crawl's gateway mode (no SERP cache, no hedging —
both are disabled for parity crawls) with gateway-internal retries not
modelled separately (the runner's own retry loop re-enters the replay
as a fresh attempt).  Attempts that never reached the serving surface
— pre-dispatch injected faults (crash / DNS / timeout / 5xx / storm)
and breaker fast-fails, which issue no request at all — are skipped,
exactly as the live gateway never saw them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.engine.datacenters import Datacenter
from repro.engine.frontend import DEFAULT_LOCATION
from repro.geo.coords import LatLon
from repro.seeding import stable_hash
from repro.serve.admission import ReplicaQueue
from repro.serve.routing import make_policy

from repro.obs.trace import format_id

__all__ = ["GatewayReplay"]

#: Attempt statuses that short-circuited *before* the serving surface:
#: the gateway never saw these requests, so the replay skips them.
_PRE_DISPATCH_STATUSES = frozenset(
    {"browser-crash", "dns-failure", "timeout", "server-error", "rate-limit-storm"}
)


@dataclass
class _ReplayReplica:
    """Routing-visible stand-in for one serving replica."""

    datacenter: Datacenter
    queue: ReplicaQueue

    @property
    def name(self) -> str:
        return self.datacenter.name


class GatewayReplay:
    """Synthesizes canonical gateway spans into merged round trees."""

    def __init__(
        self,
        datacenters: List[Datacenter],
        *,
        policy: str = "round-robin",
        queue_capacity: int = 32,
        service_minutes: float = 0.1,
    ):
        self.policy = make_policy(policy)
        self.replicas = [
            _ReplayReplica(
                datacenter=datacenter,
                queue=ReplicaQueue(
                    capacity=queue_capacity, service_minutes=service_minutes
                ),
            )
            for datacenter in datacenters
        ]

    @classmethod
    def from_study(cls, study) -> Optional["GatewayReplay"]:
        """A replay mirroring the study's gateway, or ``None`` without one."""
        gateway = getattr(study, "gateway", None)
        if gateway is None:
            return None
        probe = gateway.replicas[0].queue
        return cls(
            [replica.datacenter for replica in gateway.replicas],
            policy=study.config.gateway_routing,
            queue_capacity=probe.capacity,
            service_minutes=probe.service_minutes,
        )

    def annotate_round(self, trees: List[dict]) -> None:
        """Feed one merged round through the admission model, in place.

        ``trees`` must already be in canonical treatment order — the
        order the sequential gateway would have admitted them.  Queue
        state persists across rounds, like the live gateway's.
        """
        for tree in trees:
            gps = tree["attrs"].get("gps")
            location = LatLon(gps[0], gps[1]) if gps else DEFAULT_LOCATION
            for attempt in tree["children"]:
                if attempt["name"] != "attempt":
                    continue
                if attempt["attrs"].get("status") in _PRE_DISPATCH_STATUSES:
                    continue
                self._admit(attempt, location)
            for child in tree["children"]:
                if child["end"] > tree["end"]:
                    tree["end"] = child["end"]

    def _admit(self, attempt: dict, location: LatLon) -> None:
        arrival = attempt["start"]
        preference = self.policy.rank(self.replicas, None, location, arrival)
        chosen = slot = None
        for replica in preference:
            slot = replica.queue.try_admit(arrival)
            if slot is not None:
                chosen = replica
                break
        if chosen is None:
            attempt["events"].append(
                {"name": "gateway.shed", "at": arrival, "attrs": {}}
            )
            return
        seq = len(attempt["children"])
        queue_id = format_id(
            stable_hash("span", attempt["id"], "gateway.queue", seq)
        )
        service_id = format_id(
            stable_hash("span", attempt["id"], "gateway.service", seq + 1)
        )
        attempt["children"].append(
            {
                "id": queue_id,
                "parent": attempt["id"],
                "name": "gateway.queue",
                "start": arrival,
                "end": slot.start_minutes,
                "attrs": {},
                "events": [],
                "children": [],
            }
        )
        attempt["children"].append(
            {
                "id": service_id,
                "parent": attempt["id"],
                "name": "gateway.service",
                "start": slot.start_minutes,
                "end": slot.completion_minutes,
                "attrs": {"replica": chosen.name},
                "events": [],
                "children": [],
            }
        )
        if slot.completion_minutes > attempt["end"]:
            attempt["end"] = slot.completion_minutes
