"""repro.obs — deterministic observability over virtual time.

Tracing (:mod:`repro.obs.trace`), unified metrics
(:mod:`repro.obs.metrics`), exporters (:mod:`repro.obs.exporters`),
merge-time gateway replay (:mod:`repro.obs.replay`), and the
virtual-time profiler (:mod:`repro.obs.profile`).
"""

from repro.obs.metrics import (
    Histogram,
    MetricSet,
    MetricsRegistry,
    build_study_registry,
    render_prometheus,
    render_table,
)
from repro.obs.trace import NULL_TRACER, Tracer, trace_id_for

__all__ = [
    "Histogram",
    "MetricSet",
    "MetricsRegistry",
    "build_study_registry",
    "render_prometheus",
    "render_table",
    "Tracer",
    "NULL_TRACER",
    "trace_id_for",
]
