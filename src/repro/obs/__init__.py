"""repro.obs — deterministic observability over virtual time.

Tracing (:mod:`repro.obs.trace`), unified metrics
(:mod:`repro.obs.metrics`), exporters (:mod:`repro.obs.exporters`),
merge-time gateway replay (:mod:`repro.obs.replay`), the virtual-time
profiler (:mod:`repro.obs.profile`), and the telemetry plane — the
wide-event log (:mod:`repro.obs.events`), rollups
(:mod:`repro.obs.telemetry`), and burn-rate SLOs
(:mod:`repro.obs.slo`).
"""

from repro.obs.events import (
    NULL_RECORDER,
    CrawlEventBuilder,
    EventLog,
    EventRecorder,
    read_events,
    validate_events,
)
from repro.obs.metrics import (
    Histogram,
    MetricSet,
    MetricsRegistry,
    build_study_registry,
    render_prometheus,
    render_table,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    evaluate_slos,
    is_bad_serve_outcome,
    verify_brownout_accounting,
)
from repro.obs.telemetry import (
    Rollup,
    filter_events,
    format_kv_rows,
    rollup,
    write_html_report,
)
from repro.obs.trace import NULL_TRACER, Tracer, trace_id_for

__all__ = [
    "Histogram",
    "MetricSet",
    "MetricsRegistry",
    "build_study_registry",
    "render_prometheus",
    "render_table",
    "Tracer",
    "NULL_TRACER",
    "trace_id_for",
    "EventLog",
    "EventRecorder",
    "NULL_RECORDER",
    "CrawlEventBuilder",
    "read_events",
    "validate_events",
    "SLO",
    "DEFAULT_SLOS",
    "evaluate_slos",
    "is_bad_serve_outcome",
    "verify_brownout_accounting",
    "Rollup",
    "rollup",
    "filter_events",
    "format_kv_rows",
    "write_html_report",
]
