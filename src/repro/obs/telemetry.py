"""The telemetry plane: deterministic rollups over the wide-event log.

A rollup is ``group_by`` over any dimension set: every event lands in
the cell keyed by its values for the chosen dimensions, and each cell
accumulates count / sum / min / max plus a fixed-bucket
:class:`~repro.obs.metrics.Histogram` of an optional numeric value
field.  Cells also keep **exemplars** — the first few event (and trace
span) ids that landed in them — so an aggregate row links back to the
raw events and the matching trace spans that explain it.

Everything is deterministic: cells sort by group key, exemplars are
first-arrival in canonical log order, and rendering is pure string
formatting — two identical logs roll up to identical bytes.

:func:`format_kv_rows` is the one key/value table renderer the serving
stats reports share (see :meth:`~repro.serve.stats.FleetStats.render`
and friends) — the ad-hoc per-report column arithmetic lives here now.

The module also renders the static HTML report behind
``repro telemetry --html``: stream counts, stock rollups, SLO results,
and the alert ledger in one self-contained page (inline CSS, stdlib
only).
"""

from __future__ import annotations

import html as _html
import json
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.obs.events import read_events
from repro.obs.metrics import Histogram

__all__ = [
    "Rollup",
    "RollupCell",
    "rollup",
    "filter_events",
    "format_kv_rows",
    "html_report",
    "write_html_report",
]

#: Label column width of the shared key/value table format — the same
#: 18-character gutter the serving reports have always printed.
_KV_WIDTH = 18


def format_kv_rows(
    rows: Sequence[Tuple[str, object]], *, indent: str = "  "
) -> List[str]:
    """Render (label, value) pairs as aligned report lines."""
    return [f"{indent}{label:<{_KV_WIDTH}}{value}" for label, value in rows]


def filter_events(
    events: List[dict],
    *,
    stream: Optional[str] = None,
    where: Optional[Dict[str, str]] = None,
) -> List[dict]:
    """Events matching a stream and/or dimension equality filters.

    ``where`` values compare against ``str(event[dim])`` so CLI filters
    like ``outcome=ok`` or ``day=1`` need no type plumbing.
    """
    selected = events
    if stream is not None:
        selected = [event for event in selected if event.get("stream") == stream]
    if where:
        selected = [
            event
            for event in selected
            if all(str(event.get(dim)) == want for dim, want in where.items())
        ]
    return selected


@dataclass
class RollupCell:
    """One group's aggregates."""

    key: Tuple[str, ...]
    count: int = 0
    value_sum: float = 0.0
    value_min: Optional[float] = None
    value_max: Optional[float] = None
    histogram: Histogram = field(default_factory=Histogram)
    exemplars: List[dict] = field(default_factory=list)

    @property
    def value_mean(self) -> float:
        return self.value_sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        return {
            "key": list(self.key),
            "count": self.count,
            "sum": round(self.value_sum, 6),
            "min": self.value_min,
            "max": self.value_max,
            "histogram": self.histogram.capture_state(),
            "exemplars": self.exemplars,
        }


@dataclass
class Rollup:
    """A ``group_by`` result: dimension names plus sorted cells."""

    by: Tuple[str, ...]
    value: Optional[str]
    cells: List[RollupCell]
    total_events: int

    def to_dict(self) -> dict:
        return {
            "by": list(self.by),
            "value": self.value,
            "total_events": self.total_events,
            "cells": [cell.to_dict() for cell in self.cells],
        }

    def render(self) -> str:
        """Aligned text table, one row per cell."""
        title = f"rollup by ({', '.join(self.by)})"
        if self.value:
            title += f" over {self.value}"
        headers = list(self.by) + ["count"]
        if self.value:
            headers += ["sum", "mean", "max"]
        rows = []
        for cell in self.cells:
            row = list(cell.key) + [str(cell.count)]
            if self.value:
                row += [
                    f"{cell.value_sum:.3f}",
                    f"{cell.value_mean:.3f}",
                    f"{cell.value_max if cell.value_max is not None else 0.0:.3f}",
                ]
            rows.append(row)
        widths = [
            max(len(headers[i]), *(len(row[i]) for row in rows)) if rows else len(headers[i])
            for i in range(len(headers))
        ]
        lines = [title]
        lines.append("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
        for cell, row in zip(self.cells, rows):
            line = "  " + "  ".join(v.ljust(widths[i]) for i, v in enumerate(row))
            if cell.exemplars:
                sample = cell.exemplars[0]
                link = sample.get("span") or sample.get("id")
                line += f"  [{link}]"
            lines.append(line.rstrip())
        lines.append(f"  ({self.total_events} events)")
        return "\n".join(lines)


def rollup(
    events: List[dict],
    by: Sequence[str],
    *,
    value: Optional[str] = None,
    exemplars: int = 3,
) -> Rollup:
    """Group events by the given dimensions into deterministic cells.

    Args:
        events: The event dicts (canonical log order).
        by: Dimension names; an event missing one groups under ``"-"``.
        value: Optional numeric field to aggregate (sum/min/max and a
            histogram per cell), e.g. ``latency``.
        exemplars: Sample event/span ids kept per cell (first arrivals).
    """
    if not by:
        raise ValueError("rollup needs at least one dimension")
    cells: Dict[Tuple[str, ...], RollupCell] = {}
    for event in events:
        key = tuple(
            "-" if event.get(dim) is None else str(event.get(dim)) for dim in by
        )
        cell = cells.get(key)
        if cell is None:
            cell = cells[key] = RollupCell(key=key)
        cell.count += 1
        if value is not None and isinstance(event.get(value), (int, float)):
            amount = float(event[value])
            cell.value_sum += amount
            cell.value_min = (
                amount if cell.value_min is None else min(cell.value_min, amount)
            )
            cell.value_max = (
                amount if cell.value_max is None else max(cell.value_max, amount)
            )
            cell.histogram.record(amount)
        if len(cell.exemplars) < exemplars:
            exemplar = {"id": event.get("id")}
            if event.get("span"):
                exemplar["span"] = event["span"]
            cell.exemplars.append(exemplar)
    ordered = [cells[key] for key in sorted(cells)]
    return Rollup(
        by=tuple(by), value=value, cells=ordered, total_events=len(events)
    )


# -- HTML report -------------------------------------------------------------

_HTML_STYLE = """
body { font-family: -apple-system, 'Segoe UI', sans-serif; margin: 2em;
       color: #1a1a2e; }
h1 { font-size: 1.4em; } h2 { font-size: 1.1em; margin-top: 1.6em; }
table { border-collapse: collapse; margin: 0.6em 0; }
th, td { border: 1px solid #ccd; padding: 0.25em 0.7em; text-align: left;
         font-size: 0.9em; }
th { background: #eef; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
code { background: #f4f4fa; padding: 0.1em 0.3em; font-size: 0.85em; }
.ok { color: #0a7a33; } .bad { color: #b00020; }
.meta { color: #667; font-size: 0.85em; }
"""


def _html_table(headers: List[str], rows: List[List[str]]) -> List[str]:
    out = ["<table>", "<tr>" + "".join(f"<th>{_html.escape(h)}</th>" for h in headers) + "</tr>"]
    for row in rows:
        out.append(
            "<tr>" + "".join(f"<td>{cell}</td>" for cell in row) + "</tr>"
        )
    out.append("</table>")
    return out


def _cell_rows(roll: Rollup) -> List[List[str]]:
    rows = []
    for cell in roll.cells:
        row = [_html.escape(part) for part in cell.key] + [str(cell.count)]
        if roll.value:
            row += [f"{cell.value_mean:.3f}", f"{cell.value_max or 0.0:.3f}"]
        links = ", ".join(
            f"<code>{_html.escape(e.get('span') or e.get('id') or '')}</code>"
            for e in cell.exemplars
        )
        row.append(links)
        rows.append(row)
    return rows


def html_report(
    header: dict, events: List[dict], slo_report=None, *, title: str = "repro telemetry"
) -> str:
    """The static, self-contained HTML telemetry report."""
    parts = [
        "<!doctype html>",
        "<html><head><meta charset='utf-8'>",
        f"<title>{_html.escape(title)}</title>",
        f"<style>{_HTML_STYLE}</style></head><body>",
        f"<h1>{_html.escape(title)}</h1>",
        f"<p class='meta'>log <code>{_html.escape(str(header.get('log_id')))}</code>"
        f" &middot; {len(events)} events</p>",
    ]

    streams = rollup(events, ["stream"]) if events else None
    if streams is not None:
        parts.append("<h2>Streams</h2>")
        parts.extend(
            _html_table(
                ["stream", "count", "exemplars"],
                [
                    [_html.escape(cell.key[0]), str(cell.count),
                     ", ".join(f"<code>{_html.escape(e.get('id') or '')}</code>"
                               for e in cell.exemplars)]
                    for cell in streams.cells
                ],
            )
        )

    stock = [
        ("Outcomes", ["stream", "outcome"], None),
        ("Serve ladder", ["rung", "outcome"], "latency"),
        ("Shards", ["shard", "outcome"], "latency"),
        ("Crawl by granularity", ["granularity", "outcome"], None),
    ]
    for section, dims, value in stock:
        selected = [e for e in events if e.get(dims[0]) is not None]
        if not selected:
            continue
        roll = rollup(selected, dims, value=value)
        headers = list(dims) + ["count"]
        if value:
            headers += ["mean", "max"]
        headers.append("exemplars")
        parts.append(f"<h2>{_html.escape(section)}</h2>")
        parts.extend(_html_table(headers, _cell_rows(roll)))

    if slo_report is not None:
        parts.append("<h2>SLOs</h2>")
        rows = []
        for result in slo_report.results:
            status = (
                "<span class='ok'>met</span>"
                if result.met
                else "<span class='bad'>MISSED</span>"
            )
            rows.append(
                [
                    _html.escape(result.slo.name),
                    _html.escape(result.slo.stream),
                    f"{result.slo.objective:g}",
                    f"{result.good_fraction:.4f}",
                    f"{result.bad}/{result.total}",
                    status,
                ]
            )
        parts.extend(
            _html_table(
                ["slo", "stream", "objective", "good fraction", "bad/total", "status"],
                rows,
            )
        )
        parts.append("<h2>Alert ledger</h2>")
        if slo_report.ledger:
            parts.extend(
                _html_table(
                    ["virtual time", "slo", "kind", "state", "detail"],
                    [
                        [
                            f"{entry['at']:.2f}",
                            _html.escape(entry["slo"]),
                            _html.escape(entry["kind"]),
                            _html.escape(entry["state"]),
                            _html.escape(
                                json.dumps(
                                    {
                                        k: v
                                        for k, v in entry.items()
                                        if k not in ("at", "slo", "kind", "state")
                                    },
                                    sort_keys=True,
                                )
                            ),
                        ]
                        for entry in slo_report.ledger
                    ],
                )
            )
        else:
            parts.append("<p>(no alerts)</p>")
        if slo_report.brownout_mismatches:
            parts.append("<h2 class='bad'>Brownout accounting mismatches</h2><ul>")
            parts.extend(
                f"<li>{_html.escape(p)}</li>" for p in slo_report.brownout_mismatches
            )
            parts.append("</ul>")

    parts.append("</body></html>")
    return "\n".join(parts) + "\n"


def write_html_report(events_path, out, *, slos=None) -> None:
    """Render ``events_path`` (wide-event JSONL) as HTML at ``out``."""
    from repro.obs.slo import DEFAULT_SLOS, evaluate_slos

    header, events, _ = read_events(events_path)
    report = evaluate_slos(events, slos if slos is not None else DEFAULT_SLOS)
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(html_report(header, events, report))
