"""The wide-event log: one canonical structured event per unit of work.

A *wide event* is the observability industry's answer to metric
sprawl: instead of twenty counters that each know one thing about a
request, emit **one** record per request (or crawl cell, or audit
cycle) carrying every dimension the system computed while handling it
— query, location, shard, degradation-ladder rung, fault kind, cache
path, virtual latency.  Rollups (:mod:`repro.obs.telemetry`) and SLO
evaluation (:mod:`repro.obs.slo`) are then *queries over the log*, not
separate instrumentation.

The on-disk format is JSON Lines with three record kinds::

    {"kind": "header",  "version": 1, "log_id": ..., "meta": {...}}
    {"kind": "event",   "id": ..., "stream": ..., "ts": ..., ...dims...}
    {"kind": "summary", "log_id": ..., "events": N, "streams": {...}}

Every line is ``json.dumps(..., sort_keys=True)`` with fixed
separators, like the trace format — byte determinism is a format
property.

Streams
-------
``crawl``
    One event per (round, treatment) cell of a study schedule.  These
    are **synthesized parent-side** by :class:`CrawlEventBuilder` from
    the canonical outcome stream — the same builder pattern as the
    trace's :class:`~repro.obs.exporters.TraceBuilder`, and the reason
    the log is byte-identical for any worker count *and* across
    kill/resume: a resumed run re-synthesizes the journaled rounds'
    events from the checkpoint, something live worker-side emission
    could never replay.
``serve`` / ``serve.control``
    One event per request through a :class:`~repro.serve.fleet.
    GatewayFleet` (emitted live at the fleet's single ``_finish`` exit),
    plus control events for brownout transitions, fault injections, and
    backfills.  Serve events carry the exact window-accounting marks
    (``counted``) the brownout controller used, so the SLO engine can
    reproduce its bad-fraction arithmetic without duplicating it.
``gateway``
    One event per request through a bare :class:`~repro.serve.gateway.
    Gateway` (single-gateway serving, outside a fleet).
``audit``
    One event per completed audit cycle, carrying the cycle's drift
    alerts — the SLO ledger folds these in verbatim.

Live streams are recorded through :class:`EventRecorder`, which is
disabled by default and a cheap early-return when off (the same
contract as :class:`~repro.obs.trace.Tracer`).
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional, Tuple

from repro.obs.trace import format_id
from repro.seeding import stable_hash
from repro.store.record_log import RecordLogWriter, read_log, scan_log

__all__ = [
    "EVENTS_VERSION",
    "EventLog",
    "EventRecorder",
    "NULL_RECORDER",
    "CrawlEventBuilder",
    "crawl_event_id",
    "crawl_span_id",
    "read_events",
    "validate_events",
]

EVENTS_VERSION = 1


def _dumps(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def crawl_event_id(log_id: str, ordinal: int, treatment: int) -> str:
    """The id of the crawl event at canonical cell (round, treatment)."""
    return format_id(stable_hash("event", log_id, "crawl", ordinal, treatment))


def crawl_span_id(trace_id: str, ordinal: int, treatment: int) -> str:
    """The exemplar link: the id the tracer gives this cell's ``crawl`` span.

    Pure function of the same coordinates the event keys on (see
    :meth:`Tracer.begin`'s treatment-root scheme), so events link to
    trace spans without the trace existing — run ``--trace`` later with
    the same config and the ids line up.
    """
    return format_id(
        stable_hash("span", trace_id, "round", ordinal, "treatment", treatment, "crawl")
    )


class EventLog:
    """Streams canonical wide-event JSONL to a file.

    Records are CRC32-framed through :mod:`repro.store` (the payload
    inside the frame is the same canonical JSON as ever, so rollup and
    SLO byte-identity are untouched).  ``segment_bytes`` turns on
    :class:`~repro.store.record_log.RecordLogWriter` rotation for
    long-lived logs; the default is one file, matching the readers'
    single-path API.
    """

    def __init__(
        self,
        path,
        *,
        log_id: str,
        meta: Optional[dict] = None,
        segment_bytes: Optional[int] = None,
    ):
        # Observability output: no directory fsync, no per-record
        # fsync — an event log is replayable, not load-bearing state.
        self._log = RecordLogWriter.create(
            path, segment_bytes=segment_bytes, fsync_directory=False
        )
        self.log_id = log_id
        self._events = 0
        self._streams: Dict[str, int] = {}
        self._closed = False
        self._write(
            {
                "kind": "header",
                "version": EVENTS_VERSION,
                "log_id": log_id,
                "meta": meta or {},
            }
        )

    def _write(self, payload: dict) -> None:
        self._log.append(_dumps(payload))

    def emit(self, event: dict) -> None:
        """Write one event record (``kind``/bookkeeping added here)."""
        stream = event["stream"]
        self._write({"kind": "event", **event})
        self._events += 1
        self._streams[stream] = self._streams.get(stream, 0) + 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._write(
            {
                "kind": "summary",
                "log_id": self.log_id,
                "events": self._events,
                "streams": self._streams,
            }
        )
        self._log.close()


class EventRecorder:
    """Guarded live emitter for single-process streams (serve, audit).

    Disabled by default; every hook behind it is a cheap attribute
    check.  Enabling attaches an :class:`EventLog`; event ids derive
    from (log id, stream, emission ordinal, caller key), so a live
    stream's ids are deterministic for a deterministic request stream.
    """

    __slots__ = ("enabled", "log", "_seq")

    def __init__(self) -> None:
        self.enabled = False
        self.log: Optional[EventLog] = None
        self._seq = 0

    def attach(self, log: EventLog) -> None:
        self.enabled = True
        self.log = log
        self._seq = 0

    def detach(self) -> None:
        self.enabled = False
        self.log = None

    def emit(self, stream: str, key: Tuple = (), **fields) -> None:
        if not self.enabled:
            return
        event_id = format_id(
            stable_hash("event", self.log.log_id, stream, self._seq, *key)
        )
        self._seq += 1
        self.log.emit({"id": event_id, "stream": stream, **fields})


#: The shared disabled recorder layers default to; callers replace it
#: with an attached instance to turn a stream on.
NULL_RECORDER = EventRecorder()


class CrawlEventBuilder:
    """Synthesizes the canonical ``crawl`` event stream for one study.

    One event per (round ordinal, treatment index) cell, written in
    canonical order as rounds complete.  Everything on the event is a
    pure function of (config, schedule, outcome): the schedule dims
    come from :meth:`Study.iter_rounds`, the treatment dims from the
    study's treatment table, and the outcome from the same
    ``(index, SerpRecord | CrawlFailure)`` stream the dataset merge
    consumes — whether that stream arrives from the sequential loop, a
    parallel merge, a supervised merge, or a checkpoint replay.
    """

    def __init__(self, path, *, study):
        from repro.obs.trace import trace_id_for

        fingerprint = study.checkpoint_fingerprint()
        self.log_id = trace_id_for(fingerprint)
        self.log = EventLog(path, log_id=self.log_id, meta=fingerprint)
        self._schedule = {
            scheduled.ordinal: scheduled for scheduled in study.iter_rounds()
        }
        self._dims: List[dict] = [
            {
                "treatment": index,
                "granularity": treatment.granularity.value,
                "location": treatment.region.qualified_name,
                "copy": treatment.copy_index,
                "gps": [treatment.region.center.lat, treatment.region.center.lon],
                "machine": str(treatment.browser.machine.ip),
            }
            for index, treatment in enumerate(study.treatments)
        ]
        self._closed = False

    def add_round(self, ordinal: int, outcomes) -> None:
        """Write one round's cells; ``outcomes`` pairs (treatment, outcome)."""
        from repro.core.runner import CrawlFailure

        scheduled = self._schedule[ordinal]
        for index, outcome in outcomes:
            failed = isinstance(outcome, CrawlFailure)
            event = {
                "id": crawl_event_id(self.log_id, ordinal, index),
                "stream": "crawl",
                "ts": scheduled.timestamp,
                "ordinal": ordinal,
                "query": scheduled.query.text,
                "day": scheduled.day_offset,
                "outcome": outcome.kind if failed else "ok",
                "span": crawl_span_id(self.log_id, ordinal, index),
            }
            event.update(self._dims[index])
            self.log.emit(event)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.log.close()


def read_events(path) -> Tuple[dict, List[dict], Optional[dict]]:
    """Parse a wide-event file into (header, events, summary).

    Torn tails are tolerated: the durable prefix is returned (with
    ``summary`` ``None`` when the summary line was lost), matching how
    every journal reader in the system treats the write in flight at
    death.  Interior corruption raises
    :class:`~repro.store.record_log.StoreCorruption`; framed and
    legacy unframed files both load.
    """
    header: Optional[dict] = None
    summary: Optional[dict] = None
    events: List[dict] = []
    for record, _ in read_log(path):
        kind = record.get("kind")
        if kind == "header":
            header = record
        elif kind == "event":
            events.append(record)
        elif kind == "summary":
            summary = record
        else:
            raise ValueError(f"unknown event record kind {kind!r}")
    if header is None:
        raise ValueError(f"{path}: not a wide-event file (no header line)")
    return header, events, summary


def validate_events(path) -> List[str]:
    """Structural checks over a wide-event file (empty list = ok).

    Damage is reported, never raised: a torn tail yields a
    ``truncated: true`` problem naming the byte offset of the durable
    prefix, and interior corruption yields one problem per damaged
    region with its segment coordinates.
    """
    problems: List[str] = []
    report = scan_log(path)
    for region in report.corrupt:
        problems.append(
            f"corrupt record after record {region.record_index} at byte "
            f"{region.start}: {region.reason}"
        )
    if report.torn is not None:
        problems.append(
            f"truncated: true — durable prefix ends at byte "
            f"{report.durable_end} ({report.size - report.durable_end} "
            "byte(s) torn)"
        )
    header: Optional[dict] = None
    summary: Optional[dict] = None
    events: List[dict] = []
    for scanned in report.records:
        kind = scanned.obj.get("kind")
        if kind == "header":
            header = scanned.obj
        elif kind == "event":
            events.append(scanned.obj)
        elif kind == "summary":
            summary = scanned.obj
        else:
            problems.append(f"unknown event record kind {kind!r}")
    if header is None:
        return [f"{path}: not a wide-event file (no header line)"] + problems
    if header.get("version") != EVENTS_VERSION:
        problems.append(f"unsupported events version {header.get('version')!r}")
    if not header.get("log_id"):
        problems.append("header has no log_id")
    seen = set()
    streams: Dict[str, int] = {}
    for event in events:
        event_id = event.get("id")
        if not event_id:
            problems.append(f"event without id: {event.get('stream')!r}")
        elif event_id in seen:
            problems.append(f"duplicate event id {event_id}")
        seen.add(event_id)
        stream = event.get("stream")
        if not stream:
            problems.append(f"event {event_id} has no stream")
        else:
            streams[stream] = streams.get(stream, 0) + 1
        if "ts" not in event:
            problems.append(f"event {event_id} has no ts")
    if summary is None:
        problems.append("no summary line (truncated log?)")
    else:
        if summary.get("events") != len(events):
            problems.append(
                f"summary says {summary.get('events')} events, file holds "
                f"{len(events)}"
            )
        if summary.get("streams") != streams:
            problems.append("summary stream counts differ from the file")
        if summary.get("log_id") != header.get("log_id"):
            problems.append("summary log_id differs from header")
    return problems
