"""Virtual-time profiler: where does a round's latency go?

Every round is a barrier — the study advances when its slowest
treatment finishes — so the number that matters is the per-round
*critical path*: the treatment whose crawl span ends last, and how its
virtual time splits between queue wait, service, retry backoff, and
overhead.  The profiler reads a canonical trace file (it never touches
a live study) and attributes every virtual minute on that path to one
bucket:

``queue-wait``
    time spent in ``gateway.queue`` spans (admission backlog);
``service``
    time inside ``gateway.service`` spans (replica work);
``backoff``
    retry delays, from ``retry.backoff`` events' ``minutes`` attr;
``other``
    the residual — dispatch overhead, fast-fails, parse time.

Breaker fast-fails consume no virtual time (that is their point), so
they are counted, not attributed.

Flamegraphs: :func:`folded_stacks` renders the trace in the folded
stack-sample format (``a;b;c weight``) that ``flamegraph.pl`` and
speedscope consume directly — each span contributes its *self* virtual
time (duration minus children) at its stack path, weighted in
microseconds (one virtual minute = 60,000,000, matching the Chrome
exporter's timebase).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.obs.exporters import _MICROS_PER_VIRTUAL_MINUTE, read_trace
from repro.obs.metrics import Histogram

__all__ = [
    "RoundProfile",
    "TraceProfile",
    "profile_trace",
    "folded_stacks",
    "write_folded",
]

_ATTRIBUTION_BUCKETS = ("queue-wait", "service", "backoff", "other")


@dataclass
class RoundProfile:
    """Critical-path attribution for one round."""

    ordinal: int
    query: Optional[str]
    makespan_minutes: float
    critical_treatment: Optional[int]
    critical_location: Optional[str]
    critical_outcome: Optional[str]
    attribution: Dict[str, float] = field(default_factory=dict)
    attempts: int = 0
    fastfails: int = 0


@dataclass
class TraceProfile:
    """Whole-trace profile: per-round paths plus aggregate attribution."""

    trace_id: str
    rounds: List[RoundProfile]
    totals: Dict[str, float]
    span_minutes: Dict[str, float]
    span_counts: Dict[str, int]

    def top_spans(self, n: int = 10) -> List[tuple]:
        """(name, total virtual minutes, count) for the costliest span names."""
        ranked = sorted(
            self.span_minutes.items(), key=lambda item: (-item[1], item[0])
        )
        return [
            (name, minutes, self.span_counts[name]) for name, minutes in ranked[:n]
        ]

    def render(self, top: int = 10) -> str:
        lines = [f"trace {self.trace_id}: {len(self.rounds)} round(s)"]
        total = sum(self.totals.values())
        lines.append("\ncritical-path attribution (virtual minutes):")
        for bucket in _ATTRIBUTION_BUCKETS:
            minutes = self.totals.get(bucket, 0.0)
            share = (minutes / total * 100.0) if total else 0.0
            lines.append(f"  {bucket:<12} {minutes:9.3f}  ({share:5.1f}%)")
        lines.append(f"  {'total':<12} {total:9.3f}")
        makespans = Histogram()
        for round_profile in self.rounds:
            makespans.observe(round_profile.makespan_minutes)
        lines.append("\nround makespan (virtual minutes):")
        lines.append(makespans.render(indent="  ", unit="min"))
        lines.append(f"\ntop spans by total virtual time (top {top}):")
        width = max(
            (len(name) for name, _, _ in self.top_spans(top)), default=4
        )
        for name, minutes, count in self.top_spans(top):
            lines.append(f"  {name:<{width}} {minutes:9.3f} min  x{count}")
        slowest = sorted(
            self.rounds, key=lambda r: (-r.makespan_minutes, r.ordinal)
        )[:3]
        if slowest:
            lines.append("\nslowest rounds:")
            for round_profile in slowest:
                lines.append(
                    f"  round {round_profile.ordinal:>3} "
                    f"({round_profile.query or '?'}): "
                    f"{round_profile.makespan_minutes:.3f} min on treatment "
                    f"{round_profile.critical_treatment} "
                    f"[{round_profile.critical_location or '?'}], "
                    f"outcome={round_profile.critical_outcome or '?'}"
                )
        return "\n".join(lines)


def _attribute(crawl: dict) -> RoundProfile:
    """Attribute one crawl span tree's virtual time to buckets."""
    profile = RoundProfile(
        ordinal=-1,
        query=crawl["attrs"].get("query"),
        makespan_minutes=crawl["end"] - crawl["start"],
        critical_treatment=crawl["attrs"].get("treatment"),
        critical_location=crawl["attrs"].get("location"),
        critical_outcome=crawl["attrs"].get("outcome"),
        attribution={bucket: 0.0 for bucket in _ATTRIBUTION_BUCKETS},
    )

    def visit(node: dict) -> None:
        duration = node["end"] - node["start"]
        if node["name"] == "gateway.queue":
            profile.attribution["queue-wait"] += duration
        elif node["name"] == "gateway.service":
            profile.attribution["service"] += duration
        elif node["name"] == "attempt":
            profile.attempts += 1
        for event in node["events"]:
            if event["name"] == "retry.backoff":
                profile.attribution["backoff"] += event["attrs"].get("minutes", 0.0)
            elif event["name"] == "breaker.fastfail":
                profile.fastfails += 1
        for child in node.get("children", ()):
            visit(child)

    visit(crawl)
    attributed = (
        profile.attribution["queue-wait"]
        + profile.attribution["service"]
        + profile.attribution["backoff"]
    )
    profile.attribution["other"] = max(0.0, profile.makespan_minutes - attributed)
    return profile


def folded_stacks(path) -> List[str]:
    """A trace as folded stacks: ``root;child;leaf self_micros`` lines.

    Self time only — a stack's weight is its span's virtual duration
    minus its children's, scaled to microseconds — so the flamegraph's
    column widths sum to wall (virtual) time exactly.  Lines merge by
    stack path and sort lexically; the output is canonical for a
    canonical trace.
    """
    _, spans, _ = read_trace(path)
    by_parent: Dict[str, List[dict]] = {}
    by_id: Dict[str, dict] = {}
    for span in spans:
        by_id[span["id"]] = span
        by_parent.setdefault(span["parent"], []).append(span)
    weights: Dict[str, int] = {}

    def visit(span: dict, prefix: str) -> None:
        stack = f"{prefix};{span['name']}" if prefix else span["name"]
        children = sorted(
            by_parent.get(span["id"], []),
            key=lambda child: (child["start"], child["id"]),
        )
        child_minutes = sum(child["end"] - child["start"] for child in children)
        self_minutes = max(0.0, (span["end"] - span["start"]) - child_minutes)
        micros = int(round(self_minutes * _MICROS_PER_VIRTUAL_MINUTE))
        if micros > 0:
            weights[stack] = weights.get(stack, 0) + micros
        for child in children:
            visit(child, stack)

    for root in sorted(
        (span for span in spans if span["parent"] not in by_id),
        key=lambda span: (span["start"], span["id"]),
    ):
        visit(root, "")
    return [f"{stack} {weights[stack]}" for stack in sorted(weights)]


def write_folded(path, out) -> None:
    """Export ``path`` (canonical JSONL trace) as folded stacks at ``out``."""
    with open(out, "w", encoding="utf-8") as handle:
        for line in folded_stacks(path):
            handle.write(line + "\n")


def profile_trace(path) -> TraceProfile:
    """Profile a canonical trace file (as written by ``repro run --trace``)."""
    header, spans, _ = read_trace(path)
    by_parent: Dict[str, List[dict]] = {}
    by_id: Dict[str, dict] = {}
    for span in spans:
        by_id[span["id"]] = span
        by_parent.setdefault(span["parent"], []).append(span)

    def as_tree(span: dict) -> dict:
        node = dict(span)
        node["children"] = [as_tree(child) for child in by_parent.get(span["id"], [])]
        return node

    span_minutes: Dict[str, float] = {}
    span_counts: Dict[str, int] = {}
    for span in spans:
        span_minutes[span["name"]] = (
            span_minutes.get(span["name"], 0.0) + span["end"] - span["start"]
        )
        span_counts[span["name"]] = span_counts.get(span["name"], 0) + 1

    rounds: List[RoundProfile] = []
    round_spans = sorted(
        (span for span in spans if span["name"] == "round"),
        key=lambda span: span["attrs"]["ordinal"],
    )
    for round_span in round_spans:
        crawls = [
            span
            for span in by_parent.get(round_span["id"], [])
            if span["name"] == "crawl"
        ]
        if not crawls:
            rounds.append(
                RoundProfile(
                    ordinal=round_span["attrs"]["ordinal"],
                    query=round_span["attrs"].get("query"),
                    makespan_minutes=round_span["end"] - round_span["start"],
                    critical_treatment=None,
                    critical_location=None,
                    critical_outcome=None,
                    attribution={b: 0.0 for b in _ATTRIBUTION_BUCKETS},
                )
            )
            continue
        critical = max(crawls, key=lambda span: (span["end"], -span["attrs"]["treatment"]))
        profile = _attribute(as_tree(critical))
        profile.ordinal = round_span["attrs"]["ordinal"]
        profile.query = round_span["attrs"].get("query")
        rounds.append(profile)

    totals = {bucket: 0.0 for bucket in _ATTRIBUTION_BUCKETS}
    for round_profile in rounds:
        for bucket, minutes in round_profile.attribution.items():
            totals[bucket] += minutes
    return TraceProfile(
        trace_id=header["trace_id"],
        rounds=rounds,
        totals=totals,
        span_minutes=span_minutes,
        span_counts=span_counts,
    )
