"""Command-line interface: run the study, print figures, validate.

Examples::

    repro-study run --scale small --out study.jsonl.gz --workers 4
    repro-study report --dataset study.jsonl.gz --figure 5
    repro-study validate --machines 50
    repro-study demographics --dataset study.jsonl.gz
    repro-study serve-bench --routing geo-affinity --cache-size 4096
    repro-study serve-bench --gateways 4 --out BENCH_serve.json
    repro-study chaos-serve --plan serve-chaos --gateways 3 --smoke
    repro-study crawl-bench --workers 1,2,4,8 --out BENCH_crawl.json
    repro-study chaos --plan chaos --workers 2 --checkpoint crawl.ckpt
    repro-study run --scale small --out s.jsonl.gz --trace s.trace.jsonl
    repro-study trace s.trace.jsonl --check --chrome s.chrome.json
    repro-study metrics s.metrics.json --format prom
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.core.datastore import SerpDataset
from repro.core.demographics_analysis import DemographicsAnalysis
from repro.core.experiment import DEFAULT_STUDY_SEED, StudyConfig
from repro.core.report import StudyReport
from repro.core.runner import Study
from repro.core.validation import run_gps_validation

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser (exposed for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro-study",
        description="Reproduce the IMC'15 geolocation search-personalization study.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    from repro.faults.plan import NAMED_PLANS
    from repro.store.faults import DISK_NAMED_PLANS

    run = sub.add_parser("run", help="run the crawl and save the dataset")
    run.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    run.add_argument(
        "--scale",
        choices=["small", "medium", "full"],
        default="small",
        help="small: tests-scale; medium: calibration-scale; full: the paper",
    )
    run.add_argument("--days", type=int, default=None, help="override day count")
    run.add_argument("--out", required=True, help="output dataset path (.jsonl[.gz])")
    run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="crawl worker processes (byte-identical to workers=1)",
    )
    run.add_argument(
        "--checkpoint",
        default=None,
        help="round-journal path: a killed run resumes from it "
        "byte-identically (same seed/scale/workers required)",
    )
    run.add_argument(
        "--gateway",
        action="store_true",
        help="route the crawl via the serving gateway",
    )
    run.add_argument(
        "--plan",
        choices=sorted(NAMED_PLANS),
        default=None,
        help="inject a named fault plan during the crawl",
    )
    run.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault schedule (with --plan)",
    )
    run.add_argument(
        "--supervise",
        action="store_true",
        help="run workers under repro.supervise: heartbeat monitoring, "
        "crash/hang recovery, shard reassignment (incompatible with "
        "--checkpoint)",
    )
    run.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a deterministic JSONL trace "
        "(byte-identical for any --workers; incompatible with --checkpoint)",
    )
    run.add_argument(
        "--metrics",
        default=None,
        metavar="PATH",
        help="write the unified metrics snapshot as JSON",
    )
    run.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="write the canonical wide-event log: one JSONL event per "
        "crawl cell, byte-identical for any --workers (composes with "
        "--checkpoint; query with `repro telemetry`)",
    )

    report = sub.add_parser("report", help="print figure tables from a dataset")
    report.add_argument("--dataset", required=True)
    report.add_argument(
        "--figure",
        choices=["2", "3", "4", "5", "6", "7", "8", "all"],
        default="all",
    )

    validate = sub.add_parser("validate", help="run the GPS-vs-IP validation")
    validate.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    validate.add_argument("--machines", type=int, default=50)

    demo = sub.add_parser("demographics", help="demographic-correlation analysis")
    demo.add_argument("--dataset", required=True)
    demo.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)

    charts = sub.add_parser("chart", help="render ASCII charts from a dataset")
    charts.add_argument("--dataset", required=True)
    charts.add_argument("--figure", choices=["2", "5", "8"], default="5")
    charts.add_argument("--granularity", default="county",
                        choices=["county", "state", "national"])

    cross = sub.add_parser(
        "crossengine", help="audit two engines side by side (paper's extension)"
    )
    cross.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)

    carry = sub.add_parser(
        "carryover", help="measure session-history contamination vs wait time"
    )
    carry.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)

    content = sub.add_parser(
        "content", help="content analysis: locality, diversity, advocacy balance"
    )
    content.add_argument("--dataset", required=True)

    export = sub.add_parser("export", help="export figure data as CSV/JSON")
    export.add_argument("--dataset", required=True)
    export.add_argument("--out", required=True, help="output directory")
    export.add_argument("--format", choices=["csv", "json"], default="csv")

    audit = sub.add_parser(
        "audit",
        help="term audits: one-shot, or the continuous audit service",
    )
    audit_sub = audit.add_subparsers(dest="audit_command", required=True)

    audit_terms = audit_sub.add_parser(
        "terms", help="one-shot audit of your own search terms"
    )
    audit_terms.add_argument("terms", nargs="+", help="search terms to audit")
    audit_terms.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    audit_terms.add_argument("--days", type=int, default=2)

    audit_run = audit_sub.add_parser(
        "run-once",
        help="advance the registered audits by N cycles and exit",
    )
    audit_run.add_argument(
        "--store", default=".audit", help="audit store directory"
    )
    audit_run.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    audit_run.add_argument("--cycles", type=int, default=1)
    audit_run.add_argument(
        "--workers", type=int, default=1, help="workers per cycle (byte-identical)"
    )
    audit_run.add_argument(
        "--smoke",
        action="store_true",
        help="CI tier: tiny audit (4 queries, 1 day), seconds of wall clock",
    )
    audit_run.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="write the combined alert ledger as canonical JSONL",
    )

    audit_serve = audit_sub.add_parser(
        "serve", help="run cycles, then serve the HTTP API"
    )
    audit_serve.add_argument(
        "--store", default=".audit", help="audit store directory"
    )
    audit_serve.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    audit_serve.add_argument(
        "--cycles", type=int, default=1, help="cycles to run before serving"
    )
    audit_serve.add_argument("--host", default="127.0.0.1")
    audit_serve.add_argument(
        "--port", type=int, default=0, help="0 lets the OS pick"
    )
    audit_serve.add_argument(
        "--smoke", action="store_true", help="CI tier: tiny audit"
    )
    audit_serve.add_argument(
        "--check",
        action="store_true",
        help="round-trip every API route over HTTP, then exit "
        "(non-zero on any failure)",
    )

    audit_status = audit_sub.add_parser(
        "status", help="summarize the audit stores in a directory"
    )
    audit_status.add_argument(
        "--store", default=".audit", help="audit store directory"
    )

    diff = sub.add_parser("diff", help="compare two collected datasets")
    diff.add_argument("--a", required=True, help="first dataset path")
    diff.add_argument("--b", required=True, help="second dataset path")

    reportcard = sub.add_parser(
        "reportcard", help="generate a one-page markdown audit report"
    )
    reportcard.add_argument("--dataset", required=True)
    reportcard.add_argument("--out", help="write to a file instead of stdout")
    reportcard.add_argument("--title", default="Location-personalization audit")

    schedule = sub.add_parser(
        "schedule", help="analyse crawl-schedule feasibility for a config"
    )
    schedule.add_argument("--machines", type=int, default=44)
    schedule.add_argument("--request-seconds", type=float, default=6.0)

    from repro.serve.routing import ROUTING_POLICIES

    serve = sub.add_parser(
        "serve-bench",
        help="load-test the serving gateway: throughput, cache, admission",
    )
    serve.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    serve.add_argument("--requests", type=int, default=2000)
    serve.add_argument("--clients", type=int, default=200)
    serve.add_argument(
        "--routing", choices=sorted(ROUTING_POLICIES), default="round-robin"
    )
    serve.add_argument(
        "--cache-size", type=int, default=4096, help="SERP-cache entries (0 disables)"
    )
    serve.add_argument("--queue-capacity", type=int, default=32)
    serve.add_argument(
        "--rate", type=float, default=40.0, help="mean arrivals per virtual minute"
    )
    serve.add_argument(
        "--hedge-after",
        type=float,
        default=None,
        help="hedge to a second replica beyond this projected queue wait (virtual minutes)",
    )
    serve.add_argument(
        "--pin-frontend",
        action="store_true",
        help="give every client the same DNS answer (the paper's pinning)",
    )
    serve.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a JSONL trace of the served requests",
    )
    serve.add_argument(
        "--gateways",
        type=int,
        default=0,
        help="fleet mode: sweep 1..N consistent-hash gateways instead of "
        "the single-gateway path (0 keeps the legacy bench)",
    )
    serve.add_argument(
        "--replication",
        type=int,
        default=2,
        help="shard replication factor R in fleet mode",
    )
    serve.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="append a trajectory-v1 entry (e.g. BENCH_serve.json); "
        "implies fleet mode",
    )
    serve.add_argument(
        "--fail-on-regress",
        type=float,
        default=None,
        metavar="PCT",
        help="exit 1 if single-gateway throughput regresses more than PCT%% "
        "against the trajectory baseline (implies fleet mode)",
    )

    chaos_serve = sub.add_parser(
        "chaos-serve",
        help="hurt the gateway fleet under a fault plan and audit the "
        "outcome accounting",
    )
    chaos_serve.add_argument(
        "--plan",
        choices=sorted(NAMED_PLANS),
        default="serve-chaos",
        help="named fault plan (see repro.faults.plan.NAMED_PLANS)",
    )
    chaos_serve.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    chaos_serve.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the serve-fault schedule (independent of the load seed)",
    )
    chaos_serve.add_argument("--gateways", type=int, default=3)
    chaos_serve.add_argument("--replication", type=int, default=2)
    chaos_serve.add_argument("--requests", type=int, default=2000)
    chaos_serve.add_argument(
        "--clients",
        type=int,
        default=1_000_000,
        help="lazy client population size (never materialised)",
    )
    chaos_serve.add_argument(
        "--rate", type=float, default=40.0, help="mean arrivals per virtual minute"
    )
    chaos_serve.add_argument("--cache-size", type=int, default=1024)
    chaos_serve.add_argument("--queue-capacity", type=int, default=32)
    chaos_serve.add_argument(
        "--routing", choices=sorted(ROUTING_POLICIES), default="round-robin"
    )
    chaos_serve.add_argument(
        "--smoke",
        action="store_true",
        help="CI tier: few hundred requests, seconds of wall clock",
    )
    chaos_serve.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="write the accounting ledger as JSON (the CI artifact)",
    )
    chaos_serve.add_argument(
        "--events",
        default=None,
        metavar="PATH",
        help="write the wide-event log: one `serve` event per request "
        "plus `serve.control` transitions (query with `repro telemetry`)",
    )

    chaos = sub.add_parser(
        "chaos",
        help="run the study under a named fault plan and audit recovery",
    )
    chaos.add_argument(
        "--plan",
        choices=sorted(NAMED_PLANS),
        default="chaos",
        help="named fault plan (see repro.faults.plan.NAMED_PLANS)",
    )
    chaos.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    chaos.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the fault schedule (independent of the study seed)",
    )
    chaos.add_argument(
        "--scale", choices=["small", "medium", "full"], default="small"
    )
    chaos.add_argument("--days", type=int, default=None, help="override day count")
    chaos.add_argument("--workers", type=int, default=1)
    chaos.add_argument(
        "--checkpoint", default=None, help="round-journal path (resumable)"
    )
    chaos.add_argument("--out", default=None, help="optional dataset output path")
    chaos.add_argument(
        "--smoke",
        action="store_true",
        help="CI tier: tiny corpus, 1 day, seconds of wall clock",
    )
    chaos.add_argument(
        "--kill-workers",
        action="store_true",
        help="also crash/stall worker processes (adds worker-crash and "
        "worker-stall faults to the plan and runs under repro.supervise; "
        "prints the recovery ledger, fails if any result cell is lost "
        "unaccounted)",
    )
    chaos.add_argument(
        "--crash-rate",
        type=float,
        default=0.15,
        help="per-request worker-crash probability with --kill-workers",
    )
    chaos.add_argument(
        "--stall-rate",
        type=float,
        default=0.0,
        help="per-request worker-stall probability with --kill-workers "
        "(each stall costs a wall-clock detection timeout)",
    )
    chaos.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="write the supervision ledger as JSON (with --kill-workers)",
    )

    fsck = sub.add_parser(
        "fsck",
        help="scan a record log (checkpoint, audit store, event log) for "
        "torn tails and corruption; --repair scavenges",
    )
    fsck.add_argument("path", help="record-log path (rotated segments included)")
    fsck.add_argument(
        "--repair",
        action="store_true",
        help="scavenge intact records byte-for-byte into a recovered file "
        "that atomically replaces each damaged segment",
    )
    fsck.add_argument(
        "--json",
        dest="json_out",
        default=None,
        metavar="PATH",
        help="write the fsck report as JSON (`-` for stdout)",
    )

    disk_chaos = sub.add_parser(
        "disk-chaos",
        help="checkpointed crawl under injected disk faults: crash, "
        "fsck --repair, resume, prove byte parity against a clean run",
    )
    disk_chaos.add_argument(
        "--plan",
        choices=sorted(DISK_NAMED_PLANS),
        default="disk-chaos",
        help="named disk-fault plan (see repro.store.faults.DISK_NAMED_PLANS)",
    )
    disk_chaos.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    disk_chaos.add_argument(
        "--fault-seed",
        type=int,
        default=0,
        help="seed of the disk-fault schedule (independent of the study seed)",
    )
    disk_chaos.add_argument(
        "--scale", choices=["small", "medium", "full"], default="small"
    )
    disk_chaos.add_argument(
        "--days", type=int, default=None, help="override day count"
    )
    disk_chaos.add_argument(
        "--smoke",
        action="store_true",
        help="CI tier: tiny corpus, 1 day, seconds of wall clock",
    )
    disk_chaos.add_argument(
        "--checkpoint",
        default=None,
        help="journal path written under the fault plan "
        "(default: crawl.ckpt in a temp dir)",
    )
    disk_chaos.add_argument(
        "--out",
        default=None,
        help="dataset written by the faulted, resumed run (use a plain "
        ".jsonl path — gzip headers embed timestamps and break `cmp`)",
    )
    disk_chaos.add_argument(
        "--baseline-out",
        default=None,
        help="dataset written by the clean twin run (byte-parity reference)",
    )
    disk_chaos.add_argument(
        "--report",
        default=None,
        metavar="PATH",
        help="write the chaos/fsck report JSON",
    )
    disk_chaos.add_argument(
        "--amplify",
        type=float,
        default=1.0,
        help="multiply every plan rate (capped at 0.9) — the smoke tier "
        "writes so few records that production rates draw no faults",
    )
    disk_chaos.add_argument(
        "--max-crashes",
        type=int,
        default=200,
        help="give up if the run has not completed after this many "
        "simulated crashes",
    )

    crawl_bench = sub.add_parser(
        "crawl-bench",
        help="sweep crawl worker counts, prove byte parity, write BENCH_crawl.json",
    )
    crawl_bench.add_argument("--seed", type=int, default=DEFAULT_STUDY_SEED)
    crawl_bench.add_argument(
        "--workers",
        default=None,
        help="comma-separated worker counts (default: 1,2,4,8)",
    )
    crawl_bench.add_argument(
        "--scale", choices=["standard", "smoke"], default="standard"
    )
    crawl_bench.add_argument(
        "--gateway", action="store_true", help="route the crawl via the gateway"
    )
    crawl_bench.add_argument("--out", default="BENCH_crawl.json")
    crawl_bench.add_argument(
        "--smoke",
        action="store_true",
        help="CI tier: smoke scale, workers 1,2, parity enforced",
    )
    crawl_bench.add_argument(
        "--profile",
        action="store_true",
        help="also print a cProfile top-20 cumulative table of the sequential run",
    )
    crawl_bench.add_argument(
        "--repeats",
        type=int,
        default=None,
        help="repeats per cell, interleaved (default 5); wall = min, "
        "median alongside",
    )
    crawl_bench.add_argument(
        "--fail-on-regress",
        type=float,
        default=None,
        metavar="PCT",
        help="exit non-zero if workers=1 throughput drops more than PCT%% "
        "below the latest comparable BENCH_crawl.json entry",
    )

    trace = sub.add_parser(
        "trace", help="validate, profile, or export a deterministic trace"
    )
    trace.add_argument("path", help="trace file written by run --trace")
    trace.add_argument(
        "--check",
        action="store_true",
        help="structural validation; non-zero exit on problems",
    )
    trace.add_argument(
        "--chrome",
        default=None,
        metavar="OUT",
        help="export Chrome trace_event JSON (chrome://tracing, Perfetto)",
    )
    trace.add_argument(
        "--top",
        type=int,
        default=10,
        help="top-N span names in the profile report",
    )
    trace.add_argument(
        "--folded",
        default=None,
        metavar="OUT",
        help="export folded stacks (flamegraph.pl / speedscope import)",
    )
    trace.add_argument(
        "--speedscope",
        default=None,
        metavar="OUT",
        help="export a speedscope.app profile (one row per crawl location)",
    )

    metrics = sub.add_parser(
        "metrics", help="render a metrics snapshot written by run --metrics"
    )
    metrics.add_argument("path", help="metrics snapshot JSON")
    metrics.add_argument(
        "--format",
        choices=["table", "prom"],
        default="table",
        help="table: aligned names; prom: Prometheus text exposition",
    )
    metrics.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write the rendered output to a file instead of stdout",
    )

    telemetry = sub.add_parser(
        "telemetry",
        help="query a wide-event log: rollups, burn-rate SLOs, HTML report",
    )
    telemetry.add_argument(
        "path", help="wide-event JSONL log (run --events / chaos-serve --events)"
    )
    telemetry.add_argument(
        "--html",
        default=None,
        metavar="OUT",
        help="write the self-contained HTML telemetry report",
    )
    telemetry_sub = telemetry.add_subparsers(dest="telemetry_command")
    tel_query = telemetry_sub.add_parser(
        "query", help="print matching events as JSON lines"
    )
    tel_rollup = telemetry_sub.add_parser(
        "rollup", help="group events by dimensions into deterministic cells"
    )
    tel_rollup.add_argument(
        "--by",
        required=True,
        metavar="DIMS",
        help="comma-separated dimension names, e.g. outcome or rung,cache",
    )
    tel_rollup.add_argument(
        "--value",
        default=None,
        metavar="FIELD",
        help="numeric field to aggregate per cell (sum/mean/max), "
        "e.g. latency",
    )
    tel_slo = telemetry_sub.add_parser(
        "slo", help="evaluate burn-rate SLOs and print the alert ledger"
    )
    tel_slo.add_argument(
        "--check",
        action="store_true",
        help="exit non-zero on SLO violations, still-firing alerts, or "
        "brownout accounting mismatches",
    )
    tel_slo.add_argument(
        "--ledger",
        default=None,
        metavar="PATH",
        help="write the deterministic alert ledger as JSON",
    )
    for tel in (tel_query, tel_rollup, tel_slo):
        # Accept --html after the subcommand too; SUPPRESS keeps the
        # parent parser's value when the subcommand omits it.
        tel.add_argument(
            "--html",
            default=argparse.SUPPRESS,
            metavar="OUT",
            help=argparse.SUPPRESS,
        )
    for tel in (tel_query, tel_rollup):
        tel.add_argument(
            "--stream",
            default=None,
            help="restrict to one stream (crawl, serve, serve.control, "
            "gateway, audit)",
        )
        tel.add_argument(
            "--where",
            action="append",
            default=[],
            metavar="DIM=VALUE",
            help="dimension equality filter, repeatable "
            "(e.g. --where outcome=shed --where day=1)",
        )
    tel_query.add_argument(
        "--limit", type=int, default=None, help="print at most N events"
    )
    return parser


def _config_for_scale(scale: str, seed: int, days: Optional[int]) -> StudyConfig:
    if scale == "small":
        config = StudyConfig.small(seed=seed)
    elif scale == "medium":
        from repro.queries.corpus import build_corpus
        from repro.queries.model import QueryCategory

        corpus = build_corpus()
        queries = (
            corpus.by_category(QueryCategory.LOCAL)
            + corpus.by_category(QueryCategory.CONTROVERSIAL)[:25]
            + corpus.by_category(QueryCategory.POLITICIAN)[:25]
        )
        config = StudyConfig.small(
            queries, seed=seed, days=2, locations_per_granularity=8
        )
    else:
        config = StudyConfig(seed=seed)
    if days is not None:
        config = config.with_overrides(days=days)
    return config


def _cmd_run(args) -> int:
    config = _config_for_scale(args.scale, args.seed, args.days)
    overrides = {}
    if args.gateway:
        overrides["route_via_gateway"] = True
    if args.plan:
        from repro.faults.plan import FaultPlan

        overrides["fault_plan"] = FaultPlan.named(args.plan, seed=args.fault_seed)
    if overrides:
        config = config.with_overrides(**overrides)
    study = Study(config)
    print(
        f"running {args.scale} study: {len(config.queries)} queries, "
        f"{study.locations.total()} locations, {config.days} days, "
        f"{args.workers} worker(s) ...",
        file=sys.stderr,
    )
    dataset = study.run(
        workers=args.workers,
        checkpoint=args.checkpoint,
        trace=args.trace,
        events=args.events,
        supervise=args.supervise,
    )
    dataset.save(args.out)
    if args.supervise and study.supervisor is not None:
        print(study.supervisor.render(limit=10), file=sys.stderr)
    print(
        f"collected {len(dataset)} pages ({len(study.failures)} failures) -> {args.out}",
        file=sys.stderr,
    )
    if study.stats.failures_by_kind:
        breakdown = ", ".join(
            f"{kind}={count}"
            for kind, count in sorted(study.stats.failures_by_kind.items())
        )
        print(f"failures by kind: {breakdown}", file=sys.stderr)
    if study.gateway is not None:
        stats = study.gateway.stats
        print(
            f"gateway: degraded(stale)={stats.degraded_served} "
            f"rejected={stats.rejected} rate-limited={stats.rate_limited}",
            file=sys.stderr,
        )
    if args.trace:
        print(f"trace -> {args.trace}", file=sys.stderr)
    if args.events:
        print(f"events -> {args.events}", file=sys.stderr)
    if args.metrics:
        import json

        snapshot = study.metrics_registry().snapshot()
        with open(args.metrics, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"metrics -> {args.metrics}", file=sys.stderr)
    return 0


def _cmd_report(args) -> int:
    dataset = SerpDataset.load(args.dataset)
    report = StudyReport(dataset)
    sections = []
    wanted = args.figure
    if wanted in ("2", "all"):
        sections.append(report.render_fig2())
    if wanted in ("3", "all"):
        sections.append(report.render_fig3())
    if wanted in ("4", "all"):
        sections.append(report.render_fig4())
    if wanted in ("5", "all"):
        sections.append(report.render_fig5())
    if wanted in ("6", "all"):
        sections.append(report.render_fig6())
    if wanted in ("7", "all"):
        sections.append(report.render_fig7())
    if wanted in ("8", "all"):
        for granularity in report.granularities():
            sections.append(report.render_fig8(granularity))
    print("\n\n".join(sections))
    return 0


def _cmd_validate(args) -> int:
    result = run_gps_validation(args.seed, machine_count=args.machines)
    print(
        f"machines={result.machine_count} queries={result.query_count}\n"
        f"identical pages:   {result.identical_page_fraction:.1%}\n"
        f"result agreement:  {result.result_agreement.mean:.1%} "
        f"(paper: ~94% of results identical)\n"
        f"pairwise Jaccard:  {result.pairwise_jaccard.mean:.3f}"
    )
    return 0


def _cmd_demographics(args) -> int:
    from repro.geo.granularity import all_known_regions

    dataset = SerpDataset.load(args.dataset)
    analysis = DemographicsAnalysis(dataset, all_known_regions(), seed=args.seed)
    print("feature correlations with county-level result similarity:")
    for correlation in analysis.all_feature_correlations():
        flag = " *" if correlation.significant else ""
        print(
            f"  {correlation.feature:28s} r={correlation.pearson_r:+.3f} "
            f"rho={correlation.spearman_rho:+.3f} p={correlation.p_value:.3f}{flag}"
        )
    distance = analysis.distance_correlation()
    print(
        f"  {distance.feature:28s} r={distance.pearson_r:+.3f} "
        f"rho={distance.spearman_rho:+.3f} p={distance.p_value:.3f}"
    )
    return 0


def _cmd_chart(args) -> int:
    dataset = SerpDataset.load(args.dataset)
    report = StudyReport(dataset)
    if args.figure == "2":
        print(report.render_fig2_chart())
    elif args.figure == "5":
        print(report.render_fig5_chart())
    else:
        print(report.render_fig8_chart(args.granularity))
    return 0


def _cmd_crossengine(args) -> int:
    from repro.core.crossengine import compare_engines
    from repro.queries.corpus import build_corpus
    from repro.queries.model import QueryCategory

    corpus = build_corpus()
    local = corpus.by_category(QueryCategory.LOCAL)
    queries = (
        [q for q in local if not q.is_brand][:8]
        + [q for q in local if q.is_brand][:3]
        + corpus.by_category(QueryCategory.CONTROVERSIAL)[:5]
        + corpus.by_category(QueryCategory.POLITICIAN)[:5]
    )
    config = StudyConfig.small(
        queries, seed=args.seed, days=1, locations_per_granularity=6
    )
    print(compare_engines(config).render())
    return 0


def _cmd_carryover(args) -> int:
    from repro.core.carryover import run_carryover_experiment

    print(run_carryover_experiment(args.seed).render())
    return 0


def _cmd_content(args) -> int:
    from repro.core.content import ContentAnalysis

    dataset = SerpDataset.load(args.dataset)
    analysis = ContentAnalysis(dataset)
    print("content analysis")
    for category in dataset.categories():
        locality = analysis.locality_share(category)
        entropy = analysis.source_entropy(category)
        print(
            f"  {category:13s} locality {locality.mean:.3f} ± {locality.std:.3f}   "
            f"source entropy {entropy.mean:.2f} bits"
        )
    print("\nsource mix (local queries):")
    for source_type, share in analysis.source_mix("local").items():
        print(f"  {source_type.value:14s} {share:.1%}")
    try:
        spread = analysis.advocacy_balance_spread("national")
        print(
            f"\nadvocacy-balance spread across national locations: {spread:.3f} "
            "(0 = no geolocal slant)"
        )
    except ValueError:
        print("\nno advocacy results collected (no controversial queries?)")
    return 0


def _cmd_export(args) -> int:
    from repro.core.export import export_all

    dataset = SerpDataset.load(args.dataset)
    written = export_all(StudyReport(dataset), args.out, fmt=args.format)
    for path in written:
        print(path)
    return 0


def _cmd_audit_terms(args) -> int:
    from repro.core.audit import audit_queries

    report = audit_queries(args.terms, seed=args.seed, days=args.days)
    print(report.render())
    return 0


def _audit_service(args):
    """Build the service for ``audit run-once`` / ``audit serve``.

    ``--smoke`` registers the tiny CI audit; otherwise a small-scale
    ``local`` audit (the full default corpus at test-scale geography)
    with an unbounded cycle budget.
    """
    from repro.audit import AuditService, AuditSpec, build_smoke_service

    workers = getattr(args, "workers", 1)
    if args.smoke:
        return build_smoke_service(
            args.store, seed=args.seed, cycles=args.cycles, workers=workers
        )
    service = AuditService(args.store)
    service.register(
        AuditSpec(
            name="local",
            config=StudyConfig.small(seed=args.seed),
            workers=workers,
        )
    )
    return service


def _cmd_audit_run_once(args) -> int:
    service = _audit_service(args)
    try:
        outcomes = service.run_once(cycles=args.cycles)
        for outcome in outcomes:
            print(
                f"{outcome.audit} cycle {outcome.cycle}: "
                f"{outcome.result['pages']} pages, "
                f"{outcome.result['pairs']} pairs, "
                f"{len(outcome.alerts)} alert(s)",
                file=sys.stderr,
            )
        print(service.render_status())
        if args.ledger:
            ledger = b"".join(
                service._scheduler.audits[name].store.alert_ledger_bytes()
                for name in sorted(service._scheduler.audits)
            )
            with open(args.ledger, "wb") as handle:
                handle.write(ledger)
            print(f"alert ledger -> {args.ledger}", file=sys.stderr)
    finally:
        service.close()
    return 0


def _cmd_audit_serve(args) -> int:
    from repro.audit import AuditAPIServer

    service = _audit_service(args)
    try:
        if args.cycles:
            service.run_once(cycles=args.cycles)
        server = AuditAPIServer(service, host=args.host, port=args.port).start()
        try:
            print(f"audit API on {server.url}", file=sys.stderr)
            if args.check:
                import urllib.request

                paths = ["/healthz", "/audits", "/metrics"]
                for name in sorted(service.status()["audits"]):
                    paths += [
                        f"/audits/{name}",
                        f"/audits/{name}/series",
                        f"/audits/{name}/alerts",
                    ]
                for path in paths:
                    with urllib.request.urlopen(server.url + path, timeout=30) as resp:
                        body = resp.read()
                        if resp.status != 200:
                            print(
                                f"GET {path} -> {resp.status}", file=sys.stderr
                            )
                            return 1
                        print(f"GET {path} -> 200 ({len(body)} bytes)")
                return 0
            try:  # pragma: no cover - interactive serve loop
                import threading

                threading.Event().wait()
            except KeyboardInterrupt:
                pass
            return 0
        finally:
            server.close()
    finally:
        service.close()


def _cmd_audit_status(args) -> int:
    import glob
    import os

    from repro.audit.store import AuditStore, AuditStoreError

    paths = sorted(glob.glob(os.path.join(args.store, "*.audit.jsonl")))
    if not paths:
        print(f"no audit stores under {args.store}")
        return 0
    for path in paths:
        try:
            header, cycles = AuditStore.read(path)
        except AuditStoreError as error:
            print(f"{path}: UNREADABLE ({error})", file=sys.stderr)
            continue
        alerts = sum(len(cycle["alerts"]) for cycle in cycles)
        print(
            f"{header['audit']}: {len(cycles)} cycle(s), "
            f"{alerts} alert(s) -> {path}"
        )
    return 0


_AUDIT_HANDLERS = {
    "terms": _cmd_audit_terms,
    "run-once": _cmd_audit_run_once,
    "serve": _cmd_audit_serve,
    "status": _cmd_audit_status,
}


def _cmd_audit(args) -> int:
    return _AUDIT_HANDLERS[args.audit_command](args)


def _cmd_diff(args) -> int:
    from repro.core.diff import diff_datasets

    diff = diff_datasets(SerpDataset.load(args.a), SerpDataset.load(args.b))
    print(diff.render())
    return 0


def _cmd_reportcard(args) -> int:
    from repro.core.reportcard import generate_markdown

    dataset = SerpDataset.load(args.dataset)
    text = generate_markdown(dataset, title=args.title)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(text, encoding="utf-8")
        print(f"wrote {args.out}", file=sys.stderr)
    else:
        print(text)
    return 0


def _cmd_serve_bench(args) -> int:
    fleet_mode = (
        args.gateways > 0
        or args.out is not None
        or args.fail_on_regress is not None
    )
    if fleet_mode:
        return _serve_bench_fleet(args)
    from repro.engine.datacenters import DatacenterCluster
    from repro.net.geoip import GeoIPDatabase
    from repro.queries.corpus import build_corpus
    from repro.seeding import derive_seed
    from repro.serve import (
        ClientPopulation,
        Gateway,
        LoadGenerator,
        build_replicas,
        run_load,
    )
    from repro.web.world import WebWorld

    corpus = build_corpus()
    world = WebWorld(derive_seed(args.seed, "world"))
    cluster = DatacenterCluster()
    geoip = GeoIPDatabase()
    population = ClientPopulation.generate(
        args.seed, args.clients, cluster, pin_frontend=args.pin_frontend
    )
    population.register(geoip)
    replicas = build_replicas(
        world,
        cluster,
        geoip,
        corpus=corpus,
        seed=derive_seed(args.seed, "engine"),
        queue_capacity=args.queue_capacity,
    )
    gateway = Gateway(
        replicas,
        geoip,
        policy=args.routing,
        cache_size=args.cache_size,
        hedge_after_minutes=args.hedge_after,
    )
    loadgen = LoadGenerator(
        list(corpus), population, args.seed, rate_per_minute=args.rate
    )
    builder = None
    if args.trace:
        from repro.obs.exporters import TraceBuilder
        from repro.obs.trace import Tracer, trace_id_for

        bench_meta = {
            "bench": "serve",
            "seed": args.seed,
            "requests": args.requests,
            "clients": args.clients,
            "routing": args.routing,
            "cache_size": args.cache_size,
        }
        trace_id = trace_id_for(bench_meta)
        gateway.tracer = Tracer()
        gateway.tracer.enable(trace_id)
        builder = TraceBuilder(args.trace, trace_id=trace_id, meta=bench_meta)
    print(
        f"serve-bench: {args.requests} requests, {args.clients} clients, "
        f"{len(replicas)} replicas, routing={args.routing}, "
        f"cache={args.cache_size}",
        file=sys.stderr,
    )
    print(run_load(gateway, loadgen, args.requests).render())
    if builder is not None:
        builder.add_trees(gateway.tracer.drain())
        builder.close()
        gateway.tracer.disable()
        print(f"trace -> {args.trace}", file=sys.stderr)
    return 0


def _serve_bench_fleet(args) -> int:
    """Fleet-mode serve bench: sweep sizes, trajectory, regression gate."""
    from repro.serve.bench import (
        load_trajectory,
        run_serve_bench,
        serve_regression_message,
    )

    sizes = (1,) if args.gateways <= 1 else (1, args.gateways)
    history = []
    if args.fail_on_regress is not None and args.out:
        history = load_trajectory(args.out)
    print(
        f"serve-bench (fleet): sizes={list(sizes)} R={args.replication}, "
        f"{args.requests} requests over {args.clients} lazy clients",
        file=sys.stderr,
    )
    report = run_serve_bench(
        fleet_sizes=sizes,
        replication=args.replication,
        requests=args.requests,
        clients=args.clients,
        rate_per_minute=args.rate,
        routing=args.routing,
        cache_size=args.cache_size,
        queue_capacity=args.queue_capacity,
        seed=args.seed,
        out=args.out,
    )
    print(report.render())
    if args.out:
        print(f"trajectory -> {args.out}", file=sys.stderr)
    if args.fail_on_regress is not None:
        message = serve_regression_message(
            report, history, threshold_pct=args.fail_on_regress
        )
        if message:
            print(message, file=sys.stderr)
            return 1
        print(
            f"no regression beyond {args.fail_on_regress:.0f}% "
            f"({len(history)} baseline entries checked)",
            file=sys.stderr,
        )
    return 0


def _cmd_chaos_serve(args) -> int:
    from repro.engine.datacenters import DatacenterCluster
    from repro.faults.plan import FaultPlan
    from repro.queries.corpus import build_corpus
    from repro.seeding import derive_seed
    from repro.serve import (
        LazyClientPopulation,
        LoadGenerator,
        ServeChaos,
        build_fleet,
    )
    from repro.web.world import WebWorld

    requests = min(args.requests, 400) if args.smoke else args.requests
    gateways = min(args.gateways, 3) if args.smoke else args.gateways
    plan = FaultPlan.named(args.plan, seed=args.fault_seed)
    if not plan.has_serve_faults:
        print(
            f"plan {args.plan!r} has no serve-side faults; the run will "
            "exercise the happy path only",
            file=sys.stderr,
        )
    corpus = build_corpus()
    world = WebWorld(derive_seed(args.seed, "world"))
    cluster = DatacenterCluster()
    population = LazyClientPopulation(args.seed, args.clients, cluster)
    fleet = build_fleet(
        world,
        cluster,
        population.geoip_view(),
        count=gateways,
        corpus=corpus,
        seed=derive_seed(args.seed, "engine"),
        queue_capacity=args.queue_capacity,
        cache_size=args.cache_size,
        policy=args.routing,
        replication=args.replication,
        plan=plan,
    )
    loadgen = LoadGenerator(
        list(corpus), population, args.seed, rate_per_minute=args.rate
    )
    print(
        f"chaos-serve: plan={args.plan} (fault seed {args.fault_seed}, "
        f"~{plan.serve_fault_rate:.1%} of requests fault a shard), "
        f"{gateways} gateways R={args.replication}, {requests} requests "
        f"over {args.clients} lazy clients ...",
        file=sys.stderr,
    )
    report = ServeChaos(fleet, loadgen).run(requests, events=args.events)
    print(report.render())
    if args.events:
        print(f"events -> {args.events}", file=sys.stderr)
    if args.ledger:
        import json

        with open(args.ledger, "w", encoding="utf-8") as handle:
            json.dump(report.to_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"ledger -> {args.ledger}", file=sys.stderr)
    if report.unaccounted() != 0:
        print(
            f"ACCOUNTING VIOLATION: {report.unaccounted()} of "
            f"{report.offered} requests unaccounted for",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_chaos(args) -> int:
    from repro.core.comparisons import per_location_coverage
    from repro.faults.plan import FaultPlan

    plan = FaultPlan.named(args.plan, seed=args.fault_seed)
    if args.kill_workers:
        import dataclasses

        if args.checkpoint:
            print(
                "--kill-workers keeps shard snapshots in memory and cannot "
                "be combined with --checkpoint",
                file=sys.stderr,
            )
            return 2
        plan = dataclasses.replace(
            plan,
            worker_crash_rate=args.crash_rate,
            worker_stall_rate=args.stall_rate,
        )
    if args.smoke:
        from repro.queries.corpus import build_corpus

        config = StudyConfig.small(
            list(build_corpus())[:4],
            seed=args.seed,
            days=1,
            locations_per_granularity=2,
        )
    else:
        config = _config_for_scale(args.scale, args.seed, args.days)
    config = config.with_overrides(fault_plan=plan)
    study = Study(config)
    print(
        f"chaos run: plan={args.plan} (fault seed {args.fault_seed}, "
        f"~{plan.request_fault_rate:.1%} of requests faulted), "
        f"{len(config.queries)} queries, {study.locations.total()} locations, "
        f"{config.days} day(s), {args.workers} worker(s) ...",
        file=sys.stderr,
    )
    if args.kill_workers:
        from repro.supervise import SupervisorPolicy

        # Tight stall policy: chaos runs are short, so missed-deadline
        # detection must not sit behind the production 120 s watchdog.
        policy = SupervisorPolicy(
            stall_timeout_seconds=20.0,
            stall_grace_seconds=1.0,
            stall_rounds=1,
        )
        from repro.parallel import run_parallel

        dataset = run_parallel(
            study, workers=args.workers, supervise=True, policy=policy
        )
    else:
        dataset = study.run(workers=args.workers, checkpoint=args.checkpoint)
    if args.out:
        dataset.save(args.out)
        print(f"dataset -> {args.out}", file=sys.stderr)

    stats, fault_stats = study.stats, study.fault_stats
    print(f"collected {len(dataset)} pages, {len(study.failures)} queries lost")
    print(
        f"requests={stats.requests} retries={stats.retries} "
        f"crashes={stats.crashes} (restarts absorbed) "
        f"breaker-fastfails={stats.breaker_fastfails}"
    )
    print("\nfault ledger (injected = recovered + lost):")
    kinds = sorted(
        set(fault_stats.injected) | set(fault_stats.absorbed) | set(fault_stats.terminal)
    )
    for kind in kinds:
        print(
            f"  {kind:18s} injected={fault_stats.injected.get(kind, 0):<6d} "
            f"recovered={fault_stats.absorbed.get(kind, 0):<6d} "
            f"lost={fault_stats.terminal.get(kind, 0):<6d}"
        )
    unaccounted = fault_stats.unaccounted()

    from repro.obs.metrics import Histogram

    print("\nretry histogram (attempts per delivered query):")
    print(
        Histogram.from_counts(fault_stats.retry_histogram).render(
            indent="  ", unit="attempt(s)"
        )
    )

    transitions = study.breakers.transitions() if study.breakers else []
    print(f"\nbreaker transitions: {len(transitions)}")
    for transition in transitions[-10:]:
        print(
            f"  t={transition.minutes:9.2f}  {transition.key:18s} "
            f"{transition.old.value} -> {transition.new.value}"
        )

    coverage = per_location_coverage(dataset, study.failures)
    incomplete = sorted(
        (slot for slot in coverage.values() if slot.lost),
        key=lambda slot: slot.coverage,
    )
    print(f"\nlocation coverage: {len(coverage) - len(incomplete)}/{len(coverage)} complete")
    for slot in incomplete[:10]:
        worst = max(slot.lost_by_kind, key=slot.lost_by_kind.get)
        print(
            f"  {slot.location_name:28s} {slot.coverage:7.1%} "
            f"({slot.lost} lost, mostly {worst})"
        )

    status = 0
    if unaccounted:
        print(f"\nACCOUNTING FAILURE: unaccounted faults {unaccounted}", file=sys.stderr)
        status = 1
    else:
        print("\nall injected faults accounted for")

    if args.kill_workers:
        report = study.supervisor
        print()
        print(report.render(limit=15))
        expected = study.round_count() * len(study.treatments)
        got = len(dataset) + len(study.failures)
        if got != expected:
            print(
                f"\nACCOUNTING FAILURE: {got} result cells "
                f"(collected + failed) != {expected} scheduled",
                file=sys.stderr,
            )
            status = 1
        else:
            print(
                f"every scheduled cell accounted for: {len(dataset)} collected "
                f"+ {len(study.failures)} failed = {expected}"
            )
        if args.ledger:
            import json

            ledger = {
                "plan": args.plan,
                "workers": args.workers,
                "expected_cells": expected,
                "collected": len(dataset),
                "failed": len(study.failures),
                "accounted": got == expected,
                "supervision": report.to_dict(),
            }
            with open(args.ledger, "w", encoding="utf-8") as handle:
                json.dump(ledger, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"ledger -> {args.ledger}", file=sys.stderr)
    return status


def _cmd_fsck(args) -> int:
    import json

    from repro.store import fsck_path

    report = fsck_path(args.path, repair=args.repair)
    if not report.segments:
        print(f"{args.path}: no such file", file=sys.stderr)
        return 2
    for segment in report.segments:
        if segment.corrupt:
            verdict = "repaired" if segment.repaired else "CORRUPT"
        elif segment.torn is not None:
            verdict = "repaired (torn tail)" if segment.repaired else "torn tail"
        else:
            verdict = "clean"
        legacy = (
            f", {segment.legacy_records} legacy" if segment.legacy_records else ""
        )
        print(
            f"{segment.segment}: {verdict} — {segment.records} record(s), "
            f"{segment.size} byte(s){legacy}"
        )
        for region in segment.corrupt:
            print(
                f"  corrupt after record {region['record_index']} at byte "
                f"{region['offset']} ({region['bytes']} byte(s)): "
                f"{region['reason']}"
            )
        if segment.torn is not None:
            print(
                f"  truncated: true — durable prefix ends at byte "
                f"{segment.durable_end}"
            )
        if segment.repaired:
            print(
                f"  scavenged {segment.scavenged_records} record(s), dropped "
                f"{segment.dropped_bytes} byte(s)"
            )
    if report.exit_code:
        print(
            f"{report.path}: {report.corrupt_records} corrupt record(s) left "
            "in place (run with --repair to scavenge)",
            file=sys.stderr,
        )
    elif report.repaired:
        print(f"{report.path}: repaired; log is clean")
    else:
        print(f"{report.path}: ok ({report.records} record(s))")
    if args.json_out:
        payload = json.dumps(report.to_dict(), indent=2, sort_keys=True)
        if args.json_out == "-":
            print(payload)
        else:
            with open(args.json_out, "w", encoding="utf-8") as handle:
                handle.write(payload + "\n")
            print(f"report -> {args.json_out}", file=sys.stderr)
    return report.exit_code


def _cmd_disk_chaos(args) -> int:
    import json
    import os
    import tempfile

    from repro.faults.checkpoint import CheckpointError
    from repro.store import (
        REAL_OPS,
        STORE_STATS,
        DiskFault,
        DiskFaultPlan,
        FaultyFileOps,
        StoreCorruption,
        fsck_path,
        use_fileops,
    )

    plan = DiskFaultPlan.named(args.plan, seed=args.fault_seed)
    if args.amplify != 1.0:
        import dataclasses

        plan = dataclasses.replace(
            plan,
            **{
                spec.name: min(getattr(plan, spec.name) * args.amplify, 0.9)
                for spec in dataclasses.fields(plan)
                if spec.name.endswith("_rate")
            },
        )
    if args.smoke:
        from repro.queries.corpus import build_corpus

        config = StudyConfig.small(
            list(build_corpus())[:4],
            seed=args.seed,
            days=1,
            locations_per_granularity=2,
        )
    else:
        config = _config_for_scale(args.scale, args.seed, args.days)

    workdir = None
    if not (args.checkpoint and args.out and args.baseline_out):
        workdir = tempfile.mkdtemp(prefix="repro-disk-chaos-")
    checkpoint = args.checkpoint or os.path.join(workdir, "crawl.ckpt")
    out = args.out or os.path.join(workdir, "faulted.jsonl")
    baseline_out = args.baseline_out or os.path.join(workdir, "baseline.jsonl")

    print(
        f"disk-chaos: plan={args.plan} (fault seed {args.fault_seed}), "
        f"{len(config.queries)} queries, {config.days} day(s), "
        f"checkpoint={checkpoint}",
        file=sys.stderr,
    )

    # The parity reference: the same study on a healthy disk.
    baseline = Study(config).run()
    baseline.save(baseline_out)

    STORE_STATS.reset()
    ops = FaultyFileOps(plan)
    crash_log = []
    dataset = None
    while dataset is None:
        study = Study(config)
        try:
            with use_fileops(ops):
                dataset = study.run(checkpoint=checkpoint)
        except DiskFault as fault:
            ops.simulate_crash()
            entry = {
                "crash": ops.stats.crashes,
                "fault": fault.kind.value,
                "file": os.path.basename(fault.path),
            }
            detail = ""
            # Recovery always runs on a healthy disk: real file ops,
            # outside the fault seam.
            if os.path.exists(checkpoint):
                repair = fsck_path(checkpoint, repair=True, ops=REAL_OPS)
                entry["fsck"] = {
                    "repaired": repair.repaired,
                    "corrupt_records": repair.corrupt_records,
                    "torn_segments": repair.torn_segments,
                }
                if repair.repaired:
                    detail = (
                        f"; fsck scavenged {repair.corrupt_records} corrupt, "
                        f"{repair.torn_segments} torn segment(s)"
                    )
            crash_log.append(entry)
            print(
                f"  crash {ops.stats.crashes}: {fault.kind.value}{detail}",
                file=sys.stderr,
            )
        except (CheckpointError, StoreCorruption) as error:
            # A crash can leave a journal with no durable header (or a
            # scavenge can drop it): start the journal over.
            crash_log.append({"crash": ops.stats.crashes, "reset": str(error)})
            print(f"  journal unusable ({error}); starting fresh", file=sys.stderr)
            if os.path.exists(checkpoint):
                os.remove(checkpoint)
        if dataset is None and ops.stats.crashes >= args.max_crashes:
            print(
                f"gave up after {ops.stats.crashes} simulated crashes",
                file=sys.stderr,
            )
            return 1

    # Final verdict: repair anything a silent fault left behind, then
    # the log must scan clean.
    fsck_path(checkpoint, repair=True, ops=REAL_OPS)
    final = fsck_path(checkpoint, ops=REAL_OPS)
    dataset.save(out)
    with open(out, "rb") as handle:
        faulted_bytes = handle.read()
    with open(baseline_out, "rb") as handle:
        baseline_bytes = handle.read()
    parity = faulted_bytes == baseline_bytes

    injected = ", ".join(
        f"{kind}={count}" for kind, count in sorted(ops.stats.injected.items())
    )
    print(
        f"\nsurvived {ops.stats.crashes} crash(es); "
        f"injected: {injected or 'none'}"
    )
    print(
        f"recovery: {STORE_STATS.torn_tails_recovered} torn tail(s) scavenged, "
        f"{STORE_STATS.corrupt_records_detected} corrupt record(s) detected, "
        f"{STORE_STATS.repairs} repair(s)"
    )
    status = 0
    if final.exit_code != 0:
        print(
            "FSCK FAILURE: corruption remains after repair", file=sys.stderr
        )
        status = 1
    else:
        print("fsck: clean after repair (exit 0)")
    if not parity:
        print(
            "PARITY FAILURE: faulted run's dataset differs from the clean run",
            file=sys.stderr,
        )
        status = 1
    else:
        print(
            f"byte parity: faulted dataset == clean dataset "
            f"({len(dataset)} records)"
        )
    if args.report:
        payload = {
            "plan": args.plan,
            "fault_seed": args.fault_seed,
            "seed": args.seed,
            "checkpoint": checkpoint,
            "records": len(dataset),
            "crashes": ops.stats.crashes,
            "injected": dict(sorted(ops.stats.injected.items())),
            "crash_log": crash_log,
            "store_stats": STORE_STATS.as_dict(),
            "final_fsck": final.to_dict(),
            "parity": parity,
            "status": status,
        }
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"report -> {args.report}", file=sys.stderr)
    return status


def _cmd_crawl_bench(args) -> int:
    from repro.parallel.bench import (
        DEFAULT_REPEATS,
        DEFAULT_WORKER_COUNTS,
        SMOKE_WORKER_COUNTS,
        load_trajectory,
        profile_sequential,
        regression_message,
        run_crawl_bench,
    )

    if args.smoke:
        scale, counts = "smoke", SMOKE_WORKER_COUNTS
    else:
        scale = args.scale
        counts = (
            tuple(int(part) for part in args.workers.split(",") if part)
            if args.workers
            else DEFAULT_WORKER_COUNTS
        )
    repeats = args.repeats if args.repeats is not None else DEFAULT_REPEATS
    print(
        f"crawl-bench: scale={scale}, workers={list(counts)}, "
        f"gateway={args.gateway}, repeats={repeats} ...",
        file=sys.stderr,
    )
    history = load_trajectory(args.out)
    report = run_crawl_bench(
        worker_counts=counts,
        scale=scale,
        seed=args.seed,
        route_via_gateway=args.gateway,
        out=args.out,
        repeats=repeats,
    )
    print(report.render())
    print(f"appended to {args.out}", file=sys.stderr)
    if args.profile:
        print()
        print(
            profile_sequential(
                scale=scale, seed=args.seed, route_via_gateway=args.gateway
            )
        )
    if not report.parity_ok:
        print(
            "PARITY FAILURE: parallel dataset differs from sequential",
            file=sys.stderr,
        )
        return 1
    if args.fail_on_regress is not None:
        message = regression_message(
            report, history, threshold_pct=args.fail_on_regress
        )
        if message is not None:
            print(message, file=sys.stderr)
            return 1
    return 0


def _cmd_schedule(args) -> int:
    from repro.core.schedule import simulate_crawl_schedule

    config = StudyConfig().with_overrides(machine_count=args.machines)
    print(
        simulate_crawl_schedule(
            config, request_duration_seconds=args.request_seconds
        ).render()
    )
    return 0


def _cmd_trace(args) -> int:
    from repro.obs.exporters import (
        read_trace,
        validate_trace,
        write_chrome_trace,
        write_speedscope,
    )
    from repro.obs.profile import profile_trace, write_folded

    acted = False
    if args.check:
        problems = validate_trace(args.path)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        header, spans, summary = read_trace(args.path)
        print(
            f"{args.path}: ok (trace {header['trace_id']}, "
            f"{summary['rounds']} round(s), {summary['spans']} spans)"
        )
        acted = True
    if args.chrome:
        write_chrome_trace(args.path, args.chrome)
        print(f"chrome trace -> {args.chrome}", file=sys.stderr)
        acted = True
    if args.folded:
        write_folded(args.path, args.folded)
        print(f"folded stacks -> {args.folded}", file=sys.stderr)
        acted = True
    if args.speedscope:
        write_speedscope(args.path, args.speedscope)
        print(f"speedscope profile -> {args.speedscope}", file=sys.stderr)
        acted = True
    if not acted:
        print(profile_trace(args.path).render(top=args.top))
    return 0


def _cmd_metrics(args) -> int:
    import json

    from repro.obs.metrics import render_prometheus, render_table

    with open(args.path, "r", encoding="utf-8") as handle:
        snapshot = json.load(handle)
    if args.format == "prom":
        rendered = render_prometheus(snapshot)
    else:
        rendered = render_table(snapshot)
    if args.out:
        with open(args.out, "w", encoding="utf-8") as handle:
            handle.write(rendered + "\n")
        print(f"metrics -> {args.out}", file=sys.stderr)
    else:
        print(rendered)
    return 0


def _parse_where(pairs) -> dict:
    where = {}
    for pair in pairs:
        if "=" not in pair:
            raise SystemExit(f"--where expects DIM=VALUE, got {pair!r}")
        dim, _, value = pair.partition("=")
        where[dim] = value
    return where


def _cmd_telemetry(args) -> int:
    import json

    from repro.obs.events import read_events, validate_events
    from repro.obs.slo import evaluate_slos
    from repro.obs.telemetry import (
        filter_events,
        format_kv_rows,
        rollup,
        write_html_report,
    )

    header, events, _ = read_events(args.path)
    exit_code = 0
    sub = args.telemetry_command
    if sub == "query":
        selected = filter_events(
            events, stream=args.stream, where=_parse_where(args.where)
        )
        if args.limit is not None:
            selected = selected[: args.limit]
        for event in selected:
            print(json.dumps(event, sort_keys=True, separators=(",", ":")))
    elif sub == "rollup":
        selected = filter_events(
            events, stream=args.stream, where=_parse_where(args.where)
        )
        by = [dim.strip() for dim in args.by.split(",") if dim.strip()]
        print(rollup(selected, by, value=args.value).render())
    elif sub == "slo":
        report = evaluate_slos(events)
        rows = []
        for result in report.results:
            state = "met" if result.met else "VIOLATED"
            if result.firing:
                state += ", alert firing"
            rows.append(
                (
                    result.slo.name,
                    f"{result.good_fraction:.4f} good "
                    f"(objective {result.slo.objective:g}, "
                    f"{result.bad}/{result.total} bad) [{state}]",
                )
            )
        rows.append(("ledger entries", len(report.ledger)))
        rows.append(
            (
                "brownout replay",
                "exact"
                if not report.brownout_mismatches
                else f"{len(report.brownout_mismatches)} mismatch(es)",
            )
        )
        width = max(len(label) for label, _ in rows) + 2
        print(
            "\n".join(
                [f"slo report: {args.path}"]
                + [f"  {label:<{width}}{value}" for label, value in rows]
            )
        )
        if args.ledger:
            with open(args.ledger, "w", encoding="utf-8") as handle:
                json.dump(report.ledger, handle, indent=2, sort_keys=True)
                handle.write("\n")
            print(f"alert ledger -> {args.ledger}", file=sys.stderr)
        if args.check:
            for problem in report.violations:
                print(f"VIOLATION: {problem}", file=sys.stderr)
            exit_code = 1 if report.violations else 0
    else:
        problems = validate_events(args.path)
        if problems:
            for problem in problems:
                print(f"INVALID: {problem}", file=sys.stderr)
            return 1
        streams = {}
        for event in events:
            stream = event.get("stream", "?")
            streams[stream] = streams.get(stream, 0) + 1
        rows = [("log id", header.get("log_id"))]
        rows.extend(
            (f"stream {name}", count) for name, count in sorted(streams.items())
        )
        print(
            "\n".join(
                [f"{args.path}: ok ({len(events)} events)"]
                + format_kv_rows(rows)
            )
        )
    if args.html:
        write_html_report(args.path, args.html)
        print(f"html report -> {args.html}", file=sys.stderr)
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point."""
    argv = list(sys.argv[1:] if argv is None else argv)
    # Back-compat: `repro-study audit <term>...` predates the audit
    # service subcommands and still means `audit terms <term>...`.
    if (
        len(argv) >= 2
        and argv[0] == "audit"
        and argv[1] not in _AUDIT_HANDLERS
        and argv[1] not in ("-h", "--help")
    ):
        argv.insert(1, "terms")
    args = build_parser().parse_args(argv)
    handlers = {
        "run": _cmd_run,
        "report": _cmd_report,
        "validate": _cmd_validate,
        "demographics": _cmd_demographics,
        "chart": _cmd_chart,
        "crossengine": _cmd_crossengine,
        "carryover": _cmd_carryover,
        "content": _cmd_content,
        "export": _cmd_export,
        "audit": _cmd_audit,
        "diff": _cmd_diff,
        "reportcard": _cmd_reportcard,
        "schedule": _cmd_schedule,
        "serve-bench": _cmd_serve_bench,
        "chaos-serve": _cmd_chaos_serve,
        "chaos": _cmd_chaos,
        "fsck": _cmd_fsck,
        "disk-chaos": _cmd_disk_chaos,
        "crawl-bench": _cmd_crawl_bench,
        "trace": _cmd_trace,
        "metrics": _cmd_metrics,
        "telemetry": _cmd_telemetry,
    }
    return handlers[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
