"""Drift alerting: change-point detection on personalization curves.

Matter et al.'s election audit and Hannák et al.'s personalization
measurements both found that "how personalized is this engine?" is a
moving target — engines change rankers, news cycles move the noise
floor.  The audit service therefore watches each registered audit's
per-``(category, granularity)`` curves (raw edit mean and
noise-corrected net edit) across cycles and emits a structured
:class:`AlertRecord` when a curve drifts off its baseline.

Two detectors, both deterministic and clock-free:

* :class:`CusumDetector` — the service's primary detector.  A frozen
  baseline (mean/std of the first ``baseline_cycles`` values) turns
  each new value into a z-score; two one-sided CUSUM statistics
  accumulate standardized drift above/below the baseline with slack
  ``slack`` and alarm past ``threshold``, then reset (so a sustained
  shift re-alerts at a steady cadence rather than once).
* :func:`sliding_mann_whitney` — a windowed two-sample test over the
  curve, reusing :func:`repro.stats.hypothesis_tests.mann_whitney_u`;
  the HTTP API and ``repro audit status`` report it alongside the CUSUM
  state as a significance cross-check.

Determinism matters more than detector sophistication here: the alert
ledger must be byte-identical across kill/resume and worker counts
(pinned by tests), which is why baselines are frozen from the journal
and every statistic is a pure fold over the cycle series.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.stats.hypothesis_tests import MannWhitneyResult, mann_whitney_u
from repro.stats.summaries import summarize

__all__ = [
    "AlertRecord",
    "CusumDetector",
    "DriftConfig",
    "DriftMonitor",
    "sliding_mann_whitney",
]

#: Decimal places for floats in journaled alert/result dicts.  Rounding
#: happens once, at serialization, so the journal is canonical and the
#: streaming-vs-batch parity claims survive JSON round-trips.
JOURNAL_DECIMALS = 10


def journal_round(value: float) -> float:
    """Canonical float rounding for journaled records."""
    return round(float(value), JOURNAL_DECIMALS)


@dataclass(frozen=True)
class DriftConfig:
    """Detection knobs for one audit's drift monitor."""

    baseline_cycles: int = 4
    """Cycles used to freeze the baseline mean/std of each series."""

    slack: float = 0.5
    """CUSUM slack ``k`` in baseline-std units: drift smaller than this
    per cycle is absorbed instead of accumulated."""

    threshold: float = 4.0
    """CUSUM alarm threshold ``h`` in baseline-std units."""

    min_std: float = 1e-9
    """Floor on the baseline std, so a flat baseline still standardizes."""

    mw_window: int = 4
    """Window size for the sliding Mann–Whitney cross-check."""

    def __post_init__(self) -> None:
        if self.baseline_cycles < 1:
            raise ValueError("baseline_cycles must be >= 1")
        if self.slack < 0:
            raise ValueError("slack must be >= 0")
        if self.threshold <= 0:
            raise ValueError("threshold must be > 0")
        if self.min_std <= 0:
            raise ValueError("min_std must be > 0")
        if self.mw_window < 1:
            raise ValueError("mw_window must be >= 1")


@dataclass(frozen=True)
class AlertRecord:
    """One drift alarm, as journaled in the audit store."""

    audit: str
    cycle: int
    series: str
    """Curve identifier, e.g. ``"net:local:county"``."""
    kind: str
    """``"drift-high"`` or ``"drift-low"``."""
    value: float
    """The cycle's curve value that tripped the alarm."""
    baseline_mean: float
    baseline_std: float
    statistic: float
    """The CUSUM sum at the alarm (baseline-std units)."""
    threshold: float

    def to_dict(self) -> dict:
        """Canonical JSON-able form (floats journal-rounded)."""
        raw = asdict(self)
        for key in ("value", "baseline_mean", "baseline_std", "statistic", "threshold"):
            raw[key] = journal_round(raw[key])
        return raw

    @classmethod
    def from_dict(cls, raw: dict) -> "AlertRecord":
        return cls(**raw)


class CusumDetector:
    """Two-sided CUSUM over one series, against a frozen baseline."""

    def __init__(self, config: DriftConfig):
        self.config = config
        self.baseline: List[float] = []
        self.baseline_mean: Optional[float] = None
        self.baseline_std: Optional[float] = None
        self.s_high = 0.0
        self.s_low = 0.0

    def observe(self, value: float) -> Optional[Tuple[str, float]]:
        """Feed the next cycle's value; returns ``(kind, statistic)`` on alarm."""
        if self.baseline_mean is None:
            self.baseline.append(float(value))
            if len(self.baseline) >= self.config.baseline_cycles:
                summary = summarize(self.baseline)
                self.baseline_mean = summary.mean
                self.baseline_std = max(summary.std, self.config.min_std)
            return None
        z = (float(value) - self.baseline_mean) / self.baseline_std
        self.s_high = max(0.0, self.s_high + z - self.config.slack)
        self.s_low = max(0.0, self.s_low - z - self.config.slack)
        if self.s_high > self.config.threshold:
            statistic = self.s_high
            self.s_high = self.s_low = 0.0
            return ("drift-high", statistic)
        if self.s_low > self.config.threshold:
            statistic = self.s_low
            self.s_high = self.s_low = 0.0
            return ("drift-low", statistic)
        return None


@dataclass
class DriftMonitor:
    """All of one audit's per-series detectors, fed cycle by cycle."""

    audit: str
    config: DriftConfig = field(default_factory=DriftConfig)

    def __post_init__(self) -> None:
        self._detectors: Dict[str, CusumDetector] = {}

    def observe_cycle(
        self, cycle: int, series_values: Dict[str, float]
    ) -> List[AlertRecord]:
        """Feed one cycle's curve values; returns the alarms it trips.

        Series are visited in sorted name order so the alert ledger has
        one canonical ordering.
        """
        alerts: List[AlertRecord] = []
        for series in sorted(series_values):
            detector = self._detectors.get(series)
            if detector is None:
                detector = CusumDetector(self.config)
                self._detectors[series] = detector
            value = series_values[series]
            fired = detector.observe(value)
            if fired is None:
                continue
            kind, statistic = fired
            alerts.append(
                AlertRecord(
                    audit=self.audit,
                    cycle=cycle,
                    series=series,
                    kind=kind,
                    value=value,
                    baseline_mean=detector.baseline_mean,
                    baseline_std=detector.baseline_std,
                    statistic=statistic,
                    threshold=self.config.threshold,
                )
            )
        return alerts

    def state(self, series: str) -> Optional[CusumDetector]:
        """The live detector for one series (``None`` before first value)."""
        return self._detectors.get(series)


def sliding_mann_whitney(
    series: Sequence[float], *, window: int
) -> Optional[MannWhitneyResult]:
    """Mann–Whitney U of the last ``window`` values vs the ``window`` before.

    Returns ``None`` until the series holds two full windows.  A
    significant result says the recent curve segment is distributed
    differently from the preceding one — the windowed complement to the
    CUSUM's cumulative view.
    """
    if window < 1:
        raise ValueError("window must be >= 1")
    if len(series) < 2 * window:
        return None
    recent = list(series[-window:])
    previous = list(series[-2 * window : -window])
    return mann_whitney_u(recent, previous)
