"""Streaming personalization statistics: batch analyses, one round at a time.

The end-of-run analyses (:class:`~repro.core.noise.NoiseAnalysis`,
:class:`~repro.core.personalization.PersonalizationAnalysis`) need the
whole dataset in memory before they can compare anything.  A continuous
audit cannot wait for "end of run" — it wants the per-granularity
Jaccard / edit-distance curves to update as crawl rounds land.

:class:`StreamingComparisons` is the incremental equivalent.  Feed it
:class:`~repro.core.datastore.SerpRecord` objects in canonical dataset
order (a :meth:`Study.run(sink=...) <repro.core.runner.Study.run>` sink
delivers exactly that, for any worker count and across checkpoint
resume) and it maintains, per ``(category, granularity)`` cell:

* **treatment** statistics — all location-pair comparisons at one
  granularity (paper Fig. 5), and
* **noise** statistics — treatment-vs-control comparisons (paper
  Fig. 2), whose edit mean is the noise floor.

Parity contract (pinned by ``tests/test_audit_streaming.py``): because
every lock-step round is exactly one ``(query, day)`` group, the pair
stream this class produces is *identical — values and order — * to the
batch iterators' stream, so the streaming **means are bit-identical**
to :func:`~repro.stats.summaries.summarize` over
:func:`~repro.core.comparisons.iter_treatment_pairs` /
:func:`~repro.core.comparisons.iter_noise_pairs`; standard deviations
agree to ~1e-12 (Welford vs two-pass).  Records lost to crawl failures
degrade exactly like the batch iterators: a pair whose other half is
missing is skipped.
"""

from __future__ import annotations

import itertools
from typing import Dict, List, Optional, Tuple

from repro.core.comparisons import compare_records
from repro.core.datastore import SerpRecord
from repro.stats.summaries import MeanStd, StreamingMeanStd

__all__ = ["StreamingCell", "StreamingComparisons"]


class StreamingCell:
    """Streaming Jaccard/edit aggregates for one comparison cell."""

    __slots__ = ("jaccard", "edit")

    def __init__(self) -> None:
        self.jaccard = StreamingMeanStd()
        self.edit = StreamingMeanStd()

    def observe(self, jaccard: float, edit: int) -> None:
        self.jaccard.observe(jaccard)
        self.edit.observe(float(edit))

    @property
    def pairs(self) -> int:
        return self.edit.count

    def jaccard_summary(self) -> MeanStd:
        return self.jaccard.result()

    def edit_summary(self) -> MeanStd:
        return self.edit.result()


class StreamingComparisons:
    """Round-by-round pairwise comparisons over a record stream.

    ``observe`` buffers records until the ``(query, day)`` group key
    changes — i.e. until the next lock-step round starts arriving —
    then flushes the completed round into the per-cell accumulators.
    Call :meth:`finish` after the last record to flush the final round.
    """

    def __init__(self) -> None:
        self.treatment: Dict[Tuple[str, str], StreamingCell] = {}
        self.noise: Dict[Tuple[str, str], StreamingCell] = {}
        self.records = 0
        self.pairs = 0
        self._buffer: List[SerpRecord] = []
        self._group_key: Optional[Tuple[str, int]] = None
        self._finished = False

    def observe(self, record: SerpRecord) -> None:
        """Feed one record, in canonical dataset order."""
        if self._finished:
            raise RuntimeError("cannot observe() after finish()")
        key = (record.query, record.day)
        if self._group_key is not None and key != self._group_key:
            self._flush()
        self._group_key = key
        self._buffer.append(record)
        self.records += 1

    def finish(self) -> None:
        """Flush the trailing round; the accumulators are now final."""
        if self._finished:
            return
        self._flush()
        self._finished = True

    # -- internals -----------------------------------------------------------

    def _cell(
        self, cells: Dict[Tuple[str, str], StreamingCell], record: SerpRecord
    ) -> StreamingCell:
        key = (record.category, record.granularity)
        cell = cells.get(key)
        if cell is None:
            cell = StreamingCell()
            cells[key] = cell
        return cell

    def _flush(self) -> None:
        """Compare everything inside one completed round."""
        buffer = self._buffer
        if not buffer:
            return
        self._buffer = []
        # Noise pairs: copy 0 vs copy 1 at the same location, walked in
        # arrival (= dataset) order like iter_noise_pairs.
        controls = {
            (r.granularity, r.location_name): r for r in buffer if r.copy_index == 1
        }
        for record in buffer:
            if record.copy_index != 0:
                continue
            control = controls.get((record.granularity, record.location_name))
            if control is None:
                continue
            comparison = compare_records(record, control)
            self._cell(self.noise, record).observe(comparison.jaccard, comparison.edit)
            self.pairs += 1
        # Treatment pairs: all location pairs at one granularity, copy 0
        # only, sorted by location name like iter_treatment_pairs.
        by_granularity: Dict[str, List[SerpRecord]] = {}
        for record in buffer:
            if record.copy_index != 0:
                continue
            by_granularity.setdefault(record.granularity, []).append(record)
        for records in by_granularity.values():
            records.sort(key=lambda r: r.location_name)
            for a, b in itertools.combinations(records, 2):
                comparison = compare_records(a, b)
                self._cell(self.treatment, a).observe(
                    comparison.jaccard, comparison.edit
                )
                self.pairs += 1

    # -- accessors -----------------------------------------------------------

    def cells(self) -> List[Tuple[str, str]]:
        """Every (category, granularity) cell seen, sorted."""
        return sorted(set(self.treatment) | set(self.noise))

    def noise_floor_edit(self, category: str, granularity: str) -> Optional[float]:
        """Mean edit-distance noise for one cell (``None`` if no pairs)."""
        cell = self.noise.get((category, granularity))
        if cell is None or not cell.pairs:
            return None
        return cell.edit.mean

    def net_edit(self, category: str, granularity: str) -> Optional[float]:
        """Mean treatment edit distance above the noise floor.

        Matches
        :meth:`~repro.core.personalization.PersonalizationAnalysis.net_edit`
        on a complete stream; ``None`` when either family has no pairs.
        """
        treatment = self.treatment.get((category, granularity))
        noise_floor = self.noise_floor_edit(category, granularity)
        if treatment is None or not treatment.pairs or noise_floor is None:
            return None
        return max(0.0, treatment.edit.mean - noise_floor)
