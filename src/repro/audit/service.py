"""The audit service: registered audits, shared stats, one metrics surface.

:class:`AuditService` is the daemon-facing wrapper around
:class:`~repro.audit.scheduler.AuditScheduler`: it owns the service-wide
:class:`AuditServiceStats`, exposes them through a
:class:`~repro.obs.metrics.MetricsRegistry` (the ``/metrics`` endpoint
renders it as Prometheus text), serializes all mutation behind one lock
so the HTTP API can read while cycles run, and builds the ``status``
view the CLI and API serve.

:func:`build_smoke_service` is the CI entry point: a tiny but complete
audit (4 queries, 1 day, 2 locations per granularity, paired controls
intact) whose drift monitor has a 1-cycle baseline so the whole
pipeline — including alerting state — exercises in seconds.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.audit.drift import DriftConfig, sliding_mann_whitney
from repro.audit.scheduler import AuditScheduler, AuditSpec, CycleOutcome
from repro.core.experiment import DEFAULT_STUDY_SEED, StudyConfig
from repro.obs.events import NULL_RECORDER
from repro.obs.metrics import MetricSet, MetricsRegistry
from repro.queries.corpus import build_corpus

__all__ = ["AuditService", "AuditServiceStats", "build_smoke_service"]


@dataclass
class AuditServiceStats(MetricSet):
    """Service-wide counters, one instance per :class:`AuditService`."""

    cycles_completed: int = 0
    records_ingested: int = 0
    pairs_compared: int = 0
    alerts_emitted: int = 0
    http_requests: int = 0
    alerts_by_audit: Dict[str, int] = field(default_factory=dict)


class AuditService:
    """Registered audits plus the service's observable surface."""

    def __init__(self, store_dir: str):
        self.stats = AuditServiceStats()
        self._lock = threading.RLock()
        self._scheduler = AuditScheduler(store_dir, stats=self.stats)
        self._registry: Optional[MetricsRegistry] = None
        #: Wide-event recorder for the ``audit`` stream (one event per
        #: completed cycle, carrying its drift alerts); off by default.
        self.events = NULL_RECORDER

    # -- lifecycle -----------------------------------------------------------

    @property
    def store_dir(self) -> str:
        return self._scheduler.store_dir

    def register(self, spec: AuditSpec):
        with self._lock:
            return self._scheduler.register(spec)

    def close(self) -> None:
        with self._lock:
            self._scheduler.close()

    def __enter__(self) -> "AuditService":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def run_cycle(self, name: str, **kwargs) -> CycleOutcome:
        with self._lock:
            outcome = self._scheduler.run_cycle(name, **kwargs)
            self._emit_cycle_event(outcome)
            return outcome

    def run_once(self, *, cycles: int = 1, **kwargs) -> List[CycleOutcome]:
        """Advance every pending audit by up to ``cycles`` cycles."""
        with self._lock:
            outcomes = self._scheduler.run_once(cycles=cycles, **kwargs)
            for outcome in outcomes:
                self._emit_cycle_event(outcome)
            return outcomes

    def _emit_cycle_event(self, outcome: CycleOutcome) -> None:
        """One ``audit`` wide event per completed cycle."""
        if not self.events.enabled:
            return
        self.events.emit(
            "audit",
            key=(outcome.audit, outcome.cycle),
            ts=float(outcome.cycle),
            audit=outcome.audit,
            cycle=outcome.cycle,
            alerts=len(outcome.alerts),
            alert_series=sorted(alert.series for alert in outcome.alerts),
        )

    def pending(self) -> List[str]:
        with self._lock:
            return self._scheduler.pending()

    # -- observability -------------------------------------------------------

    def registry(self) -> MetricsRegistry:
        """The service's metric registry (built once, reads live stats)."""
        with self._lock:
            if self._registry is None:
                registry = MetricsRegistry()
                stats = self.stats
                counter_help = {
                    "cycles_completed": "audit cycles journaled durably",
                    "records_ingested": "SERP records streamed through sinks",
                    "pairs_compared": "streaming pairwise comparisons",
                    "alerts_emitted": "drift alerts journaled",
                    "http_requests": "API requests served",
                }
                for attr, help_text in counter_help.items():
                    registry.register_counter(
                        f"audit_{attr}_total", stats, attr, help=help_text
                    )
                registry.register_labeled(
                    "audit_alerts_total",
                    stats,
                    "alerts_by_audit",
                    label="audit",
                    help="drift alerts by audit",
                )
                registry.register_gauge(
                    "audit_registered",
                    self,
                    "_registered_count",
                    help="audits currently registered",
                )
                self._registry = registry
            return self._registry

    @property
    def _registered_count(self) -> int:
        return len(self._scheduler.audits)

    def status(self) -> dict:
        """The JSON status view served by ``/audits`` and the CLI.

        Per audit: cycle progress, journaled alert count, and per-series
        drift state (latest value, live CUSUM sums, and the sliding
        Mann–Whitney cross-check once two windows exist).
        """
        with self._lock:
            audits = {}
            for name, audit in self._scheduler.audits.items():
                spec = audit.spec
                results = audit.store.results()
                curves: Dict[str, List[float]] = {}
                for result in results:
                    for series, value in AuditScheduler._series_values(
                        result
                    ).items():
                        curves.setdefault(series, []).append(value)
                series_status = {}
                for series in sorted(curves):
                    values = curves[series]
                    detector = audit.monitor.state(series)
                    mw = sliding_mann_whitney(values, window=spec.drift.mw_window)
                    series_status[series] = {
                        "points": len(values),
                        "latest": values[-1],
                        "cusum_high": detector.s_high if detector else 0.0,
                        "cusum_low": detector.s_low if detector else 0.0,
                        "mw_significant": None if mw is None else mw.significant,
                    }
                audits[name] = {
                    "cycles": len(audit.store.cycles),
                    "budget": spec.cycles,
                    "done": audit.done,
                    "interval_minutes": spec.cycle_interval(),
                    "workers": spec.workers,
                    "supervised": spec.supervise,
                    "alerts": len(audit.store.alerts()),
                    "series": series_status,
                }
            return {
                "store_dir": self.store_dir,
                "audits": audits,
                "stats": self.stats.capture_state(),
            }

    def render_status(self) -> str:
        """Human-readable status for ``repro audit status``."""
        status = self.status()
        lines = [f"audit store: {status['store_dir']}"]
        if not status["audits"]:
            lines.append("  (no audits registered)")
        for name, audit in sorted(status["audits"].items()):
            budget = audit["budget"]
            progress = f"{audit['cycles']}/{budget}" if budget else str(audit["cycles"])
            lines.append(
                f"  {name}: cycles {progress}, alerts {audit['alerts']}, "
                f"every {audit['interval_minutes']:g} min"
                + (" [done]" if audit["done"] else "")
            )
            for series, state in audit["series"].items():
                mw = state["mw_significant"]
                mw_text = "n/a" if mw is None else ("SIGNIFICANT" if mw else "ns")
                lines.append(
                    f"    {series}: latest {state['latest']:.4f} "
                    f"cusum +{state['cusum_high']:.2f}/-{state['cusum_low']:.2f} "
                    f"mw {mw_text}"
                )
        return "\n".join(lines)


def build_smoke_service(
    store_dir: str,
    *,
    seed: int = DEFAULT_STUDY_SEED,
    cycles: int = 3,
    workers: int = 1,
    name: str = "smoke",
) -> AuditService:
    """A service with one tiny registered audit, for CI and quick checks."""
    config = StudyConfig.small(
        list(build_corpus())[:4], seed=seed, days=1, locations_per_granularity=2
    )
    service = AuditService(store_dir)
    service.register(
        AuditSpec(
            name=name,
            config=config,
            cycles=cycles,
            workers=workers,
            drift=DriftConfig(baseline_cycles=1, mw_window=1),
        )
    )
    return service
