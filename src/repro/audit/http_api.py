"""Stdlib HTTP API over a running :class:`~repro.audit.service.AuditService`.

Routes (all ``GET``):

========================  ====================================================
``/healthz``              liveness — ``{"status": "ok"}``
``/audits``               the service status document (per-audit progress,
                          drift state, service counters)
``/audits/<name>``        one audit's journaled cycle results
``/audits/<name>/series``  per-series curves across cycles (the drift inputs)
``/audits/<name>/alerts``  the audit's alert ledger
``/metrics``              the service :class:`~repro.obs.metrics.
                          MetricsRegistry` in Prometheus text exposition
                          format (see ``docs/OBSERVABILITY.md``)
========================  ====================================================

The routing core is :func:`handle_path` — a pure function from path to
``(status, content_type, body)`` so tests can exercise every route
without sockets.  :class:`AuditAPIServer` wraps it in a
``ThreadingHTTPServer`` on a background thread; bind port 0 to let the
OS pick (the chosen port is on ``.port``).
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Tuple

from repro.audit.service import AuditService

__all__ = ["AuditAPIServer", "handle_path"]

_JSON = "application/json"
_PROM = "text/plain; version=0.0.4"


def _json_body(payload, status: int = 200) -> Tuple[int, str, bytes]:
    return status, _JSON, (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")


def _not_found(path: str) -> Tuple[int, str, bytes]:
    return _json_body({"error": f"no such resource: {path}"}, status=404)


def handle_path(service: AuditService, path: str) -> Tuple[int, str, bytes]:
    """Serve one GET path: ``(status, content_type, body)``."""
    service.stats.http_requests += 1
    path = path.split("?", 1)[0].rstrip("/") or "/"
    if path == "/healthz":
        return _json_body({"status": "ok"})
    if path == "/metrics":
        return 200, _PROM, service.registry().render_prometheus().encode("utf-8")
    if path == "/audits":
        return _json_body(service.status())
    if path.startswith("/audits/"):
        parts = path.split("/")[2:]
        name = parts[0]
        audit = service._scheduler.audits.get(name)
        if audit is None:
            return _not_found(path)
        if len(parts) == 1:
            return _json_body(
                {
                    "audit": name,
                    "fingerprint": audit.store.header["fingerprint"],
                    "cycles": audit.store.results(),
                }
            )
        if len(parts) == 2 and parts[1] == "series":
            curves = {}
            for category, granularity in audit.store.iter_cells():
                for metric in ("edit_mean", "net_edit"):
                    prefix = "edit" if metric == "edit_mean" else "net"
                    curves[f"{prefix}:{category}:{granularity}"] = audit.store.series(
                        metric=metric, category=category, granularity=granularity
                    )
            return _json_body({"audit": name, "series": curves})
        if len(parts) == 2 and parts[1] == "alerts":
            return _json_body({"audit": name, "alerts": audit.store.alerts()})
    return _not_found(path)


class AuditAPIServer:
    """The service's HTTP face, on a daemon thread."""

    def __init__(self, service: AuditService, host: str = "127.0.0.1", port: int = 0):
        self.service = service

        class _Handler(BaseHTTPRequestHandler):
            def do_GET(handler) -> None:  # noqa: N805 - stdlib handler idiom
                status, content_type, body = handle_path(service, handler.path)
                handler.send_response(status)
                handler.send_header("Content-Type", content_type)
                handler.send_header("Content-Length", str(len(body)))
                handler.end_headers()
                handler.wfile.write(body)

            def log_message(handler, *args) -> None:  # noqa: N805
                pass  # the service's stats are the access log

        self._server = ThreadingHTTPServer((host, port), _Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, name="audit-api", daemon=True
        )

    @property
    def port(self) -> int:
        return self._server.server_address[1]

    @property
    def url(self) -> str:
        host = self._server.server_address[0]
        return f"http://{host}:{self.port}"

    def start(self) -> "AuditAPIServer":
        self._thread.start()
        return self

    def close(self) -> None:
        self._server.shutdown()
        self._server.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=5)
