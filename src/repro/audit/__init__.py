"""Continuous audit service: recurring studies, streaming stats, drift alerts.

Where :func:`repro.core.audit.audit_queries` answers "how personalized
are these terms?" once, :mod:`repro.audit` keeps asking: register an
:class:`AuditSpec` with the :class:`AuditService` and every interval of
virtual time it runs a full paired-control crawl window (a *cycle*),
streams the per-granularity Jaccard / edit-distance statistics as
rounds land, journals the cycle durably to an append-only
:class:`AuditStore`, and raises :class:`AlertRecord` drift alarms when
a personalization curve leaves its baseline.  An stdlib HTTP API
(:class:`AuditAPIServer`) and the ``repro audit`` CLI serve the results
and Prometheus metrics.  See ``docs/AUDIT.md``.
"""

from repro.audit.drift import (
    AlertRecord,
    CusumDetector,
    DriftConfig,
    DriftMonitor,
    sliding_mann_whitney,
)
from repro.audit.http_api import AuditAPIServer, handle_path
from repro.audit.scheduler import AuditScheduler, AuditSpec, CycleOutcome
from repro.audit.service import AuditService, AuditServiceStats, build_smoke_service
from repro.audit.store import AuditStore, AuditStoreError
from repro.audit.streaming import StreamingCell, StreamingComparisons

__all__ = [
    "AlertRecord",
    "AuditAPIServer",
    "AuditScheduler",
    "AuditService",
    "AuditServiceStats",
    "AuditSpec",
    "AuditStore",
    "AuditStoreError",
    "CusumDetector",
    "CycleOutcome",
    "DriftConfig",
    "DriftMonitor",
    "StreamingCell",
    "StreamingComparisons",
    "build_smoke_service",
    "handle_path",
    "sliding_mann_whitney",
]
