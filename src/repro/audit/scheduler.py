"""Recurring audit cycles on the virtual clock.

The paper's methodology is a one-shot 30-day batch study.  The
scheduler turns it into a rolling one: an :class:`AuditSpec` registers
a study configuration as a **recurring audit**, and every
``interval_minutes`` of virtual time the scheduler runs one *cycle* — a
complete paired-control crawl window with a cycle-derived seed — under
the existing execution stack:

* cycles run sequentially, sharded (``workers=N``), or under
  :mod:`repro.supervise` (crash/hang recovery, :class:`KillSpec`
  murder points for tests), exactly as ``Study.run`` would;
* with ``checkpoint_cycles`` the in-flight cycle journals to a crawl
  checkpoint next to the store, so a daemon killed mid-cycle resumes
  the cycle byte-identically instead of re-crawling it;
* records stream through a :class:`~repro.audit.streaming.
  StreamingComparisons` sink as rounds land (no end-of-run batch
  pass), the per-cell summary goes through the audit's
  :class:`~repro.audit.drift.DriftMonitor`, and the cycle + alerts are
  appended durably to the :class:`~repro.audit.store.AuditStore`.

On (re)registration the scheduler replays the store's journaled cycles
through a fresh drift monitor and refuses the store if the replayed
alerts differ from the journaled ones — the alert ledger is a pure
function of the spec, so a mismatch means the store belongs to a
different drift configuration.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import asdict, dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.audit.drift import AlertRecord, DriftConfig, DriftMonitor, journal_round
from repro.audit.store import AuditStore, AuditStoreError
from repro.audit.streaming import StreamingComparisons
from repro.core.experiment import StudyConfig
from repro.core.runner import MINUTES_PER_DAY, Study
from repro.seeding import derive_seed, stable_hash

__all__ = ["AuditScheduler", "AuditSpec", "CycleOutcome", "RegisteredAudit"]

_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")

#: Fingerprint schema version, bumped when the result format changes.
SPEC_FINGERPRINT_VERSION = 1


@dataclass(frozen=True)
class AuditSpec:
    """One recurring audit: what to crawl, how often, how to execute it.

    Execution knobs (``workers``, ``supervise``, ``checkpoint_cycles``,
    ``trace_cycles``) are deliberately *excluded* from the store
    fingerprint: they change how a cycle runs, never what it produces —
    the byte-parity guarantees of :mod:`repro.parallel` and
    :mod:`repro.supervise` are what make that exclusion sound, and the
    determinism tests hold the scheduler to it.
    """

    name: str
    config: StudyConfig
    interval_minutes: Optional[float] = None
    """Virtual minutes between cycle starts (default: the window length,
    ``config.days`` days — back-to-back rolling windows)."""
    cycles: Optional[int] = None
    """Total cycle budget (``None`` = unbounded)."""
    workers: int = 1
    supervise: bool = False
    checkpoint_cycles: bool = False
    """Journal the in-flight cycle's crawl for mid-cycle kill/resume."""
    trace_cycles: bool = False
    """Write a canonical per-cycle trace next to the store."""
    retention_cycles: Optional[int] = None
    """Keep at most this many full cycle lines in the store; older
    cycles are compacted into the drift-series + alert summary the
    replay needs (``None`` = keep everything).  A retention knob, like
    the execution knobs, is excluded from the fingerprint: compaction
    provably changes no ledger byte."""
    drift: DriftConfig = field(default_factory=DriftConfig)

    def __post_init__(self) -> None:
        if not _NAME_RE.match(self.name):
            raise ValueError(
                f"audit name {self.name!r} must be alphanumeric with ._- only"
            )
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.interval_minutes is not None and self.interval_minutes <= 0:
            raise ValueError("interval_minutes must be > 0")
        if self.cycles is not None and self.cycles < 1:
            raise ValueError("cycles must be >= 1 or None")
        if self.retention_cycles is not None and self.retention_cycles < 1:
            raise ValueError("retention_cycles must be >= 1 or None")
        if self.checkpoint_cycles and self.supervise:
            raise ValueError(
                "checkpoint_cycles and supervise cannot be combined "
                "(supervision keeps shard snapshots in memory, not a journal)"
            )
        if self.checkpoint_cycles and self.trace_cycles:
            raise ValueError(
                "checkpoint_cycles and trace_cycles cannot be combined "
                "(the crawl journal does not carry spans)"
            )

    def cycle_interval(self) -> float:
        return (
            self.interval_minutes
            if self.interval_minutes is not None
            else self.config.days * MINUTES_PER_DAY
        )

    def cycle_config(self, cycle: int) -> StudyConfig:
        """The cycle's study configuration: same shape, derived seed."""
        return self.config.with_overrides(
            seed=derive_seed(self.config.seed, "audit-cycle", self.name, cycle)
        )

    def fingerprint(self) -> dict:
        """Everything that shapes the store's bytes, and nothing else."""
        config = self.config
        queries_digest = stable_hash(
            "queries",
            *[f"{query.text}|{query.category.value}" for query in config.queries],
        )
        calibration_digest = stable_hash(
            "calibration", json.dumps(asdict(config.calibration), sort_keys=True)
        )
        locations = (
            [region.qualified_name for region in config.study_locations.all_locations()]
            if config.study_locations is not None
            else [config.state_count, config.county_count, config.district_count]
        )
        plan = config.fault_plan
        return {
            "version": SPEC_FINGERPRINT_VERSION,
            "name": self.name,
            "seed": config.seed,
            "days": config.days,
            "copies": config.copies_per_location,
            "machines": config.machine_count,
            "wait": config.wait_between_queries_minutes,
            "block": config.queries_per_day_block,
            "pin": config.pin_datacenter,
            "dialect": config.dialect.name,
            "gateway": [
                config.route_via_gateway,
                config.gateway_routing,
                config.gateway_cache_size,
            ],
            "queries": queries_digest,
            "calibration": calibration_digest,
            "locations": locations,
            "plan": asdict(plan) if plan is not None else None,
            "interval": journal_round(self.cycle_interval()),
            "drift": asdict(self.drift),
        }


@dataclass
class RegisteredAudit:
    """A spec bound to its open store and live drift monitor."""

    spec: AuditSpec
    store: AuditStore
    monitor: DriftMonitor

    @property
    def next_cycle(self) -> int:
        return self.store.next_ordinal

    @property
    def done(self) -> bool:
        """Whether the cycle budget (if any) is exhausted."""
        return self.spec.cycles is not None and self.next_cycle >= self.spec.cycles


@dataclass(frozen=True)
class CycleOutcome:
    """What one completed cycle produced."""

    audit: str
    cycle: int
    result: dict
    alerts: List[AlertRecord]


class AuditScheduler:
    """Registered audits over one store directory, run cycle by cycle."""

    def __init__(self, store_dir: str, *, stats=None):
        """``stats`` is an optional
        :class:`~repro.audit.service.AuditServiceStats` the scheduler
        increments as cycles complete (the service wires one in)."""
        self.store_dir = store_dir
        self.stats = stats
        self.audits: Dict[str, RegisteredAudit] = {}
        os.makedirs(store_dir, exist_ok=True)

    # -- registration --------------------------------------------------------

    def store_path(self, name: str) -> str:
        return os.path.join(self.store_dir, f"{name}.audit.jsonl")

    def register(self, spec: AuditSpec) -> RegisteredAudit:
        """Register an audit, resuming its store if one exists.

        Journaled cycles are replayed through a fresh drift monitor;
        the replayed alerts must match the journaled ones exactly, or
        the store was produced under a different drift configuration
        and is refused.
        """
        if spec.name in self.audits:
            raise ValueError(f"audit {spec.name!r} already registered")
        store = AuditStore.open(
            self.store_path(spec.name), audit=spec.name, fingerprint=spec.fingerprint()
        )
        monitor = DriftMonitor(spec.name, spec.drift)
        replay = [
            (entry["cycle"], entry["values"], entry["alerts"])
            for entry in store.compacted
        ] + [
            (
                cycle_line["ordinal"],
                self._series_values(cycle_line["result"]),
                cycle_line["alerts"],
            )
            for cycle_line in store.cycles
        ]
        for ordinal, values, journaled_alerts in replay:
            replayed = monitor.observe_cycle(ordinal, values)
            if [alert.to_dict() for alert in replayed] != journaled_alerts:
                store.close()
                raise AuditStoreError(
                    f"audit store for {spec.name!r} journals alerts that this "
                    "drift configuration does not reproduce; refusing to resume"
                )
        audit = RegisteredAudit(spec=spec, store=store, monitor=monitor)
        self.audits[spec.name] = audit
        return audit

    def close(self) -> None:
        for audit in self.audits.values():
            audit.store.close()
        self.audits = {}

    def __enter__(self) -> "AuditScheduler":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- execution -----------------------------------------------------------

    def pending(self) -> List[str]:
        """Audits with cycle budget remaining, in registration order."""
        return [name for name, audit in self.audits.items() if not audit.done]

    def run_cycle(
        self,
        name: str,
        *,
        policy=None,
        kill_specs: Sequence = (),
        record_hook=None,
    ) -> CycleOutcome:
        """Run one audit's next cycle and journal it durably.

        ``kill_specs`` (supervised audits only) murder workers at exact
        points — recovery must leave the store byte-identical.
        ``record_hook`` is a test hook called per streamed record; an
        exception it raises aborts the cycle mid-flight *before*
        anything reaches the store, simulating a daemon kill.
        """
        audit = self.audits[name]
        spec = audit.spec
        if audit.done:
            raise ValueError(f"audit {name!r} has exhausted its cycle budget")
        if kill_specs and not spec.supervise:
            raise ValueError("kill_specs require a supervised audit spec")
        cycle = audit.next_cycle
        config = spec.cycle_config(cycle)
        study = Study(config)
        streaming = StreamingComparisons()

        def sink(record) -> None:
            streaming.observe(record)
            if self.stats is not None:
                self.stats.records_ingested += 1
            if record_hook is not None:
                record_hook(record)

        checkpoint = (
            self.store_path(name) + f".cycle{cycle}.ckpt"
            if spec.checkpoint_cycles
            else None
        )
        trace = (
            self.store_path(name) + f".cycle{cycle}.trace.jsonl"
            if spec.trace_cycles
            else None
        )
        if spec.supervise:
            from repro.parallel import run_parallel

            dataset = run_parallel(
                study,
                workers=spec.workers,
                sink=sink,
                trace=trace,
                supervise=True,
                policy=policy,
                kill_specs=tuple(kill_specs),
            )
        else:
            dataset = study.run(
                workers=spec.workers, sink=sink, checkpoint=checkpoint, trace=trace
            )
        streaming.finish()

        result = self._build_result(spec, cycle, study, dataset, streaming)
        alerts = audit.monitor.observe_cycle(cycle, self._series_values(result))
        audit.store.append_cycle(result, [alert.to_dict() for alert in alerts])
        if spec.retention_cycles is not None:
            audit.store.compact(
                spec.retention_cycles, series_values=self._series_values
            )
        if checkpoint is not None and os.path.exists(checkpoint):
            # The cycle is durable in the store; the crawl journal has
            # served its purpose and a stale one would poison cycle
            # numbering on a later registration.
            os.remove(checkpoint)
        if self.stats is not None:
            self.stats.cycles_completed += 1
            self.stats.pairs_compared += streaming.pairs
            self.stats.alerts_emitted += len(alerts)
            if alerts:
                self.stats.alerts_by_audit[name] = self.stats.alerts_by_audit.get(
                    name, 0
                ) + len(alerts)
        return CycleOutcome(audit=name, cycle=cycle, result=result, alerts=alerts)

    def run_once(self, *, cycles: int = 1, **run_kwargs) -> List[CycleOutcome]:
        """Advance every pending audit by up to ``cycles`` cycles."""
        outcomes: List[CycleOutcome] = []
        for name in list(self.audits):
            for _ in range(cycles):
                if self.audits[name].done:
                    break
                outcomes.append(self.run_cycle(name, **run_kwargs))
        return outcomes

    # -- result building -----------------------------------------------------

    @staticmethod
    def _series_values(result: dict) -> Dict[str, float]:
        """The drift-monitored curves of one cycle result.

        Two series per (category, granularity) cell: the raw treatment
        edit mean (``edit:``) and the noise-corrected net edit
        (``net:``).  Cells missing either family that cycle contribute
        no value — the detector simply does not advance.
        """
        series: Dict[str, float] = {}
        for category, by_granularity in result["cells"].items():
            for granularity, cell in by_granularity.items():
                if cell.get("edit_mean") is not None:
                    series[f"edit:{category}:{granularity}"] = cell["edit_mean"]
                if cell.get("net_edit") is not None:
                    series[f"net:{category}:{granularity}"] = cell["net_edit"]
        return series

    def _build_result(
        self,
        spec: AuditSpec,
        cycle: int,
        study: Study,
        dataset,
        streaming: StreamingComparisons,
    ) -> dict:
        cells: Dict[str, Dict[str, dict]] = {}
        for category, granularity in streaming.cells():
            treatment = streaming.treatment.get((category, granularity))
            noise = streaming.noise.get((category, granularity))
            cell: dict = {
                "pairs": treatment.pairs if treatment else 0,
                "noise_pairs": noise.pairs if noise else 0,
            }
            if treatment is not None and treatment.pairs:
                cell["jaccard_mean"] = journal_round(treatment.jaccard.mean)
                cell["jaccard_std"] = journal_round(treatment.jaccard.std)
                cell["edit_mean"] = journal_round(treatment.edit.mean)
                cell["edit_std"] = journal_round(treatment.edit.std)
            if noise is not None and noise.pairs:
                cell["noise_edit_mean"] = journal_round(noise.edit.mean)
            net = streaming.net_edit(category, granularity)
            if net is not None:
                cell["net_edit"] = journal_round(net)
            cells.setdefault(category, {})[granularity] = cell
        return {
            "cycle": cycle,
            "started_minutes": journal_round(cycle * spec.cycle_interval()),
            "seed": study.config.seed,
            "pages": len(dataset),
            "failures": len(study.failures),
            "failures_by_kind": {
                kind: count
                for kind, count in sorted(study.stats.failures_by_kind.items())
            },
            "records_streamed": streaming.records,
            "pairs": streaming.pairs,
            "cells": cells,
        }
