"""The append-only audit store: a kill-safe journal of cycles and alerts.

Same durability model as the crawl checkpoint journal
(:mod:`repro.faults.checkpoint`), applied to audit results: one JSONL
file per registered audit, a header line whose fingerprint pins the
audit's configuration, then one line per completed cycle carrying the
cycle's result dict *and* the alerts it tripped::

    {"kind": "header", "version": 1, "audit": "local", "fingerprint": {...}}
    {"kind": "cycle", "ordinal": 0, "result": {...}, "alerts": [...]}
    {"kind": "cycle", "ordinal": 1, "result": {...}, "alerts": [...]}

A cycle is **durable** once its line is flushed and fsynced; the line is
the atomic unit, so a daemon killed mid-write leaves at most one torn
tail, which :meth:`AuditStore.open` truncates before appending resumes.
Cycle ordinals must be consecutive from zero — an out-of-order line
marks the end of the durable prefix.  Because cycle results are a pure
function of the audit spec (and every float is journal-rounded before
serialization with ``sort_keys``), a store that is killed and resumed —
at any point, under any worker count — ends up **byte-identical** to an
uninterrupted run's store; the tests pin this down.

The store speaks plain dicts only; building result dicts is the
scheduler's job, mirroring the checkpoint module's division of labor.
"""

from __future__ import annotations

import json
import os
from typing import Iterator, List, Optional, Tuple

__all__ = ["AUDIT_STORE_VERSION", "AuditStore", "AuditStoreError"]

AUDIT_STORE_VERSION = 1


class AuditStoreError(RuntimeError):
    """The store file cannot be used with this audit."""


def _read_durable(path: str) -> Tuple[dict, List[dict], int]:
    """Header, consecutive cycle lines, and the durable byte offset."""
    lines: List[Tuple[dict, int]] = []
    with open(path, "rb") as handle:
        offset = 0
        for raw in handle:
            offset += len(raw)
            if not raw.endswith(b"\n"):
                break  # torn tail: the write in flight at death
            try:
                payload = json.loads(raw.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                break
            lines.append((payload, offset))
    if not lines:
        raise AuditStoreError(f"audit store {path!r} has no readable header")
    header, durable_end = lines[0]
    if header.get("kind") != "header":
        raise AuditStoreError(f"audit store {path!r} does not start with a header")
    if header.get("version") != AUDIT_STORE_VERSION:
        raise AuditStoreError(
            f"audit store {path!r} is version {header.get('version')}, "
            f"expected {AUDIT_STORE_VERSION}"
        )
    cycles: List[dict] = []
    for payload, end in lines[1:]:
        if payload.get("kind") != "cycle" or payload.get("ordinal") != len(cycles):
            break  # out-of-order journal: stop at the durable prefix
        cycles.append(payload)
        durable_end = end
    return header, cycles, durable_end


def _canonical_json(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


class AuditStore:
    """One audit's durable cycle/alert journal, opened for appending."""

    def __init__(self, path: str, handle, header: dict, cycles: List[dict]):
        self.path = path
        self._handle = handle
        self.header = header
        self._cycles = cycles

    @classmethod
    def open(cls, path: str, *, audit: str, fingerprint: dict) -> "AuditStore":
        """Create a fresh store, or resume an existing compatible one.

        An existing file must carry the same audit name and fingerprint
        (normalized through a JSON round-trip, since that is how it was
        journaled); anything after the durable prefix is truncated.

        Raises:
            AuditStoreError: unreadable header, version mismatch, or a
                name/fingerprint mismatch — resuming a store produced
                by a different audit configuration would silently mix
                incomparable series.
        """
        expected = json.loads(_canonical_json(fingerprint))
        if not os.path.exists(path):
            handle = open(path, "w", encoding="utf-8")
            header = {
                "kind": "header",
                "version": AUDIT_STORE_VERSION,
                "audit": audit,
                "fingerprint": expected,
            }
            store = cls(path, handle, header, [])
            store._write_line(header)
            return store
        header, cycles, durable_end = _read_durable(path)
        if header.get("audit") != audit:
            raise AuditStoreError(
                f"audit store {path!r} belongs to audit "
                f"{header.get('audit')!r}, not {audit!r}"
            )
        if header.get("fingerprint") != expected:
            raise AuditStoreError(
                f"audit store {path!r} was written by a different audit "
                "configuration; refusing to mix series"
            )
        if os.path.getsize(path) > durable_end:
            with open(path, "r+b") as tail:
                tail.truncate(durable_end)
        return cls(path, open(path, "a", encoding="utf-8"), header, cycles)

    @classmethod
    def read(cls, path: str) -> Tuple[dict, List[dict]]:
        """Read-only load of a store's header and durable cycles.

        For status tooling that has no spec to validate against; the
        file is left untouched (no truncation, no open handle).
        """
        header, cycles, _ = _read_durable(path)
        return header, cycles

    # -- appending -----------------------------------------------------------

    def append_cycle(self, result: dict, alerts: List[dict]) -> None:
        """Durably journal one completed cycle and its alerts.

        ``result["cycle"]`` must be the next consecutive ordinal — the
        scheduler only ever appends in cycle order, and the invariant is
        what lets :meth:`open` treat ordinals as the durable-prefix
        check.
        """
        ordinal = result.get("cycle")
        if ordinal != len(self._cycles):
            raise AuditStoreError(
                f"cycle {ordinal!r} out of order: store holds "
                f"{len(self._cycles)} cycle(s)"
            )
        payload = {
            "kind": "cycle",
            "ordinal": ordinal,
            "result": result,
            "alerts": alerts,
        }
        self._write_line(payload)
        self._cycles.append(json.loads(_canonical_json(payload)))

    def _write_line(self, payload: dict) -> None:
        self._handle.write(_canonical_json(payload) + "\n")
        self._handle.flush()
        os.fsync(self._handle.fileno())

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    # -- accessors -----------------------------------------------------------

    @property
    def cycles(self) -> List[dict]:
        """Durable cycle lines (``{"ordinal", "result", "alerts"}``)."""
        return self._cycles

    def results(self) -> List[dict]:
        """Every cycle's result dict, in cycle order."""
        return [cycle["result"] for cycle in self._cycles]

    def alerts(self) -> List[dict]:
        """Every journaled alert, in (cycle, series) order."""
        return [alert for cycle in self._cycles for alert in cycle["alerts"]]

    def alert_ledger_bytes(self) -> bytes:
        """The alert ledger as canonical JSONL bytes.

        This is the artifact the determinism tests compare: same spec +
        same schedule must yield identical bytes across kill/resume and
        worker counts.
        """
        return b"".join(
            (_canonical_json(alert) + "\n").encode("utf-8")
            for alert in self.alerts()
        )

    def series(
        self,
        *,
        metric: str = "net_edit",
        category: str,
        granularity: str,
    ) -> List[Optional[float]]:
        """One per-cycle curve: ``metric`` of a (category, granularity) cell.

        ``None`` entries mark cycles where the cell had no pairs (e.g.
        every page for the cell was lost to faults that cycle).
        """
        values: List[Optional[float]] = []
        for result in self.results():
            cell = result["cells"].get(category, {}).get(granularity)
            values.append(None if cell is None else cell.get(metric))
        return values

    def iter_cells(self) -> Iterator[Tuple[str, str]]:
        """Every (category, granularity) cell seen in any cycle, sorted."""
        seen = set()
        for result in self.results():
            for category, by_granularity in result["cells"].items():
                for granularity in by_granularity:
                    seen.add((category, granularity))
        return iter(sorted(seen))
