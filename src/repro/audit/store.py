"""The append-only audit store: a kill-safe journal of cycles and alerts.

Same durability model as the crawl checkpoint journal
(:mod:`repro.faults.checkpoint`), applied to audit results: one JSONL
file per registered audit, a header line whose fingerprint pins the
audit's configuration, then one line per completed cycle carrying the
cycle's result dict *and* the alerts it tripped::

    {"kind": "header", "version": 1, "audit": "local", "fingerprint": {...}}
    {"kind": "compact", "dropped": [{"cycle": 0, "values": {...}, "alerts": [...]}]}
    {"kind": "cycle", "ordinal": 1, "result": {...}, "alerts": [...]}

Every line is CRC32-framed through :mod:`repro.store` (legacy unframed
stores still load).  A cycle is **durable** once its line is flushed
and fsynced; the line is the atomic unit, so a daemon killed mid-write
leaves at most one torn tail, which :meth:`AuditStore.open` truncates
before appending resumes.  Cycle ordinals must be consecutive — an
out-of-order line marks the end of the durable prefix; a record that
fails its checksum *before* later valid data raises
:class:`~repro.store.record_log.StoreCorruption`.  Because cycle
results are a pure function of the audit spec (and every float is
journal-rounded before serialization with ``sort_keys``), a store that
is killed and resumed — at any point, under any worker count — ends up
**byte-identical** to an uninterrupted run's store; the tests pin this
down.

Retention: :meth:`AuditStore.compact` rewrites the store keeping only
the last N full cycle lines.  Dropped cycles collapse into the single
``compact`` line, which preserves exactly what the rest of the system
ever reads from old cycles — the drift-series values the scheduler
replays through its :class:`~repro.audit.drift.DriftMonitor` on
registration, and the alerts that make up the alert ledger — so
:meth:`alert_ledger_bytes` and the drift replay are bit-identical
before and after compaction (the tests prove it).  The rewrite goes to
a temp file that atomically replaces the store, directory fsync
included.

The store speaks plain dicts only; building result dicts is the
scheduler's job, mirroring the checkpoint module's division of labor.
"""

from __future__ import annotations

import json
import os
from typing import Callable, Iterator, List, Optional, Tuple

from repro.store.fileops import current_ops
from repro.store.record_log import RecordLogWriter, read_log

__all__ = ["AUDIT_STORE_VERSION", "AuditStore", "AuditStoreError"]

AUDIT_STORE_VERSION = 1


class AuditStoreError(RuntimeError):
    """The store file cannot be used with this audit."""


def _read_durable(path: str) -> Tuple[dict, List[dict], List[dict], int]:
    """Header, compacted entries, consecutive cycle lines, durable offset."""
    lines = read_log(path)
    if not lines:
        raise AuditStoreError(f"audit store {path!r} has no readable header")
    header, durable_end = lines[0]
    if header.get("kind") != "header":
        raise AuditStoreError(f"audit store {path!r} does not start with a header")
    if header.get("version") != AUDIT_STORE_VERSION:
        raise AuditStoreError(
            f"audit store {path!r} is version {header.get('version')}, "
            f"expected {AUDIT_STORE_VERSION}"
        )
    rest = lines[1:]
    compacted: List[dict] = []
    if rest and rest[0][0].get("kind") == "compact":
        compacted = rest[0][0].get("dropped", [])
        durable_end = rest[0][1]
        rest = rest[1:]
    cycles: List[dict] = []
    base = len(compacted)
    for payload, end in rest:
        if payload.get("kind") != "cycle" or payload.get("ordinal") != base + len(
            cycles
        ):
            break  # out-of-order journal: stop at the durable prefix
        cycles.append(payload)
        durable_end = end
    return header, compacted, cycles, durable_end


def _canonical_json(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


class AuditStore:
    """One audit's durable cycle/alert journal, opened for appending."""

    def __init__(
        self,
        path: str,
        log: RecordLogWriter,
        header: dict,
        cycles: List[dict],
        compacted: Optional[List[dict]] = None,
    ):
        self.path = path
        self._log = log
        self.header = header
        self._cycles = cycles
        self._compacted = compacted or []

    @classmethod
    def open(cls, path: str, *, audit: str, fingerprint: dict) -> "AuditStore":
        """Create a fresh store, or resume an existing compatible one.

        An existing file must carry the same audit name and fingerprint
        (normalized through a JSON round-trip, since that is how it was
        journaled); anything after the durable prefix is truncated.

        Raises:
            AuditStoreError: unreadable header, version mismatch, or a
                name/fingerprint mismatch — resuming a store produced
                by a different audit configuration would silently mix
                incomparable series.
        """
        expected = json.loads(_canonical_json(fingerprint))
        if not os.path.exists(path):
            header = {
                "kind": "header",
                "version": AUDIT_STORE_VERSION,
                "audit": audit,
                "fingerprint": expected,
            }
            store = cls(path, RecordLogWriter.create(path), header, [])
            store._write_line(header)
            return store
        header, compacted, cycles, durable_end = _read_durable(path)
        if header.get("audit") != audit:
            raise AuditStoreError(
                f"audit store {path!r} belongs to audit "
                f"{header.get('audit')!r}, not {audit!r}"
            )
        if header.get("fingerprint") != expected:
            raise AuditStoreError(
                f"audit store {path!r} was written by a different audit "
                "configuration; refusing to mix series"
            )
        if os.path.getsize(path) > durable_end:
            current_ops().truncate(path, durable_end)
        return cls(path, RecordLogWriter.append_to(path), header, cycles, compacted)

    @classmethod
    def read(cls, path: str) -> Tuple[dict, List[dict]]:
        """Read-only load of a store's header and durable cycles.

        For status tooling that has no spec to validate against; the
        file is left untouched (no truncation, no open handle).
        """
        header, _, cycles, _ = _read_durable(path)
        return header, cycles

    # -- appending -----------------------------------------------------------

    def append_cycle(self, result: dict, alerts: List[dict]) -> None:
        """Durably journal one completed cycle and its alerts.

        ``result["cycle"]`` must be the next consecutive ordinal — the
        scheduler only ever appends in cycle order, and the invariant is
        what lets :meth:`open` treat ordinals as the durable-prefix
        check.
        """
        ordinal = result.get("cycle")
        if ordinal != self.next_ordinal:
            raise AuditStoreError(
                f"cycle {ordinal!r} out of order: store holds "
                f"{self.next_ordinal} cycle(s)"
            )
        payload = {
            "kind": "cycle",
            "ordinal": ordinal,
            "result": result,
            "alerts": alerts,
        }
        self._write_line(payload)
        self._cycles.append(json.loads(_canonical_json(payload)))

    def _write_line(self, payload: dict) -> None:
        self._log.append(_canonical_json(payload))
        self._log.commit()

    def close(self) -> None:
        self._log.close()

    # -- retention -----------------------------------------------------------

    def compact(
        self,
        keep_last: int,
        *,
        series_values: Callable[[dict], dict],
    ) -> int:
        """Drop all but the last ``keep_last`` full cycle lines.

        Dropped cycles collapse into the store's single ``compact``
        line, each contributing ``{"cycle", "values", "alerts"}`` —
        ``values`` being ``series_values(result)``, the exact per-cycle
        series the scheduler's drift replay consumes.  The rewrite is
        atomic (temp file, fsync, replace, directory fsync) and the
        store stays open for appending afterwards; ordinals keep
        counting from where they were, so subsequent cycles are
        byte-identical to an uncompacted twin's.

        Returns the number of cycle lines dropped (0 = no rewrite).
        """
        if keep_last < 1:
            raise ValueError("keep_last must be >= 1")
        drop = len(self._cycles) - keep_last
        if drop <= 0:
            return 0
        dropped_entries = self._compacted + [
            {
                "cycle": cycle["ordinal"],
                "values": series_values(cycle["result"]),
                "alerts": cycle["alerts"],
            }
            for cycle in self._cycles[:drop]
        ]
        retained = self._cycles[drop:]
        ops = current_ops()
        temp = self.path + ".compact"
        rewrite = RecordLogWriter.create(temp)
        rewrite.append(_canonical_json(self.header))
        rewrite.append(_canonical_json({"kind": "compact", "dropped": dropped_entries}))
        for cycle in retained:
            rewrite.append(_canonical_json(cycle))
        rewrite.commit()
        rewrite.close()
        self._log.close()
        ops.replace(temp, self.path)
        ops.fsync_dir(os.path.dirname(self.path))
        self._log = RecordLogWriter.append_to(self.path)
        self._compacted = json.loads(json.dumps(dropped_entries))
        self._cycles = retained
        return drop

    # -- accessors -----------------------------------------------------------

    @property
    def cycles(self) -> List[dict]:
        """Retained full cycle lines (``{"ordinal", "result", "alerts"}``)."""
        return self._cycles

    @property
    def compacted(self) -> List[dict]:
        """Compacted-away cycles (``{"cycle", "values", "alerts"}``)."""
        return self._compacted

    @property
    def next_ordinal(self) -> int:
        """The ordinal the next appended cycle must carry."""
        return len(self._compacted) + len(self._cycles)

    def results(self) -> List[dict]:
        """Every retained cycle's result dict, in cycle order."""
        return [cycle["result"] for cycle in self._cycles]

    def alerts(self) -> List[dict]:
        """Every journaled alert — compacted and retained — in order."""
        return [
            alert for entry in self._compacted for alert in entry["alerts"]
        ] + [alert for cycle in self._cycles for alert in cycle["alerts"]]

    def alert_ledger_bytes(self) -> bytes:
        """The alert ledger as canonical JSONL bytes.

        This is the artifact the determinism tests compare: same spec +
        same schedule must yield identical bytes across kill/resume,
        worker counts, *and* compaction.
        """
        return b"".join(
            (_canonical_json(alert) + "\n").encode("utf-8")
            for alert in self.alerts()
        )

    def series(
        self,
        *,
        metric: str = "net_edit",
        category: str,
        granularity: str,
    ) -> List[Optional[float]]:
        """One per-cycle curve: ``metric`` of a (category, granularity) cell.

        Covers retained cycles only — compacted cycles keep their drift
        series in :attr:`compacted`, not their full cell grids.
        ``None`` entries mark cycles where the cell had no pairs (e.g.
        every page for the cell was lost to faults that cycle).
        """
        values: List[Optional[float]] = []
        for result in self.results():
            cell = result["cells"].get(category, {}).get(granularity)
            values.append(None if cell is None else cell.get(metric))
        return values

    def iter_cells(self) -> Iterator[Tuple[str, str]]:
        """Every (category, granularity) cell seen in any cycle, sorted."""
        seen = set()
        for result in self.results():
            for category, by_granularity in result["cells"].items():
                for granularity in by_granularity:
                    seen.add((category, granularity))
        return iter(sorted(seen))
