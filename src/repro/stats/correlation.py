"""Correlation coefficients with permutation significance tests.

Used by the demographics analysis (paper §3.2): Pearson and Spearman
coefficients between pairwise SERP similarity and pairwise demographic
distance, with a seeded permutation test for p-values — self-contained
and exactly reproducible.
"""

from __future__ import annotations

import math
from typing import Callable, List, Sequence

from repro.seeding import derive_rng

__all__ = ["pearson", "spearman", "permutation_pvalue"]


def pearson(x: Sequence[float], y: Sequence[float]) -> float:
    """Pearson product-moment correlation of two equal-length samples.

    Returns 0.0 when either sample is constant (correlation undefined).
    """
    if len(x) != len(y):
        raise ValueError(f"length mismatch: {len(x)} vs {len(y)}")
    if len(x) < 2:
        raise ValueError("need at least two observations")
    n = len(x)
    mean_x = sum(x) / n
    mean_y = sum(y) / n
    cov = sum((a - mean_x) * (b - mean_y) for a, b in zip(x, y))
    var_x = sum((a - mean_x) ** 2 for a in x)
    var_y = sum((b - mean_y) ** 2 for b in y)
    if var_x == 0 or var_y == 0:
        return 0.0
    return cov / math.sqrt(var_x * var_y)


def _ranks(values: Sequence[float]) -> List[float]:
    """Fractional ranks (ties get the average of their rank range)."""
    order = sorted(range(len(values)), key=lambda i: values[i])
    ranks = [0.0] * len(values)
    i = 0
    while i < len(order):
        j = i
        while j + 1 < len(order) and values[order[j + 1]] == values[order[i]]:
            j += 1
        average_rank = (i + j) / 2 + 1
        for k in range(i, j + 1):
            ranks[order[k]] = average_rank
        i = j + 1
    return ranks


def spearman(x: Sequence[float], y: Sequence[float]) -> float:
    """Spearman rank correlation (Pearson over fractional ranks)."""
    return pearson(_ranks(x), _ranks(y))


def permutation_pvalue(
    x: Sequence[float],
    y: Sequence[float],
    *,
    statistic: Callable[[Sequence[float], Sequence[float]], float] = pearson,
    iterations: int = 1000,
    seed: int = 0,
) -> float:
    """Two-sided permutation p-value for a correlation statistic.

    Shuffles ``y`` ``iterations`` times (seeded, reproducible) and
    reports the fraction of permutations whose |statistic| is at least
    the observed |statistic| (with the +1 small-sample correction).
    """
    if iterations <= 0:
        raise ValueError("iterations must be positive")
    observed = abs(statistic(x, y))
    rng = derive_rng(seed, "permutation-test", iterations)
    shuffled = list(y)
    at_least_as_extreme = 0
    for _ in range(iterations):
        rng.shuffle(shuffled)
        if abs(statistic(x, shuffled)) >= observed:
            at_least_as_extreme += 1
    return (at_least_as_extreme + 1) / (iterations + 1)
