"""Nonparametric significance tests and bootstrap intervals.

The paper reads personalization off bar charts against noise floors;
for a library release we also want formal statements — "is the
personalization distribution actually different from the noise
distribution?".  Implemented from scratch (no scipy): the Mann–Whitney
U test with normal approximation and tie correction, and seeded
bootstrap confidence intervals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.seeding import derive_rng
from repro.stats.correlation import _ranks

__all__ = ["MannWhitneyResult", "mann_whitney_u", "bootstrap_ci", "BootstrapCI"]


@dataclass(frozen=True)
class MannWhitneyResult:
    """Outcome of a two-sided Mann–Whitney U test."""

    u_statistic: float
    z_score: float
    p_value: float
    n_a: int
    n_b: int
    u_first: float = 0.0
    """U of the *first* sample (direction-preserving, unlike the
    two-sided ``u_statistic``)."""

    @property
    def significant(self) -> bool:
        """Conventional alpha = 0.05."""
        return self.p_value < 0.05

    @property
    def effect_size(self) -> float:
        """Rank-biserial correlation, in [-1, 1].

        0 means the two samples are stochastically identical; +1 means
        every value of the first sample exceeds every value of the
        second.  The p-value says *whether* distributions differ; this
        says *how much* — essential at the study's sample sizes, where
        trivial differences reach significance.
        """
        return 2.0 * self.u_first / (self.n_a * self.n_b) - 1.0


def _normal_sf(z: float) -> float:
    """Survival function of the standard normal (via erfc)."""
    return 0.5 * math.erfc(z / math.sqrt(2.0))


def mann_whitney_u(a: Sequence[float], b: Sequence[float]) -> MannWhitneyResult:
    """Two-sided Mann–Whitney U test with tie correction.

    Tests whether samples ``a`` and ``b`` come from distributions with
    the same location.  Uses the normal approximation, which is
    excellent at the sample sizes the analyses produce (hundreds to
    thousands of page comparisons).

    Raises:
        ValueError: if either sample is empty.
    """
    n_a, n_b = len(a), len(b)
    if n_a == 0 or n_b == 0:
        raise ValueError("both samples must be non-empty")
    combined = list(a) + list(b)
    ranks = _ranks(combined)
    rank_sum_a = sum(ranks[:n_a])
    u_a = rank_sum_a - n_a * (n_a + 1) / 2.0
    # Symmetric U for the two-sided test.
    u = min(u_a, n_a * n_b - u_a)

    mean_u = n_a * n_b / 2.0
    n = n_a + n_b
    # Tie correction on the variance.
    tie_counts: dict = {}
    for value in combined:
        tie_counts[value] = tie_counts.get(value, 0) + 1
    tie_term = sum(t**3 - t for t in tie_counts.values())
    variance = (n_a * n_b / 12.0) * ((n + 1) - tie_term / (n * (n - 1))) if n > 1 else 0.0
    if variance <= 0:
        # All values identical: no evidence of a difference.
        return MannWhitneyResult(
            u_statistic=u, z_score=0.0, p_value=1.0, n_a=n_a, n_b=n_b, u_first=u_a
        )
    z = (u_a - mean_u) / math.sqrt(variance)
    p = min(1.0, 2.0 * _normal_sf(abs(z)))
    return MannWhitneyResult(
        u_statistic=u, z_score=z, p_value=p, n_a=n_a, n_b=n_b, u_first=u_a
    )


@dataclass(frozen=True)
class BootstrapCI:
    """A bootstrap percentile confidence interval for a sample mean."""

    mean: float
    low: float
    high: float
    confidence: float
    resamples: int

    def contains(self, value: float) -> bool:
        """Whether ``value`` lies inside the interval."""
        return self.low <= value <= self.high

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} [{self.low:.3f}, {self.high:.3f}]"


def bootstrap_ci(
    values: Sequence[float],
    *,
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapCI:
    """Seeded percentile-bootstrap CI for the mean of ``values``.

    Deterministic for a given seed, so figures carry reproducible error
    estimates.

    Raises:
        ValueError: on an empty sample or a nonsensical confidence.
    """
    if not values:
        raise ValueError("cannot bootstrap an empty sample")
    if not 0.0 < confidence < 1.0:
        raise ValueError(f"confidence must be in (0, 1), got {confidence}")
    if resamples <= 0:
        raise ValueError("resamples must be positive")
    data: List[float] = list(values)
    n = len(data)
    mean = sum(data) / n
    rng = derive_rng(seed, "bootstrap", n, resamples)
    means: List[float] = []
    for _ in range(resamples):
        total = 0.0
        for _ in range(n):
            total += data[rng.randrange(n)]
        means.append(total / n)
    means.sort()
    alpha = (1.0 - confidence) / 2.0
    low_index = max(0, min(resamples - 1, int(math.floor(alpha * resamples))))
    high_index = max(0, min(resamples - 1, int(math.ceil((1.0 - alpha) * resamples)) - 1))
    return BootstrapCI(
        mean=mean,
        low=means[low_index],
        high=means[high_index],
        confidence=confidence,
        resamples=resamples,
    )
