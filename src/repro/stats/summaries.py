"""Mean / standard-deviation summaries.

The paper's bar figures report means with standard-deviation error bars;
this tiny module keeps that aggregation in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = ["MeanStd", "summarize"]


@dataclass(frozen=True)
class MeanStd:
    """A mean with its (population) standard deviation and sample count."""

    mean: float
    std: float
    count: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.count})"


def summarize(values: Iterable[float]) -> MeanStd:
    """Mean and population standard deviation of ``values``.

    Raises:
        ValueError: on an empty input — an empty cell in a figure is a
            bug upstream, not a zero.
    """
    data = list(values)
    if not data:
        raise ValueError("cannot summarize an empty sequence")
    mean = sum(data) / len(data)
    variance = sum((x - mean) ** 2 for x in data) / len(data)
    return MeanStd(mean=mean, std=math.sqrt(variance), count=len(data))
