"""Mean / standard-deviation summaries.

The paper's bar figures report means with standard-deviation error bars;
this module keeps that aggregation in one place — in two forms:

* :func:`summarize` — the batch aggregation the end-of-run analyses use;
* :class:`StreamingMeanStd` — the incremental counterpart the audit
  service (:mod:`repro.audit`) updates as crawl rounds land, with a
  :meth:`~StreamingMeanStd.merge` for combining shard-local streams.

Parity contract (pinned by tests): feeding the same values in the same
order, the streaming **mean and count are bit-identical** to
:func:`summarize` (the mean is a plain left-to-right running sum divided
at the end, exactly the batch expression).  The standard deviation uses
Welford's single-pass update, which agrees with the batch two-pass
formula to ~1e-12 relative — mathematically equal, but a different
floating-point evaluation order.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

__all__ = ["MeanStd", "StreamingMeanStd", "summarize"]


@dataclass(frozen=True)
class MeanStd:
    """A mean with its (population) standard deviation and sample count."""

    mean: float
    std: float
    count: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.3f} ± {self.std:.3f} (n={self.count})"


def summarize(values: Iterable[float]) -> MeanStd:
    """Mean and population standard deviation of ``values``.

    Raises:
        ValueError: on an empty input — an empty cell in a figure is a
            bug upstream, not a zero.
    """
    data = list(values)
    if not data:
        raise ValueError("cannot summarize an empty sequence")
    mean = sum(data) / len(data)
    variance = sum((x - mean) ** 2 for x in data) / len(data)
    return MeanStd(mean=mean, std=math.sqrt(variance), count=len(data))


@dataclass
class StreamingMeanStd:
    """One-pass mean/std accumulator (Welford), mergeable across streams.

    ``total`` is a plain running sum, so :attr:`mean` reproduces
    ``summarize(values).mean`` bit-for-bit on the same value order.
    ``m2`` is Welford's sum of squared deviations, updated around its
    own running mean (``_welford_mean``) for numerical stability.
    """

    count: int = 0
    total: float = 0.0
    m2: float = 0.0
    _welford_mean: float = 0.0

    def observe(self, value: float) -> None:
        """Fold one sample into the stream."""
        value = float(value)
        self.count += 1
        self.total += value
        delta = value - self._welford_mean
        self._welford_mean += delta / self.count
        self.m2 += delta * (value - self._welford_mean)

    def observe_many(self, values: Iterable[float]) -> None:
        """Fold an iterable of samples, in order."""
        for value in values:
            self.observe(value)

    @property
    def mean(self) -> float:
        """Running mean (0.0 on an empty stream)."""
        return self.total / self.count if self.count else 0.0

    @property
    def variance(self) -> float:
        """Population variance (0.0 on an empty stream)."""
        return self.m2 / self.count if self.count else 0.0

    @property
    def std(self) -> float:
        """Population standard deviation (0.0 on an empty stream)."""
        return math.sqrt(max(0.0, self.variance))

    def merge(self, other: "StreamingMeanStd") -> None:
        """Fold another stream into this one (Chan's parallel update).

        The merged ``count`` is exact; ``mean``/``std`` agree with the
        concatenated stream to floating-point reassociation (summing
        ``total_a + total_b`` instead of one long left-to-right chain).
        """
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.total = other.total
            self.m2 = other.m2
            self._welford_mean = other._welford_mean
            return
        combined = self.count + other.count
        delta = other._welford_mean - self._welford_mean
        self.m2 = self.m2 + other.m2 + delta * delta * self.count * other.count / combined
        self._welford_mean += delta * other.count / combined
        self.total += other.total
        self.count = combined

    def result(self) -> MeanStd:
        """The stream summarized as a :class:`MeanStd`.

        Raises:
            ValueError: on an empty stream, matching :func:`summarize`.
        """
        if not self.count:
            raise ValueError("cannot summarize an empty stream")
        return MeanStd(mean=self.mean, std=self.std, count=self.count)
