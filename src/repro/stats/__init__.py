"""Small statistics helpers shared by the analyses."""

from repro.stats.correlation import pearson, permutation_pvalue, spearman
from repro.stats.summaries import MeanStd, StreamingMeanStd, summarize

__all__ = [
    "pearson",
    "permutation_pvalue",
    "spearman",
    "MeanStd",
    "StreamingMeanStd",
    "summarize",
]
