"""Deterministic seed derivation for the whole reproduction.

Every stochastic decision in this repository — where a synthetic business
sits, which A/B bucket a request lands in, how a news pool rotates — is
drawn from a :class:`random.Random` instance whose seed is *derived*, not
chosen ad hoc.  Derivation walks a tree: a single master seed fans out
into child seeds via SHA-256 over a path of string labels.  Two
consequences follow:

* The entire study (world, engine, crawl, analysis, figures) regenerates
  bit-identically from one integer.
* Subsystems are *independent*: re-rolling the news pool does not perturb
  where POIs sit, because their seeds live on different branches.

Python's built-in ``hash()`` is salted per process and must never be used
for this purpose; everything here goes through :func:`hashlib.sha256`.

Hot path
--------
The ranker calls :func:`stable_hash` / :func:`stable_unit` per
(document, request) term — the innermost loop of a crawl.  Two LRU
caches keep that loop off the SHA-256 treadmill without changing a
single digest:

* a **result cache** keyed on the raw part tuple (``typed=True`` keeps
  ``1`` / ``True`` / ``1.0`` distinct, matching the canonical type
  tagging), so a repeated call is one C-level lookup with no encoding
  or hashing at all, and
* a **prefix-state cache** holding the hasher state for every proper
  prefix, so even a call whose last component is unique (a per-request
  nonce) only encodes and hashes that final component — the shared
  prefix is a cache hit plus a ``.copy()``.
"""

from __future__ import annotations

import hashlib
import random
from functools import lru_cache
from typing import Union

__all__ = [
    "derive_seed",
    "derive_rng",
    "stable_hash",
    "stable_unit",
    "digest_cache_info",
    "clear_digest_cache",
]

_SeedPart = Union[str, int, float, bool]

_SEED_TAG = b"repro-seed-v1"
_HASH_TAG = b"repro-hash-v1"


def _encode_part(part: _SeedPart) -> bytes:
    """Encode one path component canonically.

    Types are tagged so that ``derive_seed(s, 1)`` and
    ``derive_seed(s, "1")`` differ, and floats are serialised via
    ``repr`` which round-trips exactly in Python 3.
    """
    if isinstance(part, bool):  # must precede int: bool is an int subclass
        return b"b:" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"i:" + str(part).encode("ascii")
    if isinstance(part, float):
        return b"f:" + repr(part).encode("ascii")
    if isinstance(part, str):
        return b"s:" + part.encode("utf-8")
    raise TypeError(f"unsupported seed path component: {part!r}")


@lru_cache(maxsize=1 << 15, typed=True)
def _prefix_state(tag: bytes, *parts: _SeedPart):
    """Hasher state for ``tag`` plus each encoded part behind ``\\x00``.

    Cached objects are shared — callers must ``.copy()`` before
    updating, never mutate the returned hasher.
    """
    if not parts:
        return hashlib.sha256(tag)
    hasher = _prefix_state(tag, *parts[:-1]).copy()
    hasher.update(b"\x00")
    hasher.update(_encode_part(parts[-1]))
    return hasher


@lru_cache(maxsize=1 << 17, typed=True)
def _digest64(tag: bytes, *parts: _SeedPart) -> int:
    """First 8 digest bytes as an int; states cached per proper prefix."""
    if parts:
        hasher = _prefix_state(tag, *parts[:-1]).copy()
        hasher.update(b"\x00")
        hasher.update(_encode_part(parts[-1]))
    else:
        hasher = hashlib.sha256(tag)
    return int.from_bytes(hasher.digest()[:8], "big")


def digest_cache_info() -> dict:
    """Hit/miss counters of the two digest caches (for benchmarks)."""
    return {
        "digest": _digest64.cache_info()._asdict(),
        "prefix": _prefix_state.cache_info()._asdict(),
    }


def clear_digest_cache() -> None:
    """Drop both caches (cold-start measurements; results unchanged)."""
    _digest64.cache_clear()
    _prefix_state.cache_clear()


def derive_seed(master: int, *path: _SeedPart) -> int:
    """Derive a 64-bit child seed from ``master`` and a label path.

    >>> derive_seed(7, "web", "poi", "school") == derive_seed(7, "web", "poi", "school")
    True
    >>> derive_seed(7, "web") != derive_seed(8, "web")
    True
    """
    return _digest64(_SEED_TAG + _encode_part(master), *path)


def derive_rng(master: int, *path: _SeedPart) -> random.Random:
    """Return a :class:`random.Random` seeded at the derived child seed."""
    return random.Random(derive_seed(master, *path))


def stable_hash(*parts: _SeedPart) -> int:
    """A process-independent 64-bit hash of a tuple of primitives.

    Used where a *value*, not a stream, is needed — e.g. mapping a URL to
    a shard, or tie-breaking two documents with equal scores.
    """
    return _digest64(_HASH_TAG, *parts)


def stable_unit(*parts: _SeedPart) -> float:
    """A deterministic float in ``[0, 1)`` derived from ``parts``.

    Handy for probability gates ("does this request get a Maps card?")
    that must be reproducible and independent of draw order.
    """
    return stable_hash(*parts) / 2**64
