"""Deterministic seed derivation for the whole reproduction.

Every stochastic decision in this repository — where a synthetic business
sits, which A/B bucket a request lands in, how a news pool rotates — is
drawn from a :class:`random.Random` instance whose seed is *derived*, not
chosen ad hoc.  Derivation walks a tree: a single master seed fans out
into child seeds via SHA-256 over a path of string labels.  Two
consequences follow:

* The entire study (world, engine, crawl, analysis, figures) regenerates
  bit-identically from one integer.
* Subsystems are *independent*: re-rolling the news pool does not perturb
  where POIs sit, because their seeds live on different branches.

Python's built-in ``hash()`` is salted per process and must never be used
for this purpose; everything here goes through :func:`hashlib.sha256`.
"""

from __future__ import annotations

import hashlib
import random
from typing import Union

__all__ = ["derive_seed", "derive_rng", "stable_hash", "stable_unit"]

_SeedPart = Union[str, int, float, bool]


def _encode_part(part: _SeedPart) -> bytes:
    """Encode one path component canonically.

    Types are tagged so that ``derive_seed(s, 1)`` and
    ``derive_seed(s, "1")`` differ, and floats are serialised via
    ``repr`` which round-trips exactly in Python 3.
    """
    if isinstance(part, bool):  # must precede int: bool is an int subclass
        return b"b:" + (b"1" if part else b"0")
    if isinstance(part, int):
        return b"i:" + str(part).encode("ascii")
    if isinstance(part, float):
        return b"f:" + repr(part).encode("ascii")
    if isinstance(part, str):
        return b"s:" + part.encode("utf-8")
    raise TypeError(f"unsupported seed path component: {part!r}")


def derive_seed(master: int, *path: _SeedPart) -> int:
    """Derive a 64-bit child seed from ``master`` and a label path.

    >>> derive_seed(7, "web", "poi", "school") == derive_seed(7, "web", "poi", "school")
    True
    >>> derive_seed(7, "web") != derive_seed(8, "web")
    True
    """
    hasher = hashlib.sha256()
    hasher.update(b"repro-seed-v1")
    hasher.update(_encode_part(master))
    for part in path:
        hasher.update(b"\x00")
        hasher.update(_encode_part(part))
    return int.from_bytes(hasher.digest()[:8], "big")


def derive_rng(master: int, *path: _SeedPart) -> random.Random:
    """Return a :class:`random.Random` seeded at the derived child seed."""
    return random.Random(derive_seed(master, *path))


def stable_hash(*parts: _SeedPart) -> int:
    """A process-independent 64-bit hash of a tuple of primitives.

    Used where a *value*, not a stream, is needed — e.g. mapping a URL to
    a shard, or tie-breaking two documents with equal scores.
    """
    hasher = hashlib.sha256()
    hasher.update(b"repro-hash-v1")
    for part in parts:
        hasher.update(b"\x00")
        hasher.update(_encode_part(part))
    return int.from_bytes(hasher.digest()[:8], "big")


def stable_unit(*parts: _SeedPart) -> float:
    """A deterministic float in ``[0, 1)`` derived from ``parts``.

    Handy for probability gates ("does this request get a Maps card?")
    that must be reproducible and independent of draw order.
    """
    return stable_hash(*parts) / 2**64
