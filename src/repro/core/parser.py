"""Card-aware SERP parsing (paper §2.2, "Parsing").

The crawler saves raw mobile HTML; this parser recovers the ranked link
list the analyses operate on, following the paper's rule: *the first
link of each normal card, every link of Maps and News cards* — yielding
12–22 results per page.

Built on :class:`html.parser.HTMLParser` (no external dependencies), it
tracks card boundaries by ``class`` attributes and also extracts the
footer metadata the engine reports (detected location, datacenter,
day), which the paper's authors used to verify GPS spoofing worked.

Parsing is *dialect-aware*: each engine has its own HTML vocabulary
(:mod:`repro.engine.dialect`), and :func:`parse_serp_html` tries every
registered dialect until one matches — the multi-engine extension the
paper sketches in its conclusion.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from html import unescape
from html.parser import HTMLParser
from typing import Dict, List, Optional

from repro.engine.dialect import DIALECTS, EngineDialect
from repro.geo.coords import LatLon

__all__ = [
    "ResultType",
    "ParsedResult",
    "ParsedSerp",
    "parse_serp_html",
    "SerpParseError",
    "set_fast_scan",
]


class SerpParseError(ValueError):
    """Raised when a page is not a parsable SERP in any known dialect."""


class ResultType(enum.Enum):
    """Where on the page a result link came from."""

    NORMAL = "normal"
    MAPS = "maps"
    NEWS = "news"


@dataclass(frozen=True)
class ParsedResult:
    """One extracted result link."""

    url: str
    result_type: ResultType
    rank: int  # 1-based position in reading order


@dataclass(frozen=True)
class ParsedSerp:
    """A fully parsed result page."""

    query: str
    results: List[ParsedResult]
    reported_location: Optional[LatLon]
    datacenter: Optional[str]
    day: Optional[int]
    dialect: Optional[str] = None
    page: int = 0
    suggestions: tuple = ()
    """Related-search suggestions extracted from the strip under the
    results (a second personalization surface)."""

    def urls(self, result_type: Optional[ResultType] = None) -> List[str]:
        """Result URLs in rank order, optionally filtered by type."""
        return [
            r.url
            for r in self.results
            if result_type is None or r.result_type is result_type
        ]

    @property
    def is_captcha(self) -> bool:
        """Whether the page is a rate-limit interstitial (no results)."""
        return not self.results and self.query == ""

    @property
    def is_complete(self) -> bool:
        """Whether the page carries everything a study record needs.

        A truncated transfer can still parse — the results div opened
        and some cards arrived — but the footer metadata (detected
        location, datacenter, day) never did.  Such a page must be
        recorded as a structured failure, not silently stored with
        missing fields.
        """
        return (
            not self.is_captcha
            and self.day is not None
            and self.datacenter is not None
            and self.reported_location is not None
        )


class _SerpHTMLParser(HTMLParser):
    """Streaming extraction of cards, links, and footer metadata."""

    def __init__(self, dialect: EngineDialect) -> None:
        super().__init__(convert_charrefs=True)
        self.dialect = dialect
        self.results: List[ParsedResult] = []
        self.query: str = ""
        self.location: Optional[LatLon] = None
        self.datacenter: Optional[str] = None
        self.day: Optional[int] = None
        self.page: int = 0
        self.saw_results_div = False
        self.saw_captcha = False
        self._card_type: Optional[ResultType] = None
        self._card_link_taken = False
        self._in_location_note = False
        self._location_text: List[str] = []
        self._rank = 0
        self.suggestions: List[str] = []
        self._in_related_link = False
        self._related_text: List[str] = []

    # -- tag handling --------------------------------------------------------

    def handle_starttag(self, tag, attrs) -> None:
        attr_map = dict(attrs)
        classes = (attr_map.get("class") or "").split()
        dialect = self.dialect
        if tag == "div":
            if dialect.card_class in classes:
                self._card_type = self._card_type_from_classes(classes)
                self._card_link_taken = False
            if attr_map.get("id") == dialect.results_container_id:
                self.saw_results_div = True
            if attr_map.get("id") == dialect.captcha_id:
                self.saw_captcha = True
        elif tag == "input" and attr_map.get("name") == dialect.query_input_name:
            self.query = attr_map.get("value") or ""
        elif tag == "a" and dialect.link_class in classes:
            self._handle_result_link(attr_map.get("href"))
        elif tag == "a" and dialect.related_item_class in classes:
            self._in_related_link = True
            self._related_text = []
        elif tag == "span":
            if dialect.location_note_class in classes:
                self._in_location_note = True
                self._location_text = []
            elif dialect.datacenter_note_class in classes:
                self.datacenter = attr_map.get("data-dc")
            elif dialect.day_note_class in classes:
                raw_day = attr_map.get("data-day")
                if raw_day is not None and raw_day.lstrip("-").isdigit():
                    self.day = int(raw_day)
        elif tag == "nav" and "pagination" in classes:
            raw_page = attr_map.get("data-page")
            if raw_page is not None and raw_page.isdigit():
                self.page = int(raw_page)

    def handle_endtag(self, tag) -> None:
        if tag == "span" and self._in_location_note:
            self._in_location_note = False
            self._parse_location_text("".join(self._location_text))
        elif tag == "a" and self._in_related_link:
            self._in_related_link = False
            text = "".join(self._related_text).strip()
            if text:
                self.suggestions.append(text)

    def handle_data(self, data) -> None:
        if self._in_location_note:
            self._location_text.append(data)
        elif self._in_related_link:
            self._related_text.append(data)

    # -- helpers ------------------------------------------------------------

    def _card_type_from_classes(self, classes: List[str]) -> ResultType:
        if self.dialect.maps_class in classes:
            return ResultType.MAPS
        if self.dialect.news_class in classes:
            return ResultType.NEWS
        return ResultType.NORMAL

    def _handle_result_link(self, href: Optional[str]) -> None:
        if href is None or self._card_type is None:
            return
        if self._card_type is ResultType.NORMAL and self._card_link_taken:
            return  # paper's rule: first link only for normal cards
        self._card_link_taken = True
        self._rank += 1
        self.results.append(
            ParsedResult(url=href, result_type=self._card_type, rank=self._rank)
        )

    def _parse_location_text(self, text: str) -> None:
        # Footer reads "Results for <lat>,<lon> - reported by your device".
        for token in text.replace("Results for", "").split():
            if "," in token:
                lat_text, _, lon_text = token.partition(",")
                try:
                    self.location = LatLon(float(lat_text), float(lon_text))
                    return
                except ValueError:
                    continue


def _parse_with_dialect(html_text: str, dialect: EngineDialect) -> Optional[ParsedSerp]:
    parser = _SerpHTMLParser(dialect)
    parser.feed(html_text)
    parser.close()
    if parser.saw_captcha:
        return ParsedSerp(
            query="",
            results=[],
            reported_location=None,
            datacenter=None,
            day=None,
            dialect=dialect.name,
        )
    if not parser.saw_results_div:
        return None
    return ParsedSerp(
        query=parser.query,
        results=parser.results,
        reported_location=parser.location,
        datacenter=parser.datacenter,
        day=parser.day,
        dialect=dialect.name,
        page=parser.page,
        suggestions=tuple(parser.suggestions),
    )


# -- fast scan ---------------------------------------------------------------
#
# The engine's renderer emits a rigid skeleton: fixed head, one card per
# line, a single related-searches line, and a fixed footer.  For pages
# that match that skeleton exactly, a strict string scan extracts the
# same fields the streaming HTMLParser would — at a fraction of the
# cost (parsing is the dominant term of the crawl hot path).  Any
# deviation (truncated transfer, handcrafted markup, unknown layout)
# makes the scan bail out with None and the HTMLParser path takes over,
# so the scan can never change *what* is parsed, only how fast.

_HEAD_PREFIX = '<!DOCTYPE html>\n<html>\n<head>\n<meta name="viewport"'
_CAPTCHA_PREFIX = "<!DOCTYPE html><html><head><title>Unusual traffic</title></head>"
_PAGE_SUFFIX = "</body>\n</html>\n"


@dataclass(frozen=True)
class _ScanProfile:
    """Pre-concatenated landmark strings for one dialect (built once)."""

    query_marker: str
    container_marker: str
    container_close: str
    card_prefix: str
    link_marker: str
    related_marker: str
    loc_marker: str
    dc_marker: str
    day_marker: str
    page_marker: str
    captcha_marker: str
    subtype_map: Dict[str, ResultType]


_SCAN_PROFILES: Dict[str, _ScanProfile] = {}


def _scan_profile(dialect: EngineDialect) -> _ScanProfile:
    profile = _SCAN_PROFILES.get(dialect.name)
    if profile is None:
        profile = _ScanProfile(
            query_marker=f'<input name="{dialect.query_input_name}" value="',
            container_marker=f'<div id="{dialect.results_container_id}">\n',
            container_close=f'\n</div>\n<div class="{dialect.related_class}">',
            card_prefix=f'<div class="{dialect.card_class} ',
            link_marker=f'<a class="{dialect.link_class}" href="',
            related_marker=f'<a class="{dialect.related_item_class}" href="',
            loc_marker=(
                f'<span class="{dialect.location_note_class}">'
                'Results for <b class="loc">'
            ),
            dc_marker=f'<span class="{dialect.datacenter_note_class}" data-dc="',
            day_marker=f'<span class="{dialect.day_note_class}" data-day="',
            page_marker='<nav class="pagination" data-page="',
            captcha_marker=f"<div id='{dialect.captcha_id}'>",
            subtype_map={
                dialect.organic_class: ResultType.NORMAL,
                dialect.knowledge_class: ResultType.NORMAL,
                dialect.maps_class: ResultType.MAPS,
                dialect.news_class: ResultType.NEWS,
            },
        )
        _SCAN_PROFILES[dialect.name] = profile
    return profile


def _fast_scan_dialect(text: str, dialect: EngineDialect) -> Optional[ParsedSerp]:
    profile = _scan_profile(dialect)
    qpos = text.find(profile.query_marker)
    if qpos < 0:
        return None
    qstart = qpos + len(profile.query_marker)
    qend = text.find('"', qstart)
    if qend < 0:
        return None
    query = unescape(text[qstart:qend])

    cpos = text.find(profile.container_marker, qend)
    if cpos < 0:
        return None
    cards_start = cpos + len(profile.container_marker)
    cend = text.find(profile.container_close, cards_start)
    if cend < 0:
        return None

    results: List[ParsedResult] = []
    rank = 0
    link_marker = profile.link_marker
    marker_len = len(link_marker)
    if cend > cards_start:
        for line in text[cards_start:cend].split("\n"):
            if not line.startswith(profile.card_prefix) or not line.endswith("</div>"):
                return None
            cls_start = len(profile.card_prefix)
            cls_end = line.find('"', cls_start)
            if cls_end < 0:
                return None
            card_type = profile.subtype_map.get(line[cls_start:cls_end])
            if card_type is None:
                return None
            pos = cls_end
            first_only = card_type is ResultType.NORMAL
            while True:
                apos = line.find(link_marker, pos)
                if apos < 0:
                    break
                hstart = apos + marker_len
                hend = line.find('"', hstart)
                if hend < 0:
                    return None
                rank += 1
                results.append(
                    ParsedResult(
                        url=unescape(line[hstart:hend]),
                        result_type=card_type,
                        rank=rank,
                    )
                )
                if first_only:
                    break
                pos = hend

    rel_start = cend + len(profile.container_close)
    rel_end = text.find("</div>\n<footer>", rel_start)
    if rel_end < 0:
        return None
    suggestions: List[str] = []
    segment = text[rel_start:rel_end]
    pos = 0
    rel_marker = profile.related_marker
    while True:
        apos = segment.find(rel_marker, pos)
        if apos < 0:
            break
        hend = segment.find('">', apos + len(rel_marker))
        if hend < 0:
            return None
        tend = segment.find("</a>", hend)
        if tend < 0:
            return None
        text_value = unescape(segment[hend + 2 : tend]).strip()
        if text_value:
            suggestions.append(text_value)
        pos = tend + 4

    lpos = text.find(profile.loc_marker, rel_end)
    if lpos < 0:
        return None
    lstart = lpos + len(profile.loc_marker)
    lend = text.find("</b>", lstart)
    if lend < 0:
        return None
    lat_text, _, lon_text = text[lstart:lend].partition(",")
    try:
        location = LatLon(float(lat_text), float(lon_text))
    except ValueError:
        return None

    dpos = text.find(profile.dc_marker, lend)
    if dpos < 0:
        return None
    dstart = dpos + len(profile.dc_marker)
    dend = text.find('"', dstart)
    if dend < 0:
        return None
    datacenter = unescape(text[dstart:dend])

    ypos = text.find(profile.day_marker, dend)
    if ypos < 0:
        return None
    ystart = ypos + len(profile.day_marker)
    yend = text.find('"', ystart)
    if yend < 0:
        return None
    raw_day = text[ystart:yend]
    day = int(raw_day) if raw_day.lstrip("-").isdigit() else None

    ppos = text.find(profile.page_marker, yend)
    if ppos < 0:
        return None
    pstart = ppos + len(profile.page_marker)
    pend = text.find('"', pstart)
    if pend < 0:
        return None
    raw_page = text[pstart:pend]
    page = int(raw_page) if raw_page.isdigit() else 0

    return ParsedSerp(
        query=query,
        results=results,
        reported_location=location,
        datacenter=datacenter,
        day=day,
        dialect=dialect.name,
        page=page,
        suggestions=tuple(suggestions),
    )


def _fast_scan(
    html_text: str, candidates: List[EngineDialect]
) -> Optional[ParsedSerp]:
    if html_text.startswith(_CAPTCHA_PREFIX):
        for candidate in candidates:
            if _scan_profile(candidate).captcha_marker in html_text:
                return ParsedSerp(
                    query="",
                    results=[],
                    reported_location=None,
                    datacenter=None,
                    day=None,
                    dialect=candidate.name,
                )
        return None
    if not html_text.startswith(_HEAD_PREFIX) or not html_text.endswith(_PAGE_SUFFIX):
        return None
    for candidate in candidates:
        parsed = _fast_scan_dialect(html_text, candidate)
        if parsed is not None:
            return parsed
    return None


_fast_scan_enabled = True


def set_fast_scan(enabled: bool) -> bool:
    """Toggle the string-scan fast path (parity tests compare both).

    Returns the previous setting.
    """
    global _fast_scan_enabled
    previous = _fast_scan_enabled
    _fast_scan_enabled = bool(enabled)
    return previous


def parse_serp_html(
    html_text: str, *, dialect: Optional[EngineDialect] = None
) -> ParsedSerp:
    """Parse one saved page of mobile search results.

    Args:
        html_text: The raw page the crawler saved.
        dialect: Parse with one specific engine dialect; by default
            every registered dialect is tried in order.

    Raises:
        SerpParseError: if the page is neither a SERP nor a recognised
            CAPTCHA interstitial in any candidate dialect.
    """
    candidates = [dialect] if dialect is not None else DIALECTS
    if _fast_scan_enabled:
        parsed = _fast_scan(html_text, candidates)
        if parsed is not None:
            return parsed
    for candidate in candidates:
        parsed = _parse_with_dialect(html_text, candidate)
        if parsed is not None:
            return parsed
    raise SerpParseError(
        "page matches no registered engine dialect and is not a CAPTCHA"
    )
