"""Dataset-to-dataset diffing.

Auditing is longitudinal: you collect a dataset today and another after
an engine change (or a month later) and ask *what moved*.  This module
compares two datasets probe-by-probe — same (query, granularity,
location, day, copy) — and aggregates where and how much they differ.
Used by the cross-engine comparison and usable standalone for
before/after audits.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.datastore import SerpDataset
from repro.core.metrics import edit_distance, jaccard_index
from repro.core.rank_metrics import rank_biased_overlap
from repro.stats.summaries import MeanStd, summarize

__all__ = ["ProbeDiff", "DatasetDiff", "diff_datasets"]


@dataclass(frozen=True)
class ProbeDiff:
    """Difference of one shared probe between two datasets."""

    query: str
    category: str
    granularity: str
    location_name: str
    day: int
    copy_index: int
    jaccard: float
    edit: int
    rbo: float


@dataclass(frozen=True)
class DatasetDiff:
    """Aggregate difference between two datasets."""

    probes: List[ProbeDiff]
    only_in_a: int
    only_in_b: int

    @property
    def shared(self) -> int:
        """Number of probes present in both datasets."""
        return len(self.probes)

    @property
    def identical_fraction(self) -> float:
        """Fraction of shared probes with byte-identical result lists."""
        if not self.probes:
            return 1.0
        return sum(1 for p in self.probes if p.edit == 0) / len(self.probes)

    def jaccard(self) -> MeanStd:
        """Distribution of per-probe Jaccard overlap."""
        return summarize(p.jaccard for p in self.probes)

    def edit(self) -> MeanStd:
        """Distribution of per-probe edit distance."""
        return summarize(float(p.edit) for p in self.probes)

    def by_category(self) -> Dict[str, MeanStd]:
        """Mean edit distance per query category."""
        grouped: Dict[str, List[float]] = {}
        for probe in self.probes:
            grouped.setdefault(probe.category, []).append(float(probe.edit))
        return {category: summarize(vals) for category, vals in sorted(grouped.items())}

    def most_changed_queries(self, count: int = 10) -> List[Tuple[str, float]]:
        """Queries ranked by mean edit distance, largest first."""
        grouped: Dict[str, List[float]] = {}
        for probe in self.probes:
            grouped.setdefault(probe.query, []).append(float(probe.edit))
        ranked = sorted(
            ((query, summarize(vals).mean) for query, vals in grouped.items()),
            key=lambda pair: -pair[1],
        )
        return ranked[:count]

    def render(self) -> str:
        """A text summary of the diff."""
        lines = [
            f"dataset diff: {self.shared} shared probes "
            f"({self.only_in_a} only in A, {self.only_in_b} only in B)",
            f"identical pages: {self.identical_fraction:.1%}",
            f"jaccard {self.jaccard()}   edit {self.edit()}",
            "per category (mean edit):",
        ]
        for category, stats in self.by_category().items():
            lines.append(f"  {category:13s} {stats.mean:.2f}")
        lines.append("most changed queries:")
        for query, mean_edit in self.most_changed_queries(5):
            lines.append(f"  {query:24s} {mean_edit:.2f}")
        return "\n".join(lines)


def diff_datasets(dataset_a: SerpDataset, dataset_b: SerpDataset) -> DatasetDiff:
    """Compare two datasets probe-by-probe.

    Probes are matched on the full record key (query, granularity,
    location, day, copy); unmatched probes are counted, not compared.
    """
    probes: List[ProbeDiff] = []
    matched_keys = set()
    for record in dataset_a:
        twin = dataset_b.get(*record.key)
        if twin is None:
            continue
        matched_keys.add(record.key)
        probes.append(
            ProbeDiff(
                query=record.query,
                category=record.category,
                granularity=record.granularity,
                location_name=record.location_name,
                day=record.day,
                copy_index=record.copy_index,
                jaccard=jaccard_index(record.urls, twin.urls),
                edit=edit_distance(record.urls, twin.urls),
                rbo=rank_biased_overlap(record.urls, twin.urls),
            )
        )
    only_in_a = len(dataset_a) - len(matched_keys)
    only_in_b = len(dataset_b) - len(matched_keys)
    return DatasetDiff(probes=probes, only_in_a=only_in_a, only_in_b=only_in_b)
