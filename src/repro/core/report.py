"""Figure/table assembly and text rendering.

One builder per table/figure in the paper.  Each returns plain data
(lists of rows) and has a ``render_*`` companion producing an aligned
text table with the paper's expectation alongside the measured value,
so a benchmark run reads like EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.consistency import ConsistencyAnalysis, ConsistencySeries
from repro.core.datastore import SerpDataset
from repro.core.noise import NoiseAnalysis
from repro.core.parser import ResultType
from repro.core.personalization import PersonalizationAnalysis

__all__ = ["StudyReport", "CATEGORY_ORDER", "GRANULARITY_ORDER"]

#: Display order used by every figure (matches the paper's axes).
CATEGORY_ORDER = ["politician", "controversial", "local"]
GRANULARITY_ORDER = ["county", "state", "national"]

_GRANULARITY_LABELS = {
    "county": "County (Cuyahoga)",
    "state": "State (Ohio)",
    "national": "National (USA)",
}
_CATEGORY_LABELS = {
    "politician": "Politicians",
    "controversial": "Controversial",
    "local": "Local",
}


@dataclass(frozen=True)
class FigureRow:
    """One row of a rendered figure table."""

    label: str
    values: Dict[str, float]


def _format_table(headers: List[str], rows: List[List[str]]) -> str:
    widths = [
        max(len(headers[i]), max((len(r[i]) for r in rows), default=0))
        for i in range(len(headers))
    ]
    def fmt(cells):
        return "  ".join(cell.ljust(width) for cell, width in zip(cells, widths))
    lines = [fmt(headers), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rows)
    return "\n".join(lines)


class StudyReport:
    """All figure builders over one collected dataset."""

    def __init__(self, dataset: SerpDataset):
        self.dataset = dataset
        self.noise = NoiseAnalysis(dataset)
        self.personalization = PersonalizationAnalysis(dataset)

    # -- helpers ---------------------------------------------------------------

    def _present(self, order: List[str], available: List[str]) -> List[str]:
        return [value for value in order if value in available]

    def categories(self) -> List[str]:
        return self._present(CATEGORY_ORDER, self.dataset.categories())

    def granularities(self) -> List[str]:
        return self._present(GRANULARITY_ORDER, self.dataset.granularities())

    # -- Figure 2: noise ---------------------------------------------------------

    def fig2_rows(self) -> List[dict]:
        """Average noise per (granularity, category): Jaccard and edit."""
        rows = []
        for granularity in self.granularities():
            for category in self.categories():
                cell = self.noise.cell(category, granularity)
                rows.append(
                    {
                        "granularity": granularity,
                        "category": category,
                        "jaccard_mean": cell.jaccard.mean,
                        "jaccard_std": cell.jaccard.std,
                        "edit_mean": cell.edit.mean,
                        "edit_std": cell.edit.std,
                        "pairs": cell.jaccard.count,
                    }
                )
        return rows

    def render_fig2(self) -> str:
        rows = [
            [
                _GRANULARITY_LABELS[r["granularity"]],
                _CATEGORY_LABELS[r["category"]],
                f"{r['jaccard_mean']:.3f} ± {r['jaccard_std']:.3f}",
                f"{r['edit_mean']:.2f} ± {r['edit_std']:.2f}",
                str(r["pairs"]),
            ]
            for r in self.fig2_rows()
        ]
        return (
            "Figure 2 — noise (treatment vs control)\n"
            + _format_table(
                ["Granularity", "Query type", "Avg Jaccard", "Avg edit distance", "n"],
                rows,
            )
        )

    # -- Figure 3: per-term noise ---------------------------------------------------

    def fig3_rows(self, category: str = "local") -> List[dict]:
        """Per-term edit-distance noise at each granularity."""
        per_granularity = {
            granularity: self.noise.per_term(category, granularity)
            for granularity in self.granularities()
        }
        national = per_granularity.get("national") or next(iter(per_granularity.values()))
        terms = sorted(national, key=lambda t: national[t].edit.mean)
        rows = []
        for term in terms:
            row = {"term": term}
            for granularity, cells in per_granularity.items():
                row[granularity] = cells[term].edit.mean if term in cells else None
            rows.append(row)
        return rows

    def render_fig3(self) -> str:
        rows = [
            [r["term"]]
            + [
                f"{r[g]:.2f}" if r.get(g) is not None else "-"
                for g in self.granularities()
            ]
            for r in self.fig3_rows()
        ]
        return (
            "Figure 3 — per-term noise for local queries (edit distance)\n"
            + _format_table(
                ["Term"] + [_GRANULARITY_LABELS[g] for g in self.granularities()],
                rows,
            )
        )

    # -- Figure 4: noise by result type --------------------------------------------

    def fig4_rows(
        self, category: str = "local", granularity: str = "county"
    ) -> List[dict]:
        """Per-term noise split into All / Maps / News (county, local)."""
        all_noise = self.noise.per_term_type_breakdown(category, granularity)
        maps_noise = self.noise.per_term_type_breakdown(
            category, granularity, result_type=ResultType.MAPS
        )
        news_noise = self.noise.per_term_type_breakdown(
            category, granularity, result_type=ResultType.NEWS
        )
        terms = sorted(all_noise, key=lambda t: all_noise[t])
        return [
            {
                "term": term,
                "all": all_noise[term],
                "maps": maps_noise[term],
                "news": news_noise[term],
            }
            for term in terms
        ]

    def render_fig4(self) -> str:
        rows = [
            [r["term"], f"{r['all']:.2f}", f"{r['maps']:.2f}", f"{r['news']:.2f}"]
            for r in self.fig4_rows()
        ]
        return (
            "Figure 4 — noise caused by result types (local queries, county)\n"
            + _format_table(["Term", "All", "Maps", "News"], rows)
        )

    # -- Figure 5: personalization ----------------------------------------------------

    def fig5_rows(self) -> List[dict]:
        """Average personalization per (granularity, category) with the
        noise floor alongside (the black bars of the paper's figure)."""
        rows = []
        for granularity in self.granularities():
            for category in self.categories():
                cell = self.personalization.cell(category, granularity)
                rows.append(
                    {
                        "granularity": granularity,
                        "category": category,
                        "jaccard_mean": cell.jaccard.mean,
                        "jaccard_std": cell.jaccard.std,
                        "edit_mean": cell.edit.mean,
                        "edit_std": cell.edit.std,
                        "noise_jaccard": self.noise.noise_floor_jaccard(
                            category, granularity
                        ),
                        "noise_edit": self.noise.noise_floor_edit(category, granularity),
                        "pairs": cell.jaccard.count,
                    }
                )
        return rows

    def render_fig5(self) -> str:
        rows = [
            [
                _GRANULARITY_LABELS[r["granularity"]],
                _CATEGORY_LABELS[r["category"]],
                f"{r['jaccard_mean']:.3f} ± {r['jaccard_std']:.3f}",
                f"{r['edit_mean']:.2f} ± {r['edit_std']:.2f}",
                f"{r['noise_jaccard']:.3f}",
                f"{r['noise_edit']:.2f}",
            ]
            for r in self.fig5_rows()
        ]
        return (
            "Figure 5 — personalization (all treatment pairs; noise floor alongside)\n"
            + _format_table(
                [
                    "Granularity",
                    "Query type",
                    "Avg Jaccard",
                    "Avg edit distance",
                    "Noise J",
                    "Noise E",
                ],
                rows,
            )
        )

    # -- Figure 6: per-term personalization ----------------------------------------------

    def fig6_rows(self, category: str = "local") -> List[dict]:
        """Per-term personalization edit distance at each granularity."""
        per_granularity = {
            granularity: self.personalization.per_term(category, granularity)
            for granularity in self.granularities()
        }
        national = per_granularity.get("national") or next(iter(per_granularity.values()))
        terms = sorted(national, key=lambda t: national[t].edit.mean)
        rows = []
        for term in terms:
            row = {"term": term}
            for granularity, cells in per_granularity.items():
                row[granularity] = cells[term].edit.mean if term in cells else None
            rows.append(row)
        return rows

    def render_fig6(self) -> str:
        rows = [
            [r["term"]]
            + [
                f"{r[g]:.2f}" if r.get(g) is not None else "-"
                for g in self.granularities()
            ]
            for r in self.fig6_rows()
        ]
        return (
            "Figure 6 — per-term personalization for local queries (edit distance)\n"
            + _format_table(
                ["Term"] + [_GRANULARITY_LABELS[g] for g in self.granularities()],
                rows,
            )
        )

    # -- Figure 7: personalization by result type ------------------------------------------

    def fig7_rows(self) -> List[dict]:
        """Edit distance decomposed into Maps / News / Other."""
        rows = []
        for category in self.categories():
            for granularity in self.granularities():
                parts = self.personalization.type_decomposition(category, granularity)
                rows.append(
                    {
                        "category": category,
                        "granularity": granularity,
                        **parts,
                        "total": parts["maps"] + parts["news"] + parts["other"],
                    }
                )
        return rows

    def render_fig7(self) -> str:
        rows = [
            [
                _CATEGORY_LABELS[r["category"]],
                _GRANULARITY_LABELS[r["granularity"]],
                f"{r['maps']:.2f}",
                f"{r['news']:.2f}",
                f"{r['other']:.2f}",
                f"{r['total']:.2f}",
            ]
            for r in self.fig7_rows()
        ]
        return (
            "Figure 7 — personalization by result type (edit-distance components)\n"
            + _format_table(
                ["Query type", "Granularity", "Maps", "News", "Other", "Total"], rows
            )
        )

    # -- chart renderers -----------------------------------------------------------

    def render_fig2_chart(self) -> str:
        """Figure 2 as an ASCII bar chart (edit-distance noise)."""
        from repro.core.plotting import BarChart

        chart = BarChart(title="Figure 2 — edit-distance noise by cell", width=44)
        for row in self.fig2_rows():
            label = f"{_CATEGORY_LABELS[row['category']][:13]} @ {row['granularity']}"
            chart.add(label, row["edit_mean"])
        return chart.render()

    def render_fig5_chart(self) -> str:
        """Figure 5 as an ASCII bar chart with noise-floor ticks."""
        from repro.core.plotting import BarChart

        chart = BarChart(
            title="Figure 5 — personalization (| marks the noise floor)", width=44
        )
        for row in self.fig5_rows():
            label = f"{_CATEGORY_LABELS[row['category']][:13]} @ {row['granularity']}"
            chart.add(label, row["edit_mean"], mark=row["noise_edit"])
        return chart.render()

    def render_fig8_chart(self, granularity: str, *, max_series: int = 6) -> str:
        """Figure 8 as an ASCII line chart (noise floor + locations)."""
        from repro.core.plotting import LineChart

        series = self.fig8_series(granularity)
        chart = LineChart(
            title=(
                f"Figure 8 ({_GRANULARITY_LABELS[granularity]}) — per-day edit "
                f"distance to {series.baseline}"
            ),
            width=48,
            height=12,
        )
        chart.add_series("noise floor", series.noise_floor)
        for name in sorted(series.per_location)[: max_series - 1]:
            chart.add_series(name.split("/")[-1], series.per_location[name])
        return chart.render()

    # -- Figure 8: consistency over time -----------------------------------------------

    def fig8_series(
        self, granularity: str, *, baseline: Optional[str] = None
    ) -> ConsistencySeries:
        """The per-day baseline-comparison series for one granularity."""
        return ConsistencyAnalysis(self.dataset).series(granularity, baseline=baseline)

    def render_fig8(self, granularity: str) -> str:
        series = self.fig8_series(granularity)
        rows = [
            ["noise floor (control)"]
            + [f"{value:.2f}" for value in series.noise_floor]
        ]
        for name in sorted(series.per_location):
            rows.append(
                [name] + [f"{value:.2f}" for value in series.per_location[name]]
            )
        return (
            f"Figure 8 ({_GRANULARITY_LABELS[granularity]}) — edit distance to "
            f"baseline {series.baseline} per day\n"
            + _format_table(
                ["Location"] + [f"day {d + 1}" for d in series.days], rows
            )
        )
