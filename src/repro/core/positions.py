"""Positional analysis: where on the page do results change?

The edit distance says *how much* two pages differ; this analysis says
*where*.  For every rank position it computes the probability that two
pages (treatment pairs, or treatment/control pairs for noise) disagree
at that position — the page's volatility profile.  The pattern matching
real engines: the very top of a local SERP is the most stable real
estate, the bottom is contested, and for non-local queries the whole
page is frozen.

Also covers the suggestion strip: related searches are a second
personalization surface with zero noise (they are served from a
deterministic cache), so any cross-location suggestion difference is
pure personalization.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.metrics import jaccard_index
from repro.stats.summaries import MeanStd, summarize

__all__ = ["PositionalAnalysis"]


class PositionalAnalysis:
    """Per-rank volatility and suggestion overlap over a dataset."""

    def __init__(self, dataset: SerpDataset):
        self.dataset = dataset

    # -- pairs ------------------------------------------------------------------

    def _pairs(self, category: str, granularity: str, *, noise: bool):
        from repro.core.comparisons import iter_noise_pairs, iter_treatment_pairs

        if noise:
            yield from iter_noise_pairs(
                self.dataset, category=category, granularity=granularity
            )
        else:
            yield from iter_treatment_pairs(
                self.dataset, category=category, granularity=granularity
            )

    def _record_pairs(self, category: str, granularity: str, *, noise: bool):
        """Yield (record_a, record_b) tuples for the chosen comparison."""
        import itertools

        subset = self.dataset.filter(category=category, granularity=granularity)
        if noise:
            for record in subset:
                if record.copy_index != 0:
                    continue
                control = self.dataset.get(
                    record.query, granularity, record.location_name, record.day, 1
                )
                if control is not None:
                    yield record, control
        else:
            grouped: Dict[tuple, List[SerpRecord]] = {}
            for record in subset:
                if record.copy_index != 0:
                    continue
                grouped.setdefault((record.query, record.day), []).append(record)
            for records in grouped.values():
                records.sort(key=lambda r: r.location_name)
                yield from itertools.combinations(records, 2)

    # -- positional volatility ----------------------------------------------------

    def volatility_profile(
        self,
        category: str,
        granularity: str,
        *,
        noise: bool = False,
        depth: Optional[int] = None,
    ) -> List[float]:
        """P(results disagree) per rank position (1-indexed list order).

        Args:
            category: Query category to profile.
            granularity: Location granularity.
            noise: Profile treatment/control pairs instead of
                cross-location pairs.
            depth: Truncate the profile to this many positions
                (default: the shortest page seen).
        """
        disagreements: List[int] = []
        totals: List[int] = []
        for a, b in self._record_pairs(category, granularity, noise=noise):
            limit = min(len(a.urls), len(b.urls))
            if depth is not None:
                limit = min(limit, depth)
            while len(totals) < limit:
                totals.append(0)
                disagreements.append(0)
            for index in range(limit):
                totals[index] += 1
                if a.urls[index] != b.urls[index]:
                    disagreements[index] += 1
        if not totals:
            raise ValueError(f"no pairs for ({category!r}, {granularity!r})")
        return [
            disagreements[i] / totals[i] if totals[i] else 0.0
            for i in range(len(totals))
        ]

    def top_vs_bottom(
        self, category: str, granularity: str, *, split: int = 5
    ) -> Dict[str, float]:
        """Mean volatility of the top-``split`` vs remaining positions."""
        profile = self.volatility_profile(category, granularity)
        top = profile[:split]
        bottom = profile[split:]
        return {
            "top": sum(top) / len(top) if top else 0.0,
            "bottom": sum(bottom) / len(bottom) if bottom else 0.0,
        }

    # -- suggestions ---------------------------------------------------------------

    def suggestion_overlap(
        self, category: str, granularity: str, *, noise: bool = False
    ) -> MeanStd:
        """Jaccard overlap of suggestion strips across pairs."""
        values: List[float] = []
        for a, b in self._record_pairs(category, granularity, noise=noise):
            values.append(jaccard_index(a.suggestions, b.suggestions))
        if not values:
            raise ValueError(f"no pairs for ({category!r}, {granularity!r})")
        return summarize(values)

    def render_profile(self, category: str, granularity: str) -> str:
        """The volatility profile as an ASCII bar chart."""
        from repro.core.plotting import BarChart

        profile = self.volatility_profile(category, granularity)
        chart = BarChart(
            title=(
                f"positional volatility — {category} @ {granularity} "
                "(P(position differs))"
            ),
            width=40,
        )
        for index, value in enumerate(profile):
            chart.add(f"rank {index + 1:2d}", value)
        return chart.render()
