"""The measurement methodology — the paper's contribution.

Everything needed to audit a (simulated or real-protocol) search engine
for location-based personalization:

* a headless mobile-browser model with a Geolocation-API override
  (:mod:`repro.core.browser`);
* a card-aware SERP parser (:mod:`repro.core.parser`);
* comparison metrics — Jaccard index and edit distance
  (:mod:`repro.core.metrics`);
* the study design: lock-stepped treatment/control pairs across three
  location granularities over multiple days
  (:mod:`repro.core.experiment`, :mod:`repro.core.runner`);
* the analyses behind every figure: noise, personalization, result-type
  attribution, temporal consistency, GPS-vs-IP validation, and
  demographic correlation (:mod:`repro.core.analysis` modules).
"""

from repro.core.audit import AuditReport, audit_queries
from repro.core.browser import Fingerprint, GeolocationOverride, MobileBrowser, Network
from repro.core.datastore import IncrementalWriter, SerpDataset, SerpRecord, SerpResult
from repro.core.diff import DatasetDiff, diff_datasets
from repro.core.experiment import StudyConfig
from repro.core.metrics import damerau_levenshtein, edit_distance, jaccard_index
from repro.core.parser import ParsedSerp, ResultType, parse_serp_html
from repro.core.rank_metrics import kendall_tau, rank_biased_overlap, top_k_overlap
from repro.core.reportcard import generate_markdown
from repro.core.runner import Study
from repro.core.schedule import simulate_crawl_schedule

__all__ = [
    "AuditReport",
    "audit_queries",
    "Fingerprint",
    "GeolocationOverride",
    "MobileBrowser",
    "Network",
    "IncrementalWriter",
    "SerpDataset",
    "SerpRecord",
    "SerpResult",
    "DatasetDiff",
    "diff_datasets",
    "StudyConfig",
    "damerau_levenshtein",
    "edit_distance",
    "jaccard_index",
    "ParsedSerp",
    "ResultType",
    "parse_serp_html",
    "kendall_tau",
    "rank_biased_overlap",
    "top_k_overlap",
    "generate_markdown",
    "Study",
    "simulate_crawl_schedule",
]
