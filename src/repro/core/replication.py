"""Multi-seed replication: are the findings seed artifacts?

The whole study is deterministic given a seed — which invites the
question whether a finding (say, "the county→state jump is the biggest
step") is a property of the *system* or a fluke of one synthetic-world
draw.  :func:`replicate` reruns a reduced study across several seeds
and aggregates the headline metrics, so every claim can be reported as
mean ± std over independent worlds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.experiment import StudyConfig
from repro.core.noise import NoiseAnalysis
from repro.core.personalization import PersonalizationAnalysis
from repro.core.runner import Study
from repro.stats.summaries import MeanStd, summarize

__all__ = ["SeedOutcome", "ReplicationResult", "replicate"]

_GRANULARITIES = ("county", "state", "national")


@dataclass(frozen=True)
class SeedOutcome:
    """Headline metrics from one seed's study."""

    seed: int
    local_noise: float
    local_edit: Dict[str, float]  # per granularity
    local_net: Dict[str, float]
    controversial_net_national: float
    politician_net_national: float

    @property
    def gradient_holds(self) -> bool:
        """county < state < national for local personalization."""
        return (
            self.local_edit["county"]
            < self.local_edit["state"]
            < self.local_edit["national"]
        )

    @property
    def county_state_jump_is_largest(self) -> bool:
        """The paper's 'especially high between county and state'."""
        return (self.local_edit["state"] - self.local_edit["county"]) > (
            self.local_edit["national"] - self.local_edit["state"]
        )


@dataclass(frozen=True)
class ReplicationResult:
    """Aggregate over all replicated seeds."""

    outcomes: List[SeedOutcome]

    @property
    def seeds(self) -> int:
        return len(self.outcomes)

    def gradient_fraction(self) -> float:
        """Fraction of seeds where the distance gradient holds."""
        return sum(o.gradient_holds for o in self.outcomes) / self.seeds

    def jump_fraction(self) -> float:
        """Fraction of seeds where the county→state jump is largest."""
        return sum(o.county_state_jump_is_largest for o in self.outcomes) / self.seeds

    def local_net(self, granularity: str) -> MeanStd:
        """Net local personalization across seeds."""
        return summarize(o.local_net[granularity] for o in self.outcomes)

    def local_noise(self) -> MeanStd:
        """Local noise floor across seeds."""
        return summarize(o.local_noise for o in self.outcomes)

    def render(self) -> str:
        """A text summary of the replication."""
        lines = [
            f"multi-seed replication ({self.seeds} independent worlds)",
            f"  distance gradient holds:      {self.gradient_fraction():.0%} of seeds",
            f"  county→state jump largest:    {self.jump_fraction():.0%} of seeds",
            f"  local noise floor:            {self.local_noise()}",
        ]
        for granularity in _GRANULARITIES:
            lines.append(
                f"  net local @ {granularity:8s}          {self.local_net(granularity)}"
            )
        lines.append(
            "  non-local near noise:         "
            + ", ".join(
                f"{o.controversial_net_national:.2f}" for o in self.outcomes[:5]
            )
            + " (controversial, national)"
        )
        return "\n".join(lines)


def replicate(
    seeds: Sequence[int],
    *,
    base_config: Optional[StudyConfig] = None,
    locations_per_granularity: int = 6,
    days: int = 1,
) -> ReplicationResult:
    """Run the reduced study once per seed and aggregate.

    Args:
        seeds: Independent seeds (each builds its own world + engine +
            location sample).
        base_config: Template configuration; per-seed configs override
            only the seed.  Defaults to a balanced reduced corpus.
        locations_per_granularity: Study size when no template given.
        days: Days per study when no template given.
    """
    if not seeds:
        raise ValueError("need at least one seed")
    if len(set(seeds)) != len(seeds):
        raise ValueError("seeds must be distinct")

    outcomes: List[SeedOutcome] = []
    for seed in seeds:
        if base_config is not None:
            config = base_config.with_overrides(seed=seed)
        else:
            from repro.queries.corpus import build_corpus
            from repro.queries.model import QueryCategory

            corpus = build_corpus()
            local = corpus.by_category(QueryCategory.LOCAL)
            queries = (
                [q for q in local if not q.is_brand][:6]
                + [q for q in local if q.is_brand][:2]
                + corpus.by_category(QueryCategory.CONTROVERSIAL)[:4]
                + corpus.by_category(QueryCategory.POLITICIAN)[:4]
            )
            config = StudyConfig.small(
                queries,
                seed=seed,
                days=days,
                locations_per_granularity=locations_per_granularity,
            )
        dataset = Study(config).run()
        personalization = PersonalizationAnalysis(dataset)
        noise = NoiseAnalysis(dataset)
        outcomes.append(
            SeedOutcome(
                seed=seed,
                local_noise=noise.cell("local", "county").edit.mean,
                local_edit={
                    g: personalization.cell("local", g).edit.mean
                    for g in _GRANULARITIES
                },
                local_net={
                    g: personalization.net_edit("local", g) for g in _GRANULARITIES
                },
                controversial_net_national=personalization.net_edit(
                    "controversial", "national"
                ),
                politician_net_national=personalization.net_edit(
                    "politician", "national"
                ),
            )
        )
    return ReplicationResult(outcomes=outcomes)
