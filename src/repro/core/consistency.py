"""Temporal-consistency analysis (paper §3.2, Figure 8).

For each granularity, one location serves as a *baseline*; every other
location is compared to it day by day (mean edit distance over local
queries).  The baseline's own treatment/control comparison gives the
noise floor (the red line).  The paper observes that personalization is
stable over time and that, at county granularity, some locations
*cluster* near the baseline — they receive nearly identical results.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.comparisons import compare_records
from repro.core.datastore import SerpDataset
from repro.stats.summaries import summarize

__all__ = ["ConsistencySeries", "ConsistencyAnalysis"]


@dataclass(frozen=True)
class ConsistencySeries:
    """Fig. 8 data for one granularity."""

    granularity: str
    baseline: str
    days: List[int]
    noise_floor: List[float]  # baseline treatment vs its control, per day
    per_location: Dict[str, List[float]]  # location -> per-day mean edit

    def location_means(self) -> Dict[str, float]:
        """Each location's across-day mean distance to the baseline."""
        return {
            name: summarize(series).mean
            for name, series in self.per_location.items()
        }

    def clustered_locations(self, *, margin: float = 1.0) -> List[str]:
        """Locations whose mean distance sits within ``margin`` edit
        operations of the noise floor — the Fig. 8a "clusters"."""
        floor = summarize(self.noise_floor).mean
        return sorted(
            name
            for name, mean in self.location_means().items()
            if mean <= floor + margin
        )


class ConsistencyAnalysis:
    """Per-day baseline comparisons over one dataset."""

    def __init__(self, dataset: SerpDataset, *, category: str = "local"):
        self.dataset = dataset
        self.category = category

    def series(
        self, granularity: str, *, baseline: Optional[str] = None
    ) -> ConsistencySeries:
        """Build the Fig. 8 panel for one granularity.

        Args:
            granularity: Granularity value ("county" / "state" /
                "national").
            baseline: Baseline location name; defaults to the first
                location collected at this granularity.
        """
        locations = self.dataset.locations(granularity)
        if not locations:
            raise ValueError(f"no locations at granularity {granularity!r}")
        baseline = baseline or locations[0]
        if baseline not in locations:
            raise ValueError(f"unknown baseline location: {baseline!r}")
        queries = self.dataset.queries(category=self.category)
        if not queries:
            raise ValueError(f"no {self.category!r} queries in dataset")
        days = self.dataset.days()

        noise_floor: List[float] = []
        per_location: Dict[str, List[float]] = {
            name: [] for name in locations if name != baseline
        }
        for day in days:
            noise_values: List[float] = []
            distance_values: Dict[str, List[float]] = {
                name: [] for name in per_location
            }
            for query in queries:
                base_record = self.dataset.get(query, granularity, baseline, day, 0)
                if base_record is None:
                    continue
                control = self.dataset.get(query, granularity, baseline, day, 1)
                if control is not None:
                    noise_values.append(float(compare_records(base_record, control).edit))
                for name in distance_values:
                    other = self.dataset.get(query, granularity, name, day, 0)
                    if other is not None:
                        distance_values[name].append(
                            float(compare_records(base_record, other).edit)
                        )
            noise_floor.append(summarize(noise_values).mean if noise_values else 0.0)
            for name, values in distance_values.items():
                per_location[name].append(summarize(values).mean if values else 0.0)

        return ConsistencySeries(
            granularity=granularity,
            baseline=baseline,
            days=days,
            noise_floor=noise_floor,
            per_location=per_location,
        )

    def pairwise_location_means(self, granularity: str) -> Dict[tuple, float]:
        """Mean edit distance for every location pair (across queries/days)."""
        import itertools

        locations = sorted(self.dataset.locations(granularity))
        queries = self.dataset.queries(category=self.category)
        days = self.dataset.days()
        means: Dict[tuple, float] = {}
        for name_a, name_b in itertools.combinations(locations, 2):
            values: List[float] = []
            for query in queries:
                for day in days:
                    record_a = self.dataset.get(query, granularity, name_a, day, 0)
                    record_b = self.dataset.get(query, granularity, name_b, day, 0)
                    if record_a is not None and record_b is not None:
                        values.append(float(compare_records(record_a, record_b).edit))
            if values:
                means[(name_a, name_b)] = summarize(values).mean
        return means

    def noise_floor(self, granularity: str) -> float:
        """Mean treatment/control edit distance across all locations."""
        values: List[float] = []
        for record in self.dataset.filter(
            category=self.category, granularity=granularity
        ):
            if record.copy_index != 0:
                continue
            control = self.dataset.get(
                record.query, granularity, record.location_name, record.day, 1
            )
            if control is not None:
                values.append(float(compare_records(record, control).edit))
        if not values:
            raise ValueError(f"no control pairs at granularity {granularity!r}")
        return summarize(values).mean

    def cluster_groups(
        self, granularity: str, *, margin: float = 1.0
    ) -> List[List[str]]:
        """Groups of locations receiving near-identical results.

        Two locations belong to the same group when their mean pairwise
        edit distance is within ``margin`` of the noise floor — i.e.
        their differences are indistinguishable from noise.  Groups of
        size ≥ 2 are the paper's county-level "clusters" (Fig. 8a),
        independent of which location is drawn as the baseline.
        """
        locations = sorted(self.dataset.locations(granularity))
        threshold = self.noise_floor(granularity) + margin
        parent = {name: name for name in locations}

        def find(name: str) -> str:
            while parent[name] != name:
                parent[name] = parent[parent[name]]
                name = parent[name]
            return name

        for (name_a, name_b), mean in self.pairwise_location_means(granularity).items():
            if mean <= threshold:
                parent[find(name_a)] = find(name_b)
        groups: Dict[str, List[str]] = {}
        for name in locations:
            groups.setdefault(find(name), []).append(name)
        return sorted(
            (sorted(group) for group in groups.values() if len(group) >= 2),
            key=len,
            reverse=True,
        )

    def day_to_day_stability(self, granularity: str) -> float:
        """Max absolute day-to-day change of the mean distance curve.

        Small values quantify the paper's "the amount of personalization
        is stable over time".
        """
        series = self.series(granularity)
        all_means: List[float] = []
        for day_index in range(len(series.days)):
            day_values = [
                values[day_index] for values in series.per_location.values()
            ]
            all_means.append(summarize(day_values).mean)
        if len(all_means) < 2:
            return 0.0
        return max(
            abs(b - a) for a, b in zip(all_means, all_means[1:])
        )
