"""Study orchestration: wiring the crawl and running it.

:class:`Study` builds the whole apparatus — synthetic web, engine,
datacenters, DNS (pinned or not), GeoIP, the 44-machine crawl fleet,
one browser pair per location — then executes the paper's schedule:

* queries are split into day-blocks (the paper ran the 120
  local+controversial terms for 5 days, then the 120 politicians);
* within a day, query rounds run in **lock step**: every location and
  its control issue the same term at the same virtual minute;
* rounds are spaced 11 minutes apart, above the engine's 10-minute
  session window;
* cookies are cleared after every query.

The crawl can optionally flow through the serving gateway
(``route_via_gateway``): one engine replica per datacenter behind
routing and admission control, byte-identical to the direct path as
long as the SERP cache stays disabled.

The runner is hardened against the failure modes the paper's PhantomJS
fleet actually hit (and a :class:`~repro.faults.plan.FaultPlan` can
inject deterministically): browser crashes restart the browser, DNS
failures / timeouts / 5xx / truncated pages surface as structured
:class:`CrawlFailure` records with a :class:`~repro.faults.plan.
FailureKind` taxonomy, retries follow a shared capped-backoff
:class:`~repro.faults.retry.RetryPolicy`, repeated failures from one
machine trip a per-IP circuit breaker, and ``run(checkpoint=path)``
journals each round so a killed crawl resumes byte-identically.

The result is a :class:`SerpDataset` the analysis modules consume.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.browser import MobileBrowser, Network
from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.experiment import StudyConfig
from repro.core.parser import SerpParseError, parse_serp_html
from repro.engine.datacenters import DatacenterCluster
from repro.engine.frontend import SearchEngine
from repro.engine.request import ResponseStatus
from repro.faults.breaker import BreakerBoard
from repro.faults.checkpoint import (
    CHECKPOINT_VERSION,
    CheckpointWriter,
    load_checkpoint,
)
from repro.faults.injector import (
    BrowserCrash,
    FaultStats,
    FaultyNetwork,
    RequestTimeout,
)
from repro.faults.plan import FailureKind, FaultPlan
from repro.faults.retry import RetryPolicy
from repro.geo.granularity import Granularity, StudyLocations, select_study_locations
from repro.geo.regions import Region
from repro.net.dns import DNSResolver, ResolutionError
from repro.net.geoip import GeoIPDatabase
from repro.net.machines import MachineFleet
from repro.obs.metrics import MetricSet
from repro.obs.trace import Tracer, trace_id_for
from repro.queries.corpus import QueryCorpus
from repro.queries.model import Query
from repro.seeding import derive_seed, stable_hash
from repro.serve.gateway import Gateway, build_replicas
from repro.web.world import WebWorld

__all__ = [
    "Study",
    "CrawlFailure",
    "CrawlStats",
    "ScheduledRound",
    "serialize_outcome",
    "deserialize_outcome",
]

MINUTES_PER_DAY = 24 * 60

#: Failure kinds that count against a machine's circuit breaker: the
#: endpoint (or the path to it) misbehaved.  A browser crash is the
#: client's own fault and a fast-fail issued no request at all, so
#: neither feeds the breaker.
_BREAKER_TRIP_KINDS = frozenset(
    {
        FailureKind.DNS_FAILURE,
        FailureKind.TIMEOUT,
        FailureKind.SERVER_ERROR,
        FailureKind.RATE_LIMITED,
        FailureKind.RATE_LIMIT_STORM,
        FailureKind.OVERLOADED,
        FailureKind.MALFORMED_SERP,
    }
)


@dataclass(frozen=True)
class CrawlFailure:
    """One query that did not produce a usable result page.

    ``kind`` is the machine-readable taxonomy entry (a
    :class:`~repro.faults.plan.FailureKind` value); ``reason`` remains
    the human-readable field older tooling prints.
    """

    query: str
    location_name: str
    day: int
    copy_index: int
    reason: str
    kind: str = FailureKind.RATE_LIMITED.value


@dataclass
class CrawlStats(MetricSet):
    """Counters for one study run.

    Every field is a plain sum (``failures_by_kind`` sums per key), so
    stats from sharded workers merge associatively into exactly the
    sequential counters; snapshot/merge/restore come from
    :class:`~repro.obs.metrics.MetricSet`.
    """

    requests: int = 0
    retries: int = 0
    captchas: int = 0
    pages: int = 0
    crashes: int = 0
    """Browser crashes absorbed by restart-and-retry."""
    dns_failures: int = 0
    timeouts: int = 0
    server_errors: int = 0
    malformed: int = 0
    """Pages that came back 200 but were not complete SERPs."""
    overloads: int = 0
    """Requests shed by the serving gateway (every queue full)."""
    breaker_fastfails: int = 0
    """Attempts suppressed because the machine's breaker was open."""
    failures_by_kind: Dict[str, int] = field(default_factory=dict)
    """Terminal failures by :class:`FailureKind` value."""

    def record_failure_kind(self, kind: str) -> None:
        self.failures_by_kind[kind] = self.failures_by_kind.get(kind, 0) + 1


@dataclass(frozen=True)
class ScheduledRound:
    """One lock-step round of the study schedule.

    ``ordinal`` is the round's global position (0-based, schedule
    order) — the canonical sort key the parallel executor merges shard
    results by, and the granularity of crawl checkpoints.
    """

    ordinal: int
    query: Query
    day_offset: int
    timestamp: float


@dataclass
class _Treatment:
    """One (granularity, location, copy) vantage point and its browser."""

    granularity: Granularity
    region: Region
    copy_index: int
    browser: MobileBrowser


def serialize_outcome(outcome: Union[SerpRecord, CrawlFailure]) -> dict:
    """One round outcome as a checkpoint-journal dict."""
    if isinstance(outcome, CrawlFailure):
        return {"f": asdict(outcome)}
    return {"r": outcome.to_dict()}


def deserialize_outcome(payload: dict) -> Union[SerpRecord, CrawlFailure]:
    """Inverse of :func:`serialize_outcome` (exact round-trip)."""
    if "f" in payload:
        return CrawlFailure(**payload["f"])
    return SerpRecord.from_dict(payload["r"])


class Study:
    """A fully wired, runnable instance of the paper's experiment."""

    def __init__(self, config: Optional[StudyConfig] = None):
        self.config = config or StudyConfig()
        seed = self.config.seed

        if self.config.study_locations is not None:
            self.locations: StudyLocations = self.config.study_locations
        else:
            self.locations = select_study_locations(
                seed,
                state_count=self.config.state_count,
                county_count=self.config.county_count,
                district_count=self.config.district_count,
            )
        self.world = WebWorld(derive_seed(seed, "world"), locator=self.config.locator)
        self.cluster = DatacenterCluster(hostname=self.config.dialect.hostname)
        self.resolver = DNSResolver()
        self.cluster.install_into(self.resolver)
        if self.config.pin_datacenter:
            self.resolver.pin(self.cluster.hostname, self.cluster[0].frontend_ip)

        self.geoip = GeoIPDatabase()
        self.fleet = MachineFleet.crawl_fleet(count=self.config.machine_count)
        self.geoip.register_fleet(self.fleet)

        corpus = QueryCorpus(queries=list(self.config.queries))
        engine_seed = derive_seed(seed, "engine", self.config.dialect.name)
        self.engine = SearchEngine(
            self.world,
            self.cluster,
            self.geoip,
            corpus=corpus,
            calibration=self.config.calibration,
            seed=engine_seed,
            dialect=self.config.dialect,
        )
        self.gateway: Optional[Gateway] = None
        if self.config.route_via_gateway:
            # Queues must absorb one full lock-step round (every
            # treatment fires at the same virtual minute), or the
            # gateway would shed requests the direct path serves.
            round_burst = self.locations.total() * self.config.copies_per_location
            replicas = build_replicas(
                self.world,
                self.cluster,
                self.geoip,
                corpus=corpus,
                calibration=self.config.calibration,
                seed=engine_seed,
                dialect=self.config.dialect,
                queue_capacity=max(32, round_burst),
                # Scoring is pure in (world, calibration, seed): one
                # memo layer serves every datacenter, so replicas skip
                # their own static-pool warm-up entirely.
                ranker=self.engine.ranker,
            )
            self.gateway = Gateway(
                replicas,
                self.geoip,
                policy=self.config.gateway_routing,
                cache_size=self.config.gateway_cache_size,
                cell_miles=self.config.calibration.snap_cell_miles,
            )

        self.fault_plan: Optional[FaultPlan] = self.config.fault_plan
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise TypeError("config.fault_plan must be a FaultPlan or None")
        self.fault_stats = FaultStats()
        serving_surface = self.gateway or self.engine
        if self.fault_plan is not None:
            self.network: Network = FaultyNetwork(
                self.resolver, serving_surface, self.fault_plan, stats=self.fault_stats
            )
        else:
            self.network = Network(self.resolver, serving_surface)

        # One tracer instance threads through the layers that record
        # deterministic telemetry: the network (DNS answers, injected
        # faults) and — in direct mode only — the engine.  The gateway
        # and its replicas are deliberately left on NULL_TRACER: their
        # live telemetry is shard-local, so the canonical gateway view
        # of a crawl is reconstructed at merge time by
        # :class:`~repro.obs.replay.GatewayReplay` instead.
        self.tracer = Tracer()
        self.network.tracer = self.tracer
        if self.gateway is None:
            self.engine.tracer = self.tracer

        breakers_enabled = self.config.circuit_breakers
        if breakers_enabled is None:
            breakers_enabled = self.fault_plan is not None
        self.breakers: Optional[BreakerBoard] = (
            BreakerBoard() if breakers_enabled else None
        )
        self.retry_policy = RetryPolicy(
            base_minutes=self.config.retry_backoff_minutes,
            cap_minutes=max(
                self.config.retry_cap_minutes, self.config.retry_backoff_minutes
            ),
            jitter=self.config.retry_jitter,
        )

        self.treatments = self._build_treatments()
        self.failures: List[CrawlFailure] = []
        self.stats = CrawlStats()
        # How many parallel workers had to rebuild this apparatus from
        # the config instead of inheriting it (fork passes the built
        # study; spawn falls back to pickling, then to rebuilding).
        # Accumulated by the executor's merge; 0 on fork platforms.
        self.worker_rebuilds = 0
        # Set by repro.supervise when the run is supervised: the
        # SupervisorReport (counters + recovery ledger).  Kept as a
        # plain attribute so this module never imports the supervisor.
        self.supervisor = None
        self._sink = None

    # -- construction ----------------------------------------------------------

    def _build_treatments(self) -> List[_Treatment]:
        treatments: List[_Treatment] = []
        browser_index = 0
        for granularity in Granularity.order():
            for region in self.locations.locations(granularity):
                for copy_index in range(self.config.copies_per_location):
                    machine = self.fleet[browser_index % len(self.fleet)]
                    browser = MobileBrowser(
                        browser_id=(
                            f"{granularity.value}:{region.qualified_name}:c{copy_index}"
                        ),
                        machine=machine,
                        network=self.network,
                    )
                    browser.geolocation.set(region.center)
                    treatments.append(
                        _Treatment(
                            granularity=granularity,
                            region=region,
                            copy_index=copy_index,
                            browser=browser,
                        )
                    )
                    browser_index += 1
        return treatments

    # -- execution ---------------------------------------------------------------

    def run(
        self,
        *,
        sink=None,
        workers: int = 1,
        checkpoint: Optional[str] = None,
        trace: Optional[str] = None,
        events: Optional[str] = None,
        supervise: bool = False,
    ) -> SerpDataset:
        """Execute the full schedule and return the collected dataset.

        Args:
            sink: Optional callable receiving each :class:`SerpRecord`
                as it is collected (e.g.
                :meth:`~repro.core.datastore.IncrementalWriter.write`),
                so long crawls persist as they go.
            workers: Number of crawl worker processes.  ``1`` runs the
                schedule in-process; ``N > 1`` shards each lock-step
                round across processes via :mod:`repro.parallel` and
                merges the results back in canonical order — the
                dataset, stats, and failures are byte-identical to the
                sequential run (the parity tests pin this down).
                Requires a freshly constructed :class:`Study`.
            checkpoint: Optional journal path.  Every completed round
                is appended durably (outcomes + full engine/browser
                state) before being released; if the file already holds
                a compatible journal, the study resumes after its last
                durable round and the final dataset, stats, and failure
                log are byte-identical to an uninterrupted run.  The
                worker count must match the journal's.
            trace: Optional path for a canonical JSONL trace (see
                :mod:`repro.obs`).  The trace file is byte-identical
                for any ``workers`` count.  Cannot be combined with
                ``checkpoint`` — the journal does not carry spans, so a
                resumed trace would silently miss its earlier rounds.
            events: Optional path for the canonical wide-event log (see
                :mod:`repro.obs.events`): one ``crawl`` event per
                (round, treatment) cell.  Events are synthesized from
                the canonical outcome stream at flush time, so the file
                is byte-identical for any ``workers`` count **and**
                composes with ``checkpoint`` — a resumed run replays
                the journaled rounds' events before crawling on.
            supervise: Run under :mod:`repro.supervise`: worker
                processes get heartbeat/exit-code monitoring, and a
                crashed or hung worker's shard is re-executed from its
                last snapshot (respawn or reassignment) with the merged
                output still byte-identical.  Applies even at
                ``workers=1`` (a single supervised worker still gets
                crash recovery).  Cannot be combined with
                ``checkpoint`` — supervision keeps shard snapshots in
                memory instead of a journal.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if trace is not None and checkpoint is not None:
            raise ValueError(
                "trace and checkpoint cannot be combined: the checkpoint "
                "journal does not carry spans, so a resumed run could not "
                "rebuild the rounds crawled before the kill"
            )
        if workers > 1 or supervise:
            from repro.parallel import run_parallel

            return run_parallel(
                self,
                workers=workers,
                sink=sink,
                checkpoint=checkpoint,
                trace=trace,
                events=events,
                supervise=supervise,
            )
        dataset = SerpDataset()
        self._sink = sink
        builder = self._trace_builder(trace) if trace is not None else None
        event_builder = (
            self._events_builder(events) if events is not None else None
        )
        try:
            if checkpoint is not None:
                return self._run_checkpointed(dataset, checkpoint, event_builder)
            for scheduled in self.iter_rounds():
                outcomes = self._run_round(dataset, scheduled)
                if builder is not None:
                    builder.add_round(scheduled.ordinal, self.tracer.drain())
                if event_builder is not None:
                    event_builder.add_round(
                        scheduled.ordinal, list(enumerate(outcomes))
                    )
        finally:
            if builder is not None:
                builder.close()
                self.tracer.disable()
            if event_builder is not None:
                event_builder.close()
            self._sink = None
        return dataset

    def _trace_builder(self, path: str):
        """Enable the tracer and open the canonical trace file at ``path``."""
        from repro.obs.exporters import TraceBuilder
        from repro.obs.replay import GatewayReplay

        fingerprint = self.checkpoint_fingerprint()
        trace_id = trace_id_for(fingerprint)
        self.tracer.enable(trace_id)
        return TraceBuilder(
            path,
            trace_id=trace_id,
            meta=fingerprint,
            replay=GatewayReplay.from_study(self),
        )

    def _events_builder(self, path: str):
        """Open the canonical wide-event log at ``path`` for this study."""
        from repro.obs.events import CrawlEventBuilder

        return CrawlEventBuilder(path, study=self)

    def metrics_registry(self, *, include_caches: bool = False):
        """This study's stats, bound into a :class:`MetricsRegistry`."""
        from repro.obs.metrics import build_study_registry

        return build_study_registry(self, include_caches=include_caches)

    def _run_checkpointed(
        self, dataset: SerpDataset, path: str, event_builder=None
    ) -> SerpDataset:
        """Sequential run with a durable round journal (see :meth:`run`)."""
        fingerprint = self.checkpoint_fingerprint()
        resume = load_checkpoint(path, expected_fingerprint=fingerprint, workers=1)
        if resume is not None:
            for ordinal, outcomes in enumerate(resume.rounds):
                decoded = [deserialize_outcome(payload) for payload in outcomes]
                self._commit_outcomes(dataset, decoded)
                if event_builder is not None:
                    event_builder.add_round(ordinal, list(enumerate(decoded)))
            if resume.next_ordinal > 0:
                self.restore_state(resume.worker_states[0])
            writer = CheckpointWriter.append_to(path)
            start = resume.next_ordinal
        else:
            writer = CheckpointWriter.create(
                path,
                {
                    "version": CHECKPOINT_VERSION,
                    "workers": 1,
                    "fingerprint": fingerprint,
                },
            )
            start = 0
        try:
            for scheduled in self.iter_rounds():
                if scheduled.ordinal < start:
                    continue
                outcomes = [
                    self._crawl_treatment(index, treatment, scheduled)
                    for index, treatment in enumerate(self.treatments)
                ]
                # Durable-then-release: the journal line hits disk
                # before the outcomes reach the dataset or sink, so a
                # kill at any instant loses no acknowledged record.
                writer.append_round(
                    scheduled.ordinal,
                    [serialize_outcome(outcome) for outcome in outcomes],
                    {0: self.capture_state(scheduled.timestamp)},
                )
                self._commit_outcomes(dataset, outcomes)
                if event_builder is not None:
                    event_builder.add_round(
                        scheduled.ordinal, list(enumerate(outcomes))
                    )
        finally:
            writer.close()
        return dataset

    def iter_rounds(self) -> Iterator[ScheduledRound]:
        """The study schedule as a flat, ordered stream of rounds.

        Every executor — sequential or any shard of a parallel run —
        walks this exact stream, so "round ``ordinal``" means the same
        (query, day, virtual minute) everywhere.
        """
        ordinal = 0
        for block_index, block in enumerate(self._query_blocks()):
            first_day = block_index * self.config.days
            for day_offset in range(self.config.days):
                absolute_day = first_day + day_offset
                for round_index, query in enumerate(block):
                    timestamp = (
                        absolute_day * MINUTES_PER_DAY
                        + round_index * self.config.wait_between_queries_minutes
                    )
                    yield ScheduledRound(ordinal, query, day_offset, timestamp)
                    ordinal += 1

    def round_count(self) -> int:
        """Total rounds in the schedule (each round = one query, all treatments)."""
        return self.config.days * len(self.config.queries)

    def _query_blocks(self) -> List[List[Query]]:
        block_size = self.config.queries_per_day_block
        queries = list(self.config.queries)
        return [queries[i : i + block_size] for i in range(0, len(queries), block_size)]

    def prefork_warmup(self) -> dict:
        """Materialise every pure cache the schedule will touch.

        Called by the parallel executor in the parent before forking so
        workers inherit hot ranking pools and digest caches
        copy-on-write instead of rebuilding them per process.  Returns
        the ranker's cache sizes (see :meth:`Ranker.cache_info`).
        """
        from repro.batch import prewarm_study

        return prewarm_study(self)

    def _run_round(
        self, dataset: SerpDataset, scheduled: ScheduledRound
    ) -> List[Union[SerpRecord, CrawlFailure]]:
        """One lock-step round: every treatment runs the query at once."""
        from repro.batch import prewarm_round

        prewarm_round(self, scheduled.query, self.treatments)
        self.tracer.begin_round(scheduled.ordinal)
        outcomes = [
            self._crawl_treatment(index, treatment, scheduled)
            for index, treatment in enumerate(self.treatments)
        ]
        self._commit_outcomes(dataset, outcomes)
        return outcomes

    def _commit_outcomes(
        self,
        dataset: SerpDataset,
        outcomes: List[Union[SerpRecord, CrawlFailure]],
    ) -> None:
        """Release one round's outcomes to the failure log, dataset, sink."""
        for outcome in outcomes:
            if isinstance(outcome, CrawlFailure):
                self.failures.append(outcome)
                continue
            dataset.add(outcome)
            if self._sink is not None:
                self._sink(outcome)

    def run_shard(
        self,
        treatment_indices: List[int],
        *,
        on_round,
        on_round_start=None,
        start_ordinal: int = 0,
        capture_state: bool = False,
        trace: bool = False,
    ) -> None:
        """Crawl only the given treatments through the full schedule.

        The building block of the parallel executor: the study walks
        :meth:`iter_rounds` exactly like a sequential run but issues
        queries only for its shard of the treatment list, calling
        ``on_round(ordinal, outcomes, state, spans)`` after each round
        with the list of ``(treatment_index, SerpRecord |
        CrawlFailure)`` in ascending treatment order.  ``state`` is
        this shard's :meth:`capture_state` snapshot when
        ``capture_state`` is set (checkpointed runs), else ``None``.
        ``spans`` is the round's drained span trees when ``trace`` is
        set, else ``None`` — span ids key on (trace id, round,
        treatment), so trees from different shards interleave into
        exactly the sequential trace.  Rounds before ``start_ordinal``
        are skipped — the resume path, which assumes
        :meth:`restore_state` was fed the matching snapshot.
        ``self.stats`` accumulates this shard's counters.
        ``on_round_start(ordinal, timestamp_minutes)``, when given, is
        called before each round is crawled — the supervisor's
        virtual-time heartbeat hook.
        """
        from repro.batch import prewarm_round

        if trace:
            self.tracer.enable(trace_id_for(self.checkpoint_fingerprint()))
        shard = [(index, self.treatments[index]) for index in treatment_indices]
        shard_treatments = [treatment for _, treatment in shard]
        for scheduled in self.iter_rounds():
            if scheduled.ordinal < start_ordinal:
                continue
            if on_round_start is not None:
                on_round_start(scheduled.ordinal, scheduled.timestamp)
            prewarm_round(self, scheduled.query, shard_treatments)
            self.tracer.begin_round(scheduled.ordinal)
            outcomes = [
                (index, self._crawl_treatment(index, treatment, scheduled))
                for index, treatment in shard
            ]
            state = self.capture_state(scheduled.timestamp) if capture_state else None
            spans = self.tracer.drain() if trace else None
            on_round(scheduled.ordinal, outcomes, state, spans)

    def _crawl_treatment(
        self,
        index: int,
        treatment: _Treatment,
        scheduled: ScheduledRound,
    ) -> Union[SerpRecord, CrawlFailure]:
        """One treatment's turn in a round: crawl, parse, or fail."""
        query = scheduled.query
        if self.tracer.enabled:
            region = treatment.region
            self.tracer.begin(
                "crawl",
                start=scheduled.timestamp,
                treatment=index,
                query=query.text,
                location=region.qualified_name,
                granularity=treatment.granularity.value,
                copy=treatment.copy_index,
                gps=[region.center.lat, region.center.lon],
            )
        parsed, failure_kind = self._crawl_with_retries(
            treatment, query.text, scheduled.timestamp
        )
        if self.config.clear_cookies:
            treatment.browser.clear_cookies()
        if parsed is None:
            self.stats.record_failure_kind(failure_kind.value)
            if self.tracer.enabled:
                self.tracer.end(outcome=failure_kind.value)
            return CrawlFailure(
                query=query.text,
                location_name=treatment.region.qualified_name,
                day=scheduled.day_offset,
                copy_index=treatment.copy_index,
                reason=failure_kind.value,
                kind=failure_kind.value,
            )
        self.stats.pages += 1
        if self.tracer.enabled:
            self.tracer.end(outcome="ok")
        return SerpRecord.from_parsed(
            parsed,
            category=query.category.value,
            granularity=treatment.granularity.value,
            location_name=treatment.region.qualified_name,
            day=scheduled.day_offset,
            copy_index=treatment.copy_index,
        )

    def _crawl_with_retries(
        self, treatment: _Treatment, query_text: str, timestamp: float
    ) -> Tuple[Optional[object], Optional[FailureKind]]:
        """Issue one query with retries; classify every failed attempt.

        Returns ``(parsed_page, None)`` on success or ``(None,
        terminal_kind)`` after exhausting the retry budget.  Backoff
        follows the shared :class:`RetryPolicy` (capped, deterministic
        jitter keyed per browser+round).  When breakers are enabled, an
        open breaker suppresses the attempt entirely (``breaker-open``,
        no request issued).  Every failed attempt is booked in
        ``fault_stats`` as absorbed (a later attempt succeeded) or
        terminal — the ledger the chaos accounting invariant audits.
        """
        browser = treatment.browser
        breaker_key = str(browser.machine.ip)
        attempt_time = timestamp
        pending: List[FailureKind] = []
        issued = 0
        tracing = self.tracer.enabled
        for attempt in range(self.config.max_retries + 1):
            marker = self._breaker_marker()
            if self.breakers is not None and not self.breakers.allow(
                breaker_key, attempt_time
            ):
                self.stats.breaker_fastfails += 1
                pending.append(FailureKind.BREAKER_OPEN)
                if tracing:
                    self._trace_breaker_transitions(marker, attempt_time)
                    self.tracer.event(
                        "breaker.fastfail", at=attempt_time, machine=breaker_key
                    )
            else:
                issued += 1
                self.stats.requests += 1
                if issued > 1:
                    self.stats.retries += 1
                if tracing:
                    self._trace_breaker_transitions(marker, attempt_time)
                    self.tracer.begin("attempt", start=attempt_time, n=attempt)
                parsed, kind = self._attempt(treatment, query_text, attempt_time)
                if parsed is not None:
                    if tracing:
                        self.tracer.end(status="ok")
                    marker = self._breaker_marker()
                    if self.breakers is not None:
                        self.breakers.record_success(breaker_key, attempt_time)
                        if tracing:
                            self._trace_breaker_transitions(marker, attempt_time)
                    for absorbed in pending:
                        self.fault_stats.record_absorbed(absorbed)
                    self.fault_stats.record_attempts(issued)
                    return parsed, None
                if tracing:
                    self.tracer.end(status=kind.value)
                pending.append(kind)
                marker = self._breaker_marker()
                if self.breakers is not None and kind in _BREAKER_TRIP_KINDS:
                    self.breakers.record_failure(breaker_key, attempt_time)
                    if tracing:
                        self._trace_breaker_transitions(marker, attempt_time)
            if attempt < self.config.max_retries:
                delay = self.retry_policy.delay_minutes(
                    attempt, browser.browser_id, timestamp
                )
                if tracing:
                    self.tracer.event(
                        "retry.backoff", at=attempt_time, minutes=delay
                    )
                attempt_time += delay
        for absorbed in pending[:-1]:
            self.fault_stats.record_absorbed(absorbed)
        terminal = pending[-1]
        self.fault_stats.record_terminal(terminal)
        self.fault_stats.record_attempts(issued)
        return None, terminal

    def _breaker_marker(self) -> int:
        """Transition-log position, for diffing after a breaker call."""
        if self.breakers is None or not self.tracer.enabled:
            return 0
        return self.breakers.transition_count()

    def _trace_breaker_transitions(self, marker: int, at: float) -> None:
        """Emit span events for breaker transitions after ``marker``."""
        if self.breakers is None:
            return
        for transition in self.breakers.transitions()[marker:]:
            self.tracer.event(
                "breaker.transition",
                at=at,
                machine=transition.key,
                old=transition.old.value,
                new=transition.new.value,
            )

    def _attempt(
        self, treatment: _Treatment, query_text: str, attempt_time: float
    ) -> Tuple[Optional[object], Optional[FailureKind]]:
        """One request attempt: ``(parsed, None)`` or ``(None, kind)``."""
        browser = treatment.browser
        try:
            crawl = browser.search(query_text, attempt_time)
        except BrowserCrash:
            self.stats.crashes += 1
            browser.restart()
            return None, FailureKind.BROWSER_CRASH
        except RequestTimeout:
            self.stats.timeouts += 1
            return None, FailureKind.TIMEOUT
        except ResolutionError:
            self.stats.dns_failures += 1
            return None, FailureKind.DNS_FAILURE
        if crawl.status is ResponseStatus.RATE_LIMITED:
            self.stats.captchas += 1
            # The injector short-circuits *before* the engine during a
            # storm window, so recomputing its exact condition cleanly
            # separates storm CAPTCHAs from organic rate limiting.
            if self.fault_plan is not None and self.fault_plan.in_storm(attempt_time):
                return None, FailureKind.RATE_LIMIT_STORM
            return None, FailureKind.RATE_LIMITED
        if crawl.status is ResponseStatus.OVERLOADED:
            self.stats.overloads += 1
            return None, FailureKind.OVERLOADED
        if crawl.status is ResponseStatus.SERVER_ERROR:
            self.stats.server_errors += 1
            return None, FailureKind.SERVER_ERROR
        try:
            parsed = parse_serp_html(crawl.html)
        except SerpParseError:
            self.stats.malformed += 1
            return None, FailureKind.MALFORMED_SERP
        if not parsed.is_complete:
            self.stats.malformed += 1
            return None, FailureKind.MALFORMED_SERP
        return parsed, None

    # -- checkpointing -------------------------------------------------------

    def checkpoint_fingerprint(self) -> dict:
        """A JSON dict identifying everything that shapes run output.

        Two studies with equal fingerprints produce byte-identical
        schedules and records; a resume against a journal with a
        different fingerprint is refused rather than silently mixing
        datasets.
        """
        config = self.config
        queries_digest = stable_hash(
            "queries",
            *[f"{query.text}|{query.category.value}" for query in config.queries],
        )
        locations_digest = stable_hash(
            "locations",
            *[region.qualified_name for region in self.locations.all_locations()],
        )
        calibration_digest = stable_hash(
            "calibration", json.dumps(asdict(config.calibration), sort_keys=True)
        )
        plan = self.fault_plan
        return {
            "seed": config.seed,
            "queries": queries_digest,
            "locations": locations_digest,
            "calibration": calibration_digest,
            "days": config.days,
            "copies": config.copies_per_location,
            "machines": config.machine_count,
            "wait": config.wait_between_queries_minutes,
            "block": config.queries_per_day_block,
            "pin": config.pin_datacenter,
            "retries": [
                config.max_retries,
                config.retry_backoff_minutes,
                config.retry_cap_minutes,
                config.retry_jitter,
            ],
            "cookies": config.clear_cookies,
            "dialect": config.dialect.name,
            "gateway": [
                config.route_via_gateway,
                config.gateway_routing,
                config.gateway_cache_size,
            ],
            "plan": asdict(plan) if plan is not None else None,
            "breakers": self.breakers is not None,
        }

    def capture_state(self, now_minutes: float) -> dict:
        """JSON-able snapshot of every mutable layer of the crawl.

        Everything not captured here (world, rankers, schedule, DNS
        zone) is a pure function of the config and is rebuilt
        identically by the constructor on resume.
        """
        state = {
            "stats": self.stats.capture_state(),
            "fault_stats": self.fault_stats.capture_state(),
            "browsers": [
                treatment.browser.capture_state() for treatment in self.treatments
            ],
        }
        if self.gateway is not None:
            state["serving"] = self.gateway.capture_state(now_minutes)
        else:
            state["serving"] = self.engine.capture_state(now_minutes)
        if self.breakers is not None:
            state["breakers"] = self.breakers.capture_state()
        return state

    def restore_state(self, state: dict) -> None:
        """Inverse of :meth:`capture_state` (on a fresh study)."""
        self.stats = CrawlStats()
        self.stats.restore_state(state["stats"])
        self.fault_stats.restore_state(state["fault_stats"])
        for treatment, snapshot in zip(self.treatments, state["browsers"]):
            treatment.browser.restore_state(snapshot)
        if self.gateway is not None:
            self.gateway.restore_state(state["serving"])
        else:
            self.engine.restore_state(state["serving"])
        if self.breakers is not None and "breakers" in state:
            self.breakers.restore_state(state["breakers"])

    # -- conveniences --------------------------------------------------------------

    def regions_by_name(self) -> Dict[str, Region]:
        """Qualified name → region, over all study locations."""
        return {
            region.qualified_name: region for region in self.locations.all_locations()
        }

    def run_single_query(
        self, query: Query, *, day: int = 0
    ) -> List[Tuple[str, int, SerpRecord]]:
        """Run one query across all treatments (for examples/debugging)."""
        dataset = SerpDataset()
        timestamp = float(day * MINUTES_PER_DAY)
        self._run_round(dataset, ScheduledRound(0, query, day, timestamp))
        return [(r.location_name, r.copy_index, r) for r in dataset]
