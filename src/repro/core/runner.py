"""Study orchestration: wiring the crawl and running it.

:class:`Study` builds the whole apparatus — synthetic web, engine,
datacenters, DNS (pinned or not), GeoIP, the 44-machine crawl fleet,
one browser pair per location — then executes the paper's schedule:

* queries are split into day-blocks (the paper ran the 120
  local+controversial terms for 5 days, then the 120 politicians);
* within a day, query rounds run in **lock step**: every location and
  its control issue the same term at the same virtual minute;
* rounds are spaced 11 minutes apart, above the engine's 10-minute
  session window;
* cookies are cleared after every query.

The crawl can optionally flow through the serving gateway
(``route_via_gateway``): one engine replica per datacenter behind
routing and admission control, byte-identical to the direct path as
long as the SERP cache stays disabled.

The result is a :class:`SerpDataset` the analysis modules consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from repro.core.browser import MobileBrowser, Network
from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.experiment import StudyConfig
from repro.core.parser import parse_serp_html
from repro.engine.datacenters import DatacenterCluster
from repro.engine.frontend import SearchEngine
from repro.geo.granularity import Granularity, StudyLocations, select_study_locations
from repro.geo.regions import Region
from repro.net.dns import DNSResolver
from repro.net.geoip import GeoIPDatabase
from repro.net.machines import MachineFleet
from repro.queries.corpus import QueryCorpus
from repro.queries.model import Query
from repro.seeding import derive_seed
from repro.serve.gateway import Gateway, build_replicas
from repro.web.world import WebWorld

__all__ = ["Study", "CrawlFailure", "CrawlStats", "ScheduledRound"]

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class CrawlFailure:
    """One query that did not return a result page (e.g. a CAPTCHA)."""

    query: str
    location_name: str
    day: int
    copy_index: int
    reason: str


@dataclass
class CrawlStats:
    """Counters for one study run.

    Every field is a plain sum, so stats from sharded workers merge
    associatively (:meth:`merge`) into exactly the sequential counters.
    """

    requests: int = 0
    retries: int = 0
    captchas: int = 0
    pages: int = 0

    def merge(self, other: "CrawlStats") -> None:
        """Fold another run's (or shard's) counters into this one."""
        self.requests += other.requests
        self.retries += other.retries
        self.captchas += other.captchas
        self.pages += other.pages


@dataclass(frozen=True)
class ScheduledRound:
    """One lock-step round of the study schedule.

    ``ordinal`` is the round's global position (0-based, schedule
    order) — the canonical sort key the parallel executor merges shard
    results by.
    """

    ordinal: int
    query: Query
    day_offset: int
    timestamp: float


@dataclass
class _Treatment:
    """One (granularity, location, copy) vantage point and its browser."""

    granularity: Granularity
    region: Region
    copy_index: int
    browser: MobileBrowser


class Study:
    """A fully wired, runnable instance of the paper's experiment."""

    def __init__(self, config: Optional[StudyConfig] = None):
        self.config = config or StudyConfig()
        seed = self.config.seed

        if self.config.study_locations is not None:
            self.locations: StudyLocations = self.config.study_locations
        else:
            self.locations = select_study_locations(
                seed,
                state_count=self.config.state_count,
                county_count=self.config.county_count,
                district_count=self.config.district_count,
            )
        self.world = WebWorld(derive_seed(seed, "world"), locator=self.config.locator)
        self.cluster = DatacenterCluster(hostname=self.config.dialect.hostname)
        self.resolver = DNSResolver()
        self.cluster.install_into(self.resolver)
        if self.config.pin_datacenter:
            self.resolver.pin(self.cluster.hostname, self.cluster[0].frontend_ip)

        self.geoip = GeoIPDatabase()
        self.fleet = MachineFleet.crawl_fleet(count=self.config.machine_count)
        self.geoip.register_fleet(self.fleet)

        corpus = QueryCorpus(queries=list(self.config.queries))
        engine_seed = derive_seed(seed, "engine", self.config.dialect.name)
        self.engine = SearchEngine(
            self.world,
            self.cluster,
            self.geoip,
            corpus=corpus,
            calibration=self.config.calibration,
            seed=engine_seed,
            dialect=self.config.dialect,
        )
        self.gateway: Optional[Gateway] = None
        if self.config.route_via_gateway:
            # Queues must absorb one full lock-step round (every
            # treatment fires at the same virtual minute), or the
            # gateway would shed requests the direct path serves.
            round_burst = self.locations.total() * self.config.copies_per_location
            replicas = build_replicas(
                self.world,
                self.cluster,
                self.geoip,
                corpus=corpus,
                calibration=self.config.calibration,
                seed=engine_seed,
                dialect=self.config.dialect,
                queue_capacity=max(32, round_burst),
            )
            self.gateway = Gateway(
                replicas,
                self.geoip,
                policy=self.config.gateway_routing,
                cache_size=self.config.gateway_cache_size,
                cell_miles=self.config.calibration.snap_cell_miles,
            )
        self.network = Network(self.resolver, self.gateway or self.engine)
        self.treatments = self._build_treatments()
        self.failures: List[CrawlFailure] = []
        self.stats = CrawlStats()
        self._sink = None

    # -- construction ----------------------------------------------------------

    def _build_treatments(self) -> List[_Treatment]:
        treatments: List[_Treatment] = []
        browser_index = 0
        for granularity in Granularity.order():
            for region in self.locations.locations(granularity):
                for copy_index in range(self.config.copies_per_location):
                    machine = self.fleet[browser_index % len(self.fleet)]
                    browser = MobileBrowser(
                        browser_id=(
                            f"{granularity.value}:{region.qualified_name}:c{copy_index}"
                        ),
                        machine=machine,
                        network=self.network,
                    )
                    browser.geolocation.set(region.center)
                    treatments.append(
                        _Treatment(
                            granularity=granularity,
                            region=region,
                            copy_index=copy_index,
                            browser=browser,
                        )
                    )
                    browser_index += 1
        return treatments

    # -- execution ---------------------------------------------------------------

    def run(self, *, sink=None, workers: int = 1) -> SerpDataset:
        """Execute the full schedule and return the collected dataset.

        Args:
            sink: Optional callable receiving each :class:`SerpRecord`
                as it is collected (e.g.
                :meth:`~repro.core.datastore.IncrementalWriter.write`),
                so long crawls persist as they go.
            workers: Number of crawl worker processes.  ``1`` runs the
                schedule in-process; ``N > 1`` shards each lock-step
                round across processes via :mod:`repro.parallel` and
                merges the results back in canonical order — the
                dataset, stats, and failures are byte-identical to the
                sequential run (the parity tests pin this down).
                Requires a freshly constructed :class:`Study`.
        """
        if workers < 1:
            raise ValueError("workers must be >= 1")
        if workers > 1:
            from repro.parallel import run_parallel

            return run_parallel(self, workers=workers, sink=sink)
        dataset = SerpDataset()
        self._sink = sink
        for scheduled in self.iter_rounds():
            self._run_round(
                dataset, scheduled.query, scheduled.day_offset, scheduled.timestamp
            )
        self._sink = None
        return dataset

    def iter_rounds(self) -> Iterator[ScheduledRound]:
        """The study schedule as a flat, ordered stream of rounds.

        Every executor — sequential or any shard of a parallel run —
        walks this exact stream, so "round ``ordinal``" means the same
        (query, day, virtual minute) everywhere.
        """
        ordinal = 0
        for block_index, block in enumerate(self._query_blocks()):
            first_day = block_index * self.config.days
            for day_offset in range(self.config.days):
                absolute_day = first_day + day_offset
                for round_index, query in enumerate(block):
                    timestamp = (
                        absolute_day * MINUTES_PER_DAY
                        + round_index * self.config.wait_between_queries_minutes
                    )
                    yield ScheduledRound(ordinal, query, day_offset, timestamp)
                    ordinal += 1

    def round_count(self) -> int:
        """Total rounds in the schedule (each round = one query, all treatments)."""
        return self.config.days * len(self.config.queries)

    def _query_blocks(self) -> List[List[Query]]:
        block_size = self.config.queries_per_day_block
        queries = list(self.config.queries)
        return [queries[i : i + block_size] for i in range(0, len(queries), block_size)]

    def _run_round(
        self,
        dataset: SerpDataset,
        query: Query,
        day_offset: int,
        timestamp: float,
    ) -> None:
        """One lock-step round: every treatment runs ``query`` at once."""
        for treatment in self.treatments:
            outcome = self._crawl_treatment(treatment, query, day_offset, timestamp)
            if isinstance(outcome, CrawlFailure):
                self.failures.append(outcome)
                continue
            dataset.add(outcome)
            if self._sink is not None:
                self._sink(outcome)

    def run_shard(self, treatment_indices: List[int], *, on_round) -> None:
        """Crawl only the given treatments through the full schedule.

        The building block of the parallel executor: the study walks
        :meth:`iter_rounds` exactly like a sequential run but issues
        queries only for its shard of the treatment list, calling
        ``on_round(ordinal, outcomes)`` after each round with the list
        of ``(treatment_index, SerpRecord | CrawlFailure)`` in ascending
        treatment order.  ``self.stats`` accumulates this shard's
        counters.
        """
        shard = [(index, self.treatments[index]) for index in treatment_indices]
        for scheduled in self.iter_rounds():
            outcomes = [
                (
                    index,
                    self._crawl_treatment(
                        treatment,
                        scheduled.query,
                        scheduled.day_offset,
                        scheduled.timestamp,
                    ),
                )
                for index, treatment in shard
            ]
            on_round(scheduled.ordinal, outcomes)

    def _crawl_treatment(
        self,
        treatment: _Treatment,
        query: Query,
        day_offset: int,
        timestamp: float,
    ) -> Union[SerpRecord, CrawlFailure]:
        """One treatment's turn in a round: crawl, parse, or fail."""
        crawl = self._search_with_retries(treatment, query.text, timestamp)
        if self.config.clear_cookies:
            treatment.browser.clear_cookies()
        if crawl is None:
            return CrawlFailure(
                query=query.text,
                location_name=treatment.region.qualified_name,
                day=day_offset,
                copy_index=treatment.copy_index,
                reason="rate-limited",
            )
        parsed = parse_serp_html(crawl.html)
        self.stats.pages += 1
        return SerpRecord.from_parsed(
            parsed,
            category=query.category.value,
            granularity=treatment.granularity.value,
            location_name=treatment.region.qualified_name,
            day=day_offset,
            copy_index=treatment.copy_index,
        )

    def _search_with_retries(self, treatment: _Treatment, query_text: str, timestamp: float):
        """Issue one query, retrying after CAPTCHAs with backoff.

        Returns the successful crawl result, or ``None`` after
        exhausting retries.
        """
        backoff = self.config.retry_backoff_minutes
        attempt_time = timestamp
        for attempt in range(self.config.max_retries + 1):
            self.stats.requests += 1
            if attempt > 0:
                self.stats.retries += 1
            crawl = treatment.browser.search(query_text, attempt_time)
            if crawl.ok:
                return crawl
            self.stats.captchas += 1
            attempt_time += backoff
            backoff *= 2
        return None

    # -- conveniences --------------------------------------------------------------

    def regions_by_name(self) -> Dict[str, Region]:
        """Qualified name → region, over all study locations."""
        return {
            region.qualified_name: region for region in self.locations.all_locations()
        }

    def run_single_query(
        self, query: Query, *, day: int = 0
    ) -> List[Tuple[str, int, SerpRecord]]:
        """Run one query across all treatments (for examples/debugging)."""
        dataset = SerpDataset()
        timestamp = float(day * MINUTES_PER_DAY)
        self._run_round(dataset, query, day, timestamp)
        return [(r.location_name, r.copy_index, r) for r in dataset]
