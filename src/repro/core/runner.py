"""Study orchestration: wiring the crawl and running it.

:class:`Study` builds the whole apparatus — synthetic web, engine,
datacenters, DNS (pinned or not), GeoIP, the 44-machine crawl fleet,
one browser pair per location — then executes the paper's schedule:

* queries are split into day-blocks (the paper ran the 120
  local+controversial terms for 5 days, then the 120 politicians);
* within a day, query rounds run in **lock step**: every location and
  its control issue the same term at the same virtual minute;
* rounds are spaced 11 minutes apart, above the engine's 10-minute
  session window;
* cookies are cleared after every query.

The crawl can optionally flow through the serving gateway
(``route_via_gateway``): one engine replica per datacenter behind
routing and admission control, byte-identical to the direct path as
long as the SERP cache stays disabled.

The result is a :class:`SerpDataset` the analysis modules consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.browser import MobileBrowser, Network
from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.experiment import StudyConfig
from repro.core.parser import parse_serp_html
from repro.engine.datacenters import DatacenterCluster
from repro.engine.frontend import SearchEngine
from repro.geo.granularity import Granularity, StudyLocations, select_study_locations
from repro.geo.regions import Region
from repro.net.dns import DNSResolver
from repro.net.geoip import GeoIPDatabase
from repro.net.machines import MachineFleet
from repro.queries.corpus import QueryCorpus
from repro.queries.model import Query
from repro.seeding import derive_seed
from repro.serve.gateway import Gateway, build_replicas
from repro.web.world import WebWorld

__all__ = ["Study", "CrawlFailure"]

MINUTES_PER_DAY = 24 * 60


@dataclass(frozen=True)
class CrawlFailure:
    """One query that did not return a result page (e.g. a CAPTCHA)."""

    query: str
    location_name: str
    day: int
    copy_index: int
    reason: str


@dataclass
class CrawlStats:
    """Counters for one study run."""

    requests: int = 0
    retries: int = 0
    captchas: int = 0
    pages: int = 0


@dataclass
class _Treatment:
    """One (granularity, location, copy) vantage point and its browser."""

    granularity: Granularity
    region: Region
    copy_index: int
    browser: MobileBrowser


class Study:
    """A fully wired, runnable instance of the paper's experiment."""

    def __init__(self, config: Optional[StudyConfig] = None):
        self.config = config or StudyConfig()
        seed = self.config.seed

        if self.config.study_locations is not None:
            self.locations: StudyLocations = self.config.study_locations
        else:
            self.locations = select_study_locations(
                seed,
                state_count=self.config.state_count,
                county_count=self.config.county_count,
                district_count=self.config.district_count,
            )
        self.world = WebWorld(derive_seed(seed, "world"), locator=self.config.locator)
        self.cluster = DatacenterCluster(hostname=self.config.dialect.hostname)
        self.resolver = DNSResolver()
        self.cluster.install_into(self.resolver)
        if self.config.pin_datacenter:
            self.resolver.pin(self.cluster.hostname, self.cluster[0].frontend_ip)

        self.geoip = GeoIPDatabase()
        self.fleet = MachineFleet.crawl_fleet(count=self.config.machine_count)
        self.geoip.register_fleet(self.fleet)

        corpus = QueryCorpus(queries=list(self.config.queries))
        engine_seed = derive_seed(seed, "engine", self.config.dialect.name)
        self.engine = SearchEngine(
            self.world,
            self.cluster,
            self.geoip,
            corpus=corpus,
            calibration=self.config.calibration,
            seed=engine_seed,
            dialect=self.config.dialect,
        )
        self.gateway: Optional[Gateway] = None
        if self.config.route_via_gateway:
            # Queues must absorb one full lock-step round (every
            # treatment fires at the same virtual minute), or the
            # gateway would shed requests the direct path serves.
            round_burst = self.locations.total() * self.config.copies_per_location
            replicas = build_replicas(
                self.world,
                self.cluster,
                self.geoip,
                corpus=corpus,
                calibration=self.config.calibration,
                seed=engine_seed,
                dialect=self.config.dialect,
                queue_capacity=max(32, round_burst),
            )
            self.gateway = Gateway(
                replicas,
                self.geoip,
                policy=self.config.gateway_routing,
                cache_size=self.config.gateway_cache_size,
                cell_miles=self.config.calibration.snap_cell_miles,
            )
        self.network = Network(self.resolver, self.gateway or self.engine)
        self.treatments = self._build_treatments()
        self.failures: List[CrawlFailure] = []
        self.stats = CrawlStats()

    # -- construction ----------------------------------------------------------

    def _build_treatments(self) -> List[_Treatment]:
        treatments: List[_Treatment] = []
        browser_index = 0
        for granularity in Granularity.order():
            for region in self.locations.locations(granularity):
                for copy_index in range(self.config.copies_per_location):
                    machine = self.fleet[browser_index % len(self.fleet)]
                    browser = MobileBrowser(
                        browser_id=(
                            f"{granularity.value}:{region.qualified_name}:c{copy_index}"
                        ),
                        machine=machine,
                        network=self.network,
                    )
                    browser.geolocation.set(region.center)
                    treatments.append(
                        _Treatment(
                            granularity=granularity,
                            region=region,
                            copy_index=copy_index,
                            browser=browser,
                        )
                    )
                    browser_index += 1
        return treatments

    # -- execution ---------------------------------------------------------------

    def run(self, *, sink=None) -> SerpDataset:
        """Execute the full schedule and return the collected dataset.

        Args:
            sink: Optional callable receiving each :class:`SerpRecord`
                as it is collected (e.g.
                :meth:`~repro.core.datastore.IncrementalWriter.write`),
                so long crawls persist as they go.
        """
        dataset = SerpDataset()
        self._sink = sink
        blocks = self._query_blocks()
        for block_index, block in enumerate(blocks):
            first_day = block_index * self.config.days
            for day_offset in range(self.config.days):
                absolute_day = first_day + day_offset
                for round_index, query in enumerate(block):
                    timestamp = (
                        absolute_day * MINUTES_PER_DAY
                        + round_index * self.config.wait_between_queries_minutes
                    )
                    self._run_round(dataset, query, day_offset, timestamp)
        self._sink = None
        return dataset

    def _query_blocks(self) -> List[List[Query]]:
        block_size = self.config.queries_per_day_block
        queries = list(self.config.queries)
        return [queries[i : i + block_size] for i in range(0, len(queries), block_size)]

    def _run_round(
        self,
        dataset: SerpDataset,
        query: Query,
        day_offset: int,
        timestamp: float,
    ) -> None:
        """One lock-step round: every treatment runs ``query`` at once."""
        for treatment in self.treatments:
            crawl = self._search_with_retries(treatment, query.text, timestamp)
            if self.config.clear_cookies:
                treatment.browser.clear_cookies()
            if crawl is None:
                self.failures.append(
                    CrawlFailure(
                        query=query.text,
                        location_name=treatment.region.qualified_name,
                        day=day_offset,
                        copy_index=treatment.copy_index,
                        reason="rate-limited",
                    )
                )
                continue
            parsed = parse_serp_html(crawl.html)
            self.stats.pages += 1
            record = SerpRecord.from_parsed(
                parsed,
                category=query.category.value,
                granularity=treatment.granularity.value,
                location_name=treatment.region.qualified_name,
                day=day_offset,
                copy_index=treatment.copy_index,
            )
            dataset.add(record)
            if getattr(self, "_sink", None) is not None:
                self._sink(record)

    def _search_with_retries(self, treatment: _Treatment, query_text: str, timestamp: float):
        """Issue one query, retrying after CAPTCHAs with backoff.

        Returns the successful crawl result, or ``None`` after
        exhausting retries.
        """
        backoff = self.config.retry_backoff_minutes
        attempt_time = timestamp
        for attempt in range(self.config.max_retries + 1):
            self.stats.requests += 1
            if attempt > 0:
                self.stats.retries += 1
            crawl = treatment.browser.search(query_text, attempt_time)
            if crawl.ok:
                return crawl
            self.stats.captchas += 1
            attempt_time += backoff
            backoff *= 2
        return None

    # -- conveniences --------------------------------------------------------------

    def regions_by_name(self) -> Dict[str, Region]:
        """Qualified name → region, over all study locations."""
        return {
            region.qualified_name: region for region in self.locations.all_locations()
        }

    def run_single_query(
        self, query: Query, *, day: int = 0
    ) -> List[Tuple[str, int, SerpRecord]]:
        """Run one query across all treatments (for examples/debugging)."""
        dataset = SerpDataset()
        timestamp = float(day * MINUTES_PER_DAY)
        self._run_round(dataset, query, day, timestamp)
        return [(r.location_name, r.copy_index, r) for r in dataset]
