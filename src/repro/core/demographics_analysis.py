"""Demographic-correlation analysis (paper §3.2, "Demographics").

To explain why some county-level locations cluster (Fig. 8a), the paper
correlates pairwise result similarity against physical distance and 25
demographic features — and finds nothing: "it appears that Google
Search does not use demographic features to implement location-based
personalization".

The analysis here is the same: for every pair of county-level
locations, compute (a) the mean Jaccard similarity of their SERPs and
(b) the absolute difference of each demographic feature; then test each
feature's correlation with similarity using Pearson/Spearman and a
seeded permutation p-value.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.comparisons import compare_records
from repro.core.datastore import SerpDataset
from repro.geo.demographics import DEMOGRAPHIC_FEATURES, demographic_profile
from repro.geo.regions import Region
from repro.stats.correlation import pearson, permutation_pvalue, spearman
from repro.stats.summaries import summarize

__all__ = ["FeatureCorrelation", "DemographicsAnalysis"]


@dataclass(frozen=True)
class FeatureCorrelation:
    """Correlation of one feature-distance with result similarity."""

    feature: str
    pearson_r: float
    spearman_rho: float
    p_value: float

    @property
    def significant(self) -> bool:
        """Conventional alpha=0.05 significance of the permutation test."""
        return self.p_value < 0.05


class DemographicsAnalysis:
    """Pairwise similarity vs. demographic distance, per feature."""

    def __init__(
        self,
        dataset: SerpDataset,
        regions: Dict[str, Region],
        *,
        category: str = "local",
        granularity: str = "county",
        seed: int = 0,
    ):
        self.dataset = dataset
        self.regions = regions
        self.category = category
        self.granularity = granularity
        self.seed = seed
        self._pairs: Optional[List[Tuple[str, str]]] = None
        self._similarity: Optional[List[float]] = None

    # -- building blocks -------------------------------------------------------

    def location_pairs(self) -> List[Tuple[str, str]]:
        """All unordered pairs of locations at the chosen granularity."""
        if self._pairs is None:
            names = sorted(self.dataset.locations(self.granularity))
            missing = [n for n in names if n not in self.regions]
            if missing:
                raise KeyError(f"regions missing for locations: {missing}")
            self._pairs = list(itertools.combinations(names, 2))
        return self._pairs

    def pairwise_similarity(self) -> List[float]:
        """Mean Jaccard similarity per location pair (aligned with
        :meth:`location_pairs`)."""
        if self._similarity is not None:
            return self._similarity
        queries = self.dataset.queries(category=self.category)
        if not queries:
            raise ValueError(f"no {self.category!r} queries in dataset")
        days = self.dataset.days()
        similarities: List[float] = []
        for name_a, name_b in self.location_pairs():
            values: List[float] = []
            for query in queries:
                for day in days:
                    record_a = self.dataset.get(query, self.granularity, name_a, day, 0)
                    record_b = self.dataset.get(query, self.granularity, name_b, day, 0)
                    if record_a is not None and record_b is not None:
                        values.append(compare_records(record_a, record_b).jaccard)
            similarities.append(summarize(values).mean if values else 0.0)
        self._similarity = similarities
        return similarities

    def _feature_distances(self, feature: str) -> List[float]:
        profiles = {
            name: demographic_profile(self.regions[name])
            for name in self.dataset.locations(self.granularity)
        }
        return [
            abs(profiles[a][feature] - profiles[b][feature])
            for a, b in self.location_pairs()
        ]

    def physical_distances(self) -> List[float]:
        """Great-circle miles per location pair."""
        return [
            self.regions[a].distance_miles(self.regions[b])
            for a, b in self.location_pairs()
        ]

    # -- correlations ------------------------------------------------------------

    def feature_correlation(
        self, feature: str, *, iterations: int = 500
    ) -> FeatureCorrelation:
        """Correlation of one demographic feature with similarity."""
        similarity = self.pairwise_similarity()
        distances = self._feature_distances(feature)
        return FeatureCorrelation(
            feature=feature,
            pearson_r=pearson(distances, similarity),
            spearman_rho=spearman(distances, similarity),
            p_value=permutation_pvalue(
                distances,
                similarity,
                statistic=spearman,
                iterations=iterations,
                seed=self.seed,
            ),
        )

    def all_feature_correlations(
        self, *, iterations: int = 500
    ) -> List[FeatureCorrelation]:
        """Correlations for every one of the 25 demographic features."""
        return [
            self.feature_correlation(feature, iterations=iterations)
            for feature in DEMOGRAPHIC_FEATURES
        ]

    def distance_correlation(self, *, iterations: int = 500) -> FeatureCorrelation:
        """Correlation of physical distance with similarity.

        The paper checked this too ("do closer locations tend to
        cluster") alongside the demographic features.
        """
        similarity = self.pairwise_similarity()
        distances = self.physical_distances()
        return FeatureCorrelation(
            feature="physical_distance_miles",
            pearson_r=pearson(distances, similarity),
            spearman_rho=spearman(distances, similarity),
            p_value=permutation_pvalue(
                distances,
                similarity,
                statistic=spearman,
                iterations=iterations,
                seed=self.seed,
            ),
        )

    def significant_features(
        self, *, alpha: float = 0.05, iterations: int = 500
    ) -> List[FeatureCorrelation]:
        """Features whose permutation p-value clears ``alpha``.

        With a Bonferroni-style expectation over 25 features, a couple
        of spurious hits at alpha=0.05 are unremarkable; the paper's
        null finding corresponds to this list being (near) empty under
        a stricter threshold.
        """
        return [
            c
            for c in self.all_feature_correlations(iterations=iterations)
            if c.p_value < alpha
        ]
