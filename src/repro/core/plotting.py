"""Terminal plotting: ASCII bar charts and line series.

The paper's figures are bar/line plots; this module renders the same
shapes in a terminal so `repro-study report --chart` (and the examples)
can show them without any plotting dependency.  Pure text, fixed-width,
deterministic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["BarChart", "LineChart"]

_BAR_FILL = "█"
_BAR_PARTIALS = " ▏▎▍▌▋▊▉"  # eighth blocks for sub-character precision
_LINE_MARKS = "ox+*#@%&"


def _format_value(value: float) -> str:
    return f"{value:.2f}".rstrip("0").rstrip(".")


@dataclass
class BarChart:
    """A horizontal bar chart with optional reference marks.

    Each row is a labelled value; ``marks`` draw a ``|`` at a reference
    position on a row (used for the noise floors of Fig. 5).
    """

    title: str
    width: int = 48
    rows: List[Tuple[str, float]] = field(default_factory=list)
    marks: Dict[str, float] = field(default_factory=dict)

    def add(self, label: str, value: float, *, mark: Optional[float] = None) -> None:
        """Append one bar; ``mark`` places a reference tick on the row."""
        if value < 0:
            raise ValueError(f"bars cannot be negative: {label}={value}")
        self.rows.append((label, value))
        if mark is not None:
            self.marks[label] = mark

    def render(self) -> str:
        """The chart as fixed-width text."""
        if not self.rows:
            raise ValueError("cannot render an empty chart")
        peak = max(
            [value for _, value in self.rows]
            + [mark for mark in self.marks.values()]
        )
        # Treat vanishingly small peaks as zero: dividing by a subnormal
        # float would overflow the scale.
        scale = (self.width / peak) if peak > 1e-9 else 0.0
        label_width = max(len(label) for label, _ in self.rows)
        lines = [self.title]
        for label, value in self.rows:
            cells = value * scale
            whole = int(cells)
            remainder = cells - whole
            partial_index = int(remainder * 8)
            bar = _BAR_FILL * whole
            if partial_index and whole < self.width:
                bar += _BAR_PARTIALS[partial_index]
            bar = bar.ljust(self.width)
            mark = self.marks.get(label)
            if mark is not None and peak > 0:
                position = min(self.width - 1, int(mark * scale))
                bar = bar[:position] + "|" + bar[position + 1 :]
            lines.append(f"{label.rjust(label_width)} {bar} {_format_value(value)}")
        axis = " " * (label_width + 1) + "0" + " " * (self.width - 2) + _format_value(peak)
        lines.append(axis)
        return "\n".join(lines)


@dataclass
class LineChart:
    """A multi-series line chart on a character canvas.

    X positions are the series indexes (the study's days); one marker
    per series, a legend underneath.
    """

    title: str
    height: int = 12
    width: int = 50
    series: List[Tuple[str, List[float]]] = field(default_factory=list)

    def add_series(self, label: str, values: Sequence[float]) -> None:
        """Append one named series (all series must share a length)."""
        values = list(values)
        if not values:
            raise ValueError(f"series {label!r} is empty")
        if self.series and len(values) != len(self.series[0][1]):
            raise ValueError(
                f"series {label!r} has {len(values)} points, expected "
                f"{len(self.series[0][1])}"
            )
        self.series.append((label, values))

    def render(self) -> str:
        """The chart as fixed-width text."""
        if not self.series:
            raise ValueError("cannot render an empty chart")
        peak = max(max(values) for _, values in self.series)
        floor = min(min(values) for _, values in self.series)
        if peak == floor:
            peak = floor + 1.0
        points = len(self.series[0][1])
        canvas = [[" "] * self.width for _ in range(self.height)]

        def x_of(index: int) -> int:
            if points == 1:
                return 0
            return round(index * (self.width - 1) / (points - 1))

        def y_of(value: float) -> int:
            fraction = (value - floor) / (peak - floor)
            return (self.height - 1) - round(fraction * (self.height - 1))

        for series_index, (_, values) in enumerate(self.series):
            marker = _LINE_MARKS[series_index % len(_LINE_MARKS)]
            previous: Optional[Tuple[int, int]] = None
            for index, value in enumerate(values):
                x, y = x_of(index), y_of(value)
                if previous is not None:
                    # Simple interpolation between consecutive points.
                    px, py = previous
                    steps = max(abs(x - px), abs(y - py))
                    for step in range(1, steps):
                        ix = px + round(step * (x - px) / steps)
                        iy = py + round(step * (y - py) / steps)
                        if canvas[iy][ix] == " ":
                            canvas[iy][ix] = "."
                canvas[y][x] = marker
                previous = (x, y)

        lines = [self.title]
        top_label = _format_value(peak)
        bottom_label = _format_value(floor)
        gutter = max(len(top_label), len(bottom_label))
        for row_index, row in enumerate(canvas):
            if row_index == 0:
                prefix = top_label.rjust(gutter)
            elif row_index == self.height - 1:
                prefix = bottom_label.rjust(gutter)
            else:
                prefix = " " * gutter
            lines.append(f"{prefix} |{''.join(row)}")
        lines.append(" " * gutter + " +" + "-" * self.width)
        legend = "   ".join(
            f"{_LINE_MARKS[i % len(_LINE_MARKS)]} {label}"
            for i, (label, _) in enumerate(self.series)
        )
        lines.append(" " * (gutter + 2) + legend)
        return "\n".join(lines)
