"""Content analysis of collected SERPs.

The paper's conclusion proposes "additional content analysis on the
search results may help us uncover the specific instances where
personalization algorithms reinforce demographic biases".  This module
implements that follow-up on the collected datasets:

* **source classification** — every result URL is mapped to a source
  type (reference, directory, government, national news, statewide
  news, local outlet, business site, maps place, social, advocacy,
  academic);
* **locality share** — what fraction of a page is locally scoped
  content, by query type and granularity;
* **source diversity** — distinct domains and Shannon entropy of
  source types per page (low diversity = narrow information exposure);
* **advocacy balance** — for controversial queries, whether the
  pro/anti advocacy mix shifts with location (the Filter-Bubble
  concern that motivates the paper).

Classification is rule-based over hostnames with user-extendable rules,
mirroring how such coding is actually done on crawl data.
"""

from __future__ import annotations

import enum
import math
import re
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Pattern, Sequence, Tuple

from repro.core.datastore import SerpDataset, SerpRecord
from repro.stats.summaries import MeanStd, summarize

__all__ = [
    "SourceType",
    "SourceClassifier",
    "PageContentProfile",
    "ContentAnalysis",
]


class SourceType(enum.Enum):
    """Coarse categories of result sources."""

    REFERENCE = "reference"  # encyclopedias, fact banks
    DIRECTORY = "directory"  # listings/review aggregators
    GOVERNMENT = "government"  # .gov-style pages
    NEWS_NATIONAL = "news-national"
    NEWS_STATE = "news-state"  # statewide outlets
    LOCAL_OUTLET = "local-outlet"  # city sites / local papers
    BUSINESS = "business"  # a business's own web presence
    MAPS_PLACE = "maps-place"
    SOCIAL = "social"
    ADVOCACY_PRO = "advocacy-pro"
    ADVOCACY_CON = "advocacy-con"
    ACADEMIC = "academic"
    OTHER = "other"


#: Default hostname rules, first match wins.  Written against the
#: synthetic web's domains; replace or extend for a real crawl.
_DEFAULT_RULES: List[Tuple[str, SourceType]] = [
    (r"^maps\.", SourceType.MAPS_PLACE),
    (r"encyclopedia\.|refdesk\.|factcheckers\.", SourceType.REFERENCE),
    (r"citydirectory\.|travelreviews\.|listicles\.|rankings\.|consumerwatch\.|finder\.|mapsearch\.", SourceType.DIRECTORY),
    (r"citizensalliance\.", SourceType.ADVOCACY_PRO),
    (r"libertycoalition\.", SourceType.ADVOCACY_CON),
    # City sites must precede the government rule: cityofX.example.gov
    # is local content, not a state/federal page.
    (r"herald\.example\.com$|^cityof", SourceType.LOCAL_OUTLET),
    (r"\.example\.gov$|usa\.example\.gov", SourceType.GOVERNMENT),
    (r"dispatch\.example\.com$", SourceType.NEWS_STATE),
    (
        r"dailynational\.|usheadlines\.|thecapitoltimes\.|newswire\.|theeveningpost\.|broadcastnews\.|newsmagazine\.",
        SourceType.NEWS_NATIONAL,
    ),
    (r"chirper\.", SourceType.SOCIAL),
    (r"scholarlycommons\.|\.example\.edu$|thinktank\.", SourceType.ACADEMIC),
]


class SourceClassifier:
    """Rule-based hostname → :class:`SourceType` classification."""

    def __init__(self, rules: Optional[Sequence[Tuple[str, SourceType]]] = None):
        raw = list(rules) if rules is not None else list(_DEFAULT_RULES)
        self._rules: List[Tuple[Pattern[str], SourceType]] = [
            (re.compile(pattern), source_type) for pattern, source_type in raw
        ]

    def add_rule(self, pattern: str, source_type: SourceType) -> None:
        """Append a lowest-priority rule."""
        self._rules.append((re.compile(pattern), source_type))

    def classify(self, url: str) -> SourceType:
        """Source type of one result URL.

        Rules match the hostname; two URL-shape fallbacks recognise a
        business's own presence — a deep subdomain (the synthetic POIs'
        ``<name>.<city>.example.com`` sites), a chain-outlet path
        (``/locations/...``), or a deep directory listing path.
        """
        stripped = re.sub(r"^https?://", "", url).lower()
        host, _, path = stripped.partition("/")
        for pattern, source_type in self._rules:
            if pattern.search(host):
                # A deep citydirectory path is a specific business's
                # listing, not the directory's own search page.
                if (
                    source_type is SourceType.DIRECTORY
                    and host.startswith("citydirectory.")
                    and path.count("/") >= 2
                ):
                    return SourceType.BUSINESS
                return source_type
        if len(host.split(".")) >= 4 or path.startswith("locations/"):
            return SourceType.BUSINESS
        return SourceType.OTHER


@dataclass(frozen=True)
class PageContentProfile:
    """Content metrics of one result page."""

    counts: Dict[SourceType, int]
    distinct_domains: int
    total: int

    @property
    def locality_share(self) -> float:
        """Fraction of results from locally scoped sources."""
        if self.total == 0:
            return 0.0
        local = (
            self.counts.get(SourceType.BUSINESS, 0)
            + self.counts.get(SourceType.LOCAL_OUTLET, 0)
            + self.counts.get(SourceType.MAPS_PLACE, 0)
            + self.counts.get(SourceType.NEWS_STATE, 0)
        )
        return local / self.total

    @property
    def source_entropy(self) -> float:
        """Shannon entropy (bits) of the source-type distribution."""
        if self.total == 0:
            return 0.0
        entropy = 0.0
        for count in self.counts.values():
            if count:
                probability = count / self.total
                entropy -= probability * math.log2(probability)
        return entropy

    def advocacy_balance(self) -> Optional[float]:
        """Pro-share of advocacy results, or ``None`` when none present.

        0.5 is balanced; 1.0 all-pro; 0.0 all-con.
        """
        pro = self.counts.get(SourceType.ADVOCACY_PRO, 0)
        con = self.counts.get(SourceType.ADVOCACY_CON, 0)
        if pro + con == 0:
            return None
        return pro / (pro + con)


class ContentAnalysis:
    """Content metrics aggregated over a collected dataset."""

    def __init__(
        self, dataset: SerpDataset, *, classifier: Optional[SourceClassifier] = None
    ):
        self.dataset = dataset
        self.classifier = classifier or SourceClassifier()

    # -- per-page -------------------------------------------------------------

    def profile(self, record: SerpRecord) -> PageContentProfile:
        """Content profile of one page."""
        counts: Dict[SourceType, int] = {}
        domains = set()
        for url in record.urls:
            source_type = self.classifier.classify(url)
            counts[source_type] = counts.get(source_type, 0) + 1
            host = re.sub(r"^https?://", "", url).split("/", 1)[0]
            domains.add(".".join(host.split(".")[-3:]))
        return PageContentProfile(
            counts=counts, distinct_domains=len(domains), total=len(record.urls)
        )

    # -- aggregates ------------------------------------------------------------

    def _records(
        self, *, category: Optional[str], granularity: Optional[str]
    ) -> Iterable[SerpRecord]:
        return (
            r
            for r in self.dataset.filter(category=category, granularity=granularity)
            if r.copy_index == 0
        )

    def locality_share(
        self, category: str, granularity: Optional[str] = None
    ) -> MeanStd:
        """Mean locality share of pages for one query type."""
        shares = [
            self.profile(record).locality_share
            for record in self._records(category=category, granularity=granularity)
        ]
        return summarize(shares)

    def source_entropy(
        self, category: str, granularity: Optional[str] = None
    ) -> MeanStd:
        """Mean source-type entropy for one query type."""
        values = [
            self.profile(record).source_entropy
            for record in self._records(category=category, granularity=granularity)
        ]
        return summarize(values)

    def source_mix(
        self, category: str, granularity: Optional[str] = None
    ) -> Dict[SourceType, float]:
        """Fraction of all results per source type."""
        totals: Dict[SourceType, int] = {}
        grand_total = 0
        for record in self._records(category=category, granularity=granularity):
            profile = self.profile(record)
            grand_total += profile.total
            for source_type, count in profile.counts.items():
                totals[source_type] = totals.get(source_type, 0) + count
        if grand_total == 0:
            raise ValueError(f"no pages for category {category!r}")
        return {
            source_type: count / grand_total
            for source_type, count in sorted(totals.items(), key=lambda kv: -kv[1])
        }

    def advocacy_balance_by_location(
        self, granularity: str
    ) -> Dict[str, MeanStd]:
        """Per-location pro-share of advocacy sources (controversial).

        A location whose mean departs from the others would be seeing a
        politically slanted result mix — the geolocal Filter Bubble the
        paper looks for (and does not find).
        """
        balances: Dict[str, List[float]] = {}
        for record in self._records(category="controversial", granularity=granularity):
            balance = self.profile(record).advocacy_balance()
            if balance is not None:
                balances.setdefault(record.location_name, []).append(balance)
        if not balances:
            raise ValueError("no advocacy results in the dataset")
        return {name: summarize(values) for name, values in sorted(balances.items())}

    def advocacy_balance_spread(self, granularity: str) -> float:
        """Max − min of per-location mean advocacy balance.

        Near zero ⇒ no location-dependent slant (the expected null).
        """
        means = [
            stats.mean
            for stats in self.advocacy_balance_by_location(granularity).values()
        ]
        return max(means) - min(means)
