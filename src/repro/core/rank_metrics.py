"""Additional rank-comparison metrics.

The paper uses Jaccard and edit distance (§2.3); its predecessor
(Hannak et al., WWW'13 — "Measuring Personalization of Web Search")
also used Kendall's tau, and the measurement literature has since
standardised on Rank-Biased Overlap (Webber et al. 2010) for
*indefinite* rankings like SERPs.  Both are provided so downstream
audits can report top-weighted differences; the figure benchmarks stay
on the paper's two metrics.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

__all__ = ["kendall_tau", "rank_biased_overlap", "top_k_overlap"]


def kendall_tau(a: Sequence[str], b: Sequence[str]) -> float:
    """Kendall's tau between two rankings of the same item set.

    Only items present in *both* lists are compared (SERPs rarely hold
    exactly the same set); tau is computed over the concordant and
    discordant pairs of the shared items.  Returns 1.0 for identical
    relative order, -1.0 for reversed, and 1.0 by convention when fewer
    than two items are shared (no pair disagrees).
    """
    index_a: Dict[str, int] = {}
    for position, item in enumerate(a):
        index_a.setdefault(item, position)
    index_b: Dict[str, int] = {}
    for position, item in enumerate(b):
        index_b.setdefault(item, position)
    shared: List[str] = [item for item in index_a if item in index_b]
    if len(shared) < 2:
        return 1.0
    concordant = 0
    discordant = 0
    for i in range(len(shared)):
        for j in range(i + 1, len(shared)):
            first, second = shared[i], shared[j]
            order_a = index_a[first] - index_a[second]
            order_b = index_b[first] - index_b[second]
            if order_a * order_b > 0:
                concordant += 1
            else:
                discordant += 1
    total = concordant + discordant
    return (concordant - discordant) / total


def rank_biased_overlap(
    a: Sequence[str], b: Sequence[str], *, p: float = 0.9
) -> float:
    """Rank-Biased Overlap of two (possibly non-conjoint) rankings.

    The extrapolated RBO_ext of Webber, Moffat & Zobel (2010): agreement
    at each depth is weighted by ``p**(d-1)``, so disagreements near the
    top matter most.  ``p = 0.9`` weights roughly the first 10 ranks —
    appropriate for a results page.

    Returns a value in [0, 1]; 1.0 for identical rankings (two empty
    rankings are identical by convention).

    Raises:
        ValueError: if ``p`` is outside (0, 1).
    """
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    # Deduplicate while preserving order (URLs are unique on real SERPs,
    # but be safe).
    list_a = list(dict.fromkeys(a))
    list_b = list(dict.fromkeys(b))
    if not list_a and not list_b:
        return 1.0
    if not list_a or not list_b:
        return 0.0
    shorter, longer = sorted((list_a, list_b), key=len)
    s, l = len(shorter), len(longer)

    seen_shorter: set = set()
    seen_longer: set = set()
    overlap = 0  # |intersection of prefixes|
    summation = 0.0
    for depth in range(1, l + 1):
        if depth <= s:
            item_s = shorter[depth - 1]
            item_l = longer[depth - 1]
            if item_s == item_l:
                overlap += 1
            else:
                if item_s in seen_longer:
                    overlap += 1
                if item_l in seen_shorter:
                    overlap += 1
            seen_shorter.add(item_s)
            seen_longer.add(item_l)
        else:
            item_l = longer[depth - 1]
            if item_l in seen_shorter:
                overlap += 1
            seen_longer.add(item_l)
        agreement = overlap / depth
        summation += (p ** (depth - 1)) * agreement

    x_l = overlap  # overlap at full depth l
    x_s = len(set(shorter) & set(longer[:s]))
    # Webber et al. eq. 32: extrapolate the tail assuming the agreement
    # at depth l continues.
    summation *= 1 - p
    extrapolation = ((x_l - x_s) / l + x_s / s) * (p**l) if l else 0.0
    result = summation + extrapolation
    return max(0.0, min(1.0, result))


def top_k_overlap(a: Sequence[str], b: Sequence[str], k: int = 3) -> float:
    """Fraction of the top-``k`` results shared by two pages.

    The coarse "did the above-the-fold results change?" metric.

    Raises:
        ValueError: if ``k`` is not positive.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    top_a = set(a[:k])
    top_b = set(b[:k])
    if not top_a and not top_b:
        return 1.0
    return len(top_a & top_b) / max(len(top_a), len(top_b))
