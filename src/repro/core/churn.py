"""Temporal churn: how much one location's results move day to day.

Fig. 8 compares locations *against a baseline* over days; the natural
companion (used heavily in the authors' prior work) is each location
against *itself* on consecutive days.  Churn separates two time scales
the substrate models:

* news-driven churn — controversial queries rotate their News-card
  articles across days;
* ranking churn — the residual day-to-day movement of organic results
  (here: A/B re-draws, since base rankings are time-stable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.core.comparisons import compare_records
from repro.core.datastore import SerpDataset
from repro.core.parser import ResultType
from repro.stats.summaries import MeanStd, summarize

__all__ = ["ChurnCell", "ChurnAnalysis"]


@dataclass(frozen=True)
class ChurnCell:
    """Day-over-day churn for one (category, granularity)."""

    category: str
    granularity: str
    jaccard: MeanStd
    edit: MeanStd
    news_edit: MeanStd
    comparisons: int


class ChurnAnalysis:
    """Same-location, consecutive-day comparisons over a dataset."""

    def __init__(self, dataset: SerpDataset):
        self.dataset = dataset
        self._cells: Dict[tuple, ChurnCell] = {}

    def cell(self, category: str, granularity: str) -> ChurnCell:
        """Churn metrics for one (category, granularity)."""
        key = (category, granularity)
        cached = self._cells.get(key)
        if cached is not None:
            return cached

        days = self.dataset.days()
        if len(days) < 2:
            raise ValueError("churn needs at least two days of data")
        jaccards: List[float] = []
        edits: List[float] = []
        news_edits: List[float] = []
        subset = self.dataset.filter(category=category, granularity=granularity)
        for record in subset:
            if record.copy_index != 0:
                continue
            next_day = record.day + 1
            if next_day not in days:
                continue
            tomorrow = self.dataset.get(
                record.query,
                record.granularity,
                record.location_name,
                next_day,
                record.copy_index,
            )
            if tomorrow is None:
                continue
            comparison = compare_records(record, tomorrow)
            jaccards.append(comparison.jaccard)
            edits.append(float(comparison.edit))
            news_edits.append(float(comparison.edit_by_type[ResultType.NEWS]))
        if not edits:
            raise ValueError(f"no consecutive-day pairs for {key}")
        cell = ChurnCell(
            category=category,
            granularity=granularity,
            jaccard=summarize(jaccards),
            edit=summarize(edits),
            news_edit=summarize(news_edits),
            comparisons=len(edits),
        )
        self._cells[key] = cell
        return cell

    def news_share(self, category: str, granularity: str) -> float:
        """Fraction of day-over-day churn attributable to News results."""
        cell = self.cell(category, granularity)
        if cell.edit.mean == 0:
            return 0.0
        return cell.news_edit.mean / cell.edit.mean

    def churn_vs_noise(
        self, category: str, granularity: str
    ) -> Optional[float]:
        """Day-over-day churn minus the same-time noise floor.

        Positive values are *genuinely temporal* variation (news
        rotation, index updates) rather than request-level noise.
        """
        from repro.core.noise import NoiseAnalysis

        churn = self.cell(category, granularity).edit.mean
        noise = NoiseAnalysis(self.dataset).cell(category, granularity).edit.mean
        return churn - noise
