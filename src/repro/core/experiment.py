"""Study configuration (the experiment design of paper §2).

A :class:`StudyConfig` captures every methodological decision the paper
makes — and, importantly, lets each be *turned off* so the ablation
benchmarks can show why it is there (unpinned DNS, kept cookies, a
single crawl machine, no paired controls, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional

from repro.engine.calibration import EngineCalibration
from repro.engine.dialect import GOOGLE_LIKE, EngineDialect
from repro.queries.corpus import build_corpus
from repro.queries.model import Query

__all__ = ["StudyConfig", "DEFAULT_STUDY_SEED"]

#: Seed used by examples and benchmarks unless overridden.
DEFAULT_STUDY_SEED = 20151028


def _default_queries() -> List[Query]:
    return list(build_corpus())


@dataclass(frozen=True)
class StudyConfig:
    """Everything that defines one run of the study."""

    seed: int = DEFAULT_STUDY_SEED
    """Master seed: world, engine, location sampling, scheduling."""

    queries: List[Query] = field(default_factory=_default_queries)
    """The query corpus (paper: 240 terms)."""

    days: int = 5
    """Consecutive days each query block is repeated (paper: 5)."""

    copies_per_location: int = 2
    """Simultaneous identical browsers per location; copy 0 is the
    treatment, copy 1 its control (paper sends two identical queries)."""

    state_count: int = 22
    county_count: int = 22
    district_count: int = 15
    """Location counts per granularity (paper: 22 / 22 / 15)."""

    machine_count: int = 44
    """Crawl machines in the /24 (paper: 44)."""

    wait_between_queries_minutes: float = 11.0
    """Lock-step round spacing — above the engine's 10-minute session
    window (paper §2.2, noise control #3)."""

    queries_per_day_block: int = 120
    """Queries run per 5-day block (paper ran local+controversial for 5
    days, then politicians for 5 days)."""

    pin_datacenter: bool = True
    """Statically map the search hostname to one datacenter (paper §2.2,
    noise control #2).  Disabling it is an ablation."""

    max_retries: int = 2
    """Retries per query after a CAPTCHA, with escalating virtual-time
    backoff.  A real crawl has to absorb occasional rate limiting; only
    queries that fail every retry are recorded as failures."""

    retry_backoff_minutes: float = 1.5
    """Backoff before the first retry (the base of the shared
    :class:`~repro.faults.retry.RetryPolicy`).  Kept well under the
    lock-step round spacing so retried queries still land inside their
    round."""

    retry_cap_minutes: float = 8.0
    """Ceiling on per-attempt backoff.  The seed's doubling was
    unbounded; the cap keeps deep retry budgets from pushing attempts
    arbitrarily far past their round.  The default leaves the first
    three doublings of the default base untouched."""

    retry_jitter: float = 0.0
    """Relative jitter amplitude on retry delays, drawn
    deterministically per (browser, round, attempt).  ``0`` reproduces
    the seed's exact schedule."""

    fault_plan: Optional[object] = None
    """Optional :class:`~repro.faults.plan.FaultPlan`: inject a seeded,
    reproducible schedule of crashes, DNS failures, timeouts, 5xx,
    truncated SERPs, and rate-limit storms into the crawl.  ``None``
    (the default) wires the plain :class:`~repro.core.browser.Network`
    — byte-identical to the seed with zero overhead."""

    circuit_breakers: Optional[bool] = None
    """Per-IP circuit breakers on the crawl side: after repeated
    failures from one machine, further requests fail fast
    (``breaker-open``) until a cooldown passes.  ``None`` enables them
    exactly when a ``fault_plan`` is set."""

    clear_cookies: bool = True
    """Clear cookies after every query (paper §2.2, "Browser State")."""

    calibration: EngineCalibration = field(default_factory=EngineCalibration)
    """Engine tunables (ablations override these)."""

    dialect: EngineDialect = GOOGLE_LIKE
    """Which engine (hostname + HTML vocabulary) the study targets.

    The paper's conclusion notes the methodology extends to other
    engines; pass :data:`repro.engine.dialect.BINGO` (or a custom
    dialect) to audit a different one."""

    study_locations: Optional[object] = None
    """Explicit :class:`~repro.geo.granularity.StudyLocations` override.

    ``None`` selects the paper's US design (states / Ohio counties /
    Cuyahoga districts) from the seed; supplying a value transplants
    the study onto other geography — see
    :func:`repro.geo.germany.germany_study_locations`."""

    locator: Optional[object] = None
    """Explicit :class:`~repro.geo.locate.RegionLocator` override
    matching ``study_locations``; ``None`` means the US locator."""

    route_via_gateway: bool = False
    """Send the crawl through the :class:`~repro.serve.gateway.Gateway`
    (one engine replica per datacenter, routing, admission control)
    instead of calling the engine in-process.  Byte-parity with the
    direct path is guaranteed for every routing policy while the SERP
    cache stays disabled — the parity test pins this down."""

    gateway_routing: str = "round-robin"
    """Routing policy name when ``route_via_gateway`` is set (see
    :data:`repro.serve.routing.ROUTING_POLICIES`)."""

    gateway_cache_size: int = 0
    """Gateway SERP-cache capacity.  The default 0 keeps research
    fidelity (no caching, no request canonicalisation).  A positive
    size only affects cookie-less traffic — study browsers always
    present a cookie, so every crawl request bypasses the cache and
    parity survives regardless — but canonicalisation suppresses the
    per-request noise the paper measures on any cacheable traffic, so
    keep it 0 when reproducing figures."""

    def __post_init__(self) -> None:
        if self.days <= 0:
            raise ValueError("days must be positive")
        if self.copies_per_location < 1:
            raise ValueError("need at least one copy per location")
        if self.machine_count < 1:
            raise ValueError("need at least one machine")
        if not self.queries:
            raise ValueError("need at least one query")
        if self.wait_between_queries_minutes <= 0:
            raise ValueError("wait must be positive")
        max_block = int(24 * 60 // self.wait_between_queries_minutes)
        if self.queries_per_day_block > max_block:
            raise ValueError(
                f"{self.queries_per_day_block} queries at "
                f"{self.wait_between_queries_minutes}-minute spacing do not "
                f"fit in a day (max {max_block})"
            )
        if self.gateway_cache_size < 0:
            raise ValueError("gateway_cache_size must be non-negative")
        if self.retry_cap_minutes < self.retry_backoff_minutes:
            raise ValueError("retry_cap_minutes must be >= retry_backoff_minutes")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        from repro.serve.routing import ROUTING_POLICIES

        if self.gateway_routing not in ROUTING_POLICIES:
            raise ValueError(
                f"unknown gateway_routing {self.gateway_routing!r}; "
                f"known: {sorted(ROUTING_POLICIES)}"
            )

    def with_overrides(self, **kwargs) -> "StudyConfig":
        """A copy with some fields replaced."""
        return replace(self, **kwargs)

    @classmethod
    def small(
        cls,
        queries: Optional[List[Query]] = None,
        *,
        seed: int = DEFAULT_STUDY_SEED,
        days: int = 2,
        locations_per_granularity: int = 4,
    ) -> "StudyConfig":
        """A scaled-down configuration for tests and quick experiments.

        Keeps the full methodology (paired controls, lock-step, pinned
        DNS, cookie clearing) but shrinks the location sets, day count,
        and optionally the corpus.
        """
        config = cls(
            seed=seed,
            days=days,
            state_count=locations_per_granularity,
            county_count=locations_per_granularity,
            district_count=locations_per_granularity,
        )
        if queries is not None:
            config = config.with_overrides(queries=list(queries))
        return config
