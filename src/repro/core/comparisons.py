"""Shared pairwise-comparison machinery for the analyses.

Two comparison families, following paper §3:

* **noise pairs** — a treatment versus its same-location, same-time
  control (copy 0 vs copy 1);
* **treatment pairs** — all location pairs at one granularity (copy 0
  vs copy 0), whose differences above the noise floor are attributed to
  location-based personalization.

Both yield :class:`PageComparison` values carrying the full metrics and
the per-result-type filtered metrics used by the attribution figures.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional

from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.metrics import edit_distance, jaccard_index
from repro.core.parser import ResultType

__all__ = ["PageComparison", "compare_records", "iter_noise_pairs", "iter_treatment_pairs"]


@dataclass(frozen=True)
class PageComparison:
    """Metrics of one page-pair comparison."""

    query: str
    category: str
    granularity: str
    day: int
    location_a: str
    location_b: str
    jaccard: float
    edit: int
    edit_by_type: Dict[ResultType, int]

    @property
    def edit_other(self) -> int:
        """Edit operations not attributable to Maps or News results.

        Per paper Fig. 7: the overall edit distance minus the Maps-only
        and News-only components, floored at zero.
        """
        attributed = (
            self.edit_by_type[ResultType.MAPS] + self.edit_by_type[ResultType.NEWS]
        )
        return max(0, self.edit - attributed)


def compare_records(a: SerpRecord, b: SerpRecord) -> PageComparison:
    """Full and per-type metrics between two pages of the same query."""
    if a.query != b.query:
        raise ValueError(f"comparing different queries: {a.query!r} vs {b.query!r}")
    urls_a = a.urls_of_type(None)
    urls_b = b.urls_of_type(None)
    by_type = {
        rtype: edit_distance(a.urls_of_type(rtype), b.urls_of_type(rtype))
        for rtype in (ResultType.MAPS, ResultType.NEWS)
    }
    return PageComparison(
        query=a.query,
        category=a.category,
        granularity=a.granularity,
        day=a.day,
        location_a=a.location_name,
        location_b=b.location_name,
        jaccard=jaccard_index(urls_a, urls_b),
        edit=edit_distance(urls_a, urls_b),
        edit_by_type=by_type,
    )


def iter_noise_pairs(
    dataset: SerpDataset,
    *,
    category: Optional[str] = None,
    granularity: Optional[str] = None,
    query: Optional[str] = None,
    day: Optional[int] = None,
) -> Iterator[PageComparison]:
    """Treatment-vs-control comparisons (same location, same time)."""
    subset = dataset.filter(
        category=category, granularity=granularity, query=query, day=day
    )
    for record in subset:
        if record.copy_index != 0:
            continue
        control = dataset.get(
            record.query, record.granularity, record.location_name, record.day, 1
        )
        if control is not None:
            yield compare_records(record, control)


def iter_treatment_pairs(
    dataset: SerpDataset,
    *,
    category: Optional[str] = None,
    granularity: Optional[str] = None,
    query: Optional[str] = None,
    day: Optional[int] = None,
    copy_index: int = 0,
) -> Iterator[PageComparison]:
    """All-location-pair comparisons at one moment (copy vs same copy)."""
    subset = dataset.filter(
        category=category, granularity=granularity, query=query, day=day
    )
    grouped: Dict[tuple, List[SerpRecord]] = {}
    for record in subset:
        if record.copy_index != copy_index:
            continue
        grouped.setdefault((record.query, record.granularity, record.day), []).append(
            record
        )
    for records in grouped.values():
        records.sort(key=lambda r: r.location_name)
        for a, b in itertools.combinations(records, 2):
            yield compare_records(a, b)
