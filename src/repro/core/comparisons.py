"""Shared pairwise-comparison machinery for the analyses.

Two comparison families, following paper §3:

* **noise pairs** — a treatment versus its same-location, same-time
  control (copy 0 vs copy 1);
* **treatment pairs** — all location pairs at one granularity (copy 0
  vs copy 0), whose differences above the noise floor are attributed to
  location-based personalization.

Both yield :class:`PageComparison` values carrying the full metrics and
the per-result-type filtered metrics used by the attribution figures.

Both iterators silently *skip* pairs whose other half is missing —
a real crawl loses pages to CAPTCHAs, crashes, and timeouts, and the
analyses must degrade gracefully.  :func:`per_location_coverage` makes
the loss visible instead of silent: it folds the dataset and the
crawl's failure log into a per-location ledger (collected / lost /
loss-by-kind) so a reader can judge whether a location's metrics rest
on enough pages.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional

from repro.core.datastore import SerpDataset, SerpRecord
from repro.core.metrics import edit_distance, jaccard_index
from repro.core.parser import ResultType

__all__ = [
    "PageComparison",
    "LocationCoverage",
    "compare_records",
    "iter_noise_pairs",
    "iter_treatment_pairs",
    "per_location_coverage",
]


@dataclass(frozen=True)
class PageComparison:
    """Metrics of one page-pair comparison."""

    query: str
    category: str
    granularity: str
    day: int
    location_a: str
    location_b: str
    jaccard: float
    edit: int
    edit_by_type: Dict[ResultType, int]

    @property
    def edit_other(self) -> int:
        """Edit operations not attributable to Maps or News results.

        Per paper Fig. 7: the overall edit distance minus the Maps-only
        and News-only components, floored at zero.
        """
        attributed = (
            self.edit_by_type[ResultType.MAPS] + self.edit_by_type[ResultType.NEWS]
        )
        return max(0, self.edit - attributed)


def compare_records(a: SerpRecord, b: SerpRecord) -> PageComparison:
    """Full and per-type metrics between two pages of the same query."""
    if a.query != b.query:
        raise ValueError(f"comparing different queries: {a.query!r} vs {b.query!r}")
    urls_a = a.urls_of_type(None)
    urls_b = b.urls_of_type(None)
    by_type = {
        rtype: edit_distance(a.urls_of_type(rtype), b.urls_of_type(rtype))
        for rtype in (ResultType.MAPS, ResultType.NEWS)
    }
    return PageComparison(
        query=a.query,
        category=a.category,
        granularity=a.granularity,
        day=a.day,
        location_a=a.location_name,
        location_b=b.location_name,
        jaccard=jaccard_index(urls_a, urls_b),
        edit=edit_distance(urls_a, urls_b),
        edit_by_type=by_type,
    )


def iter_noise_pairs(
    dataset: SerpDataset,
    *,
    category: Optional[str] = None,
    granularity: Optional[str] = None,
    query: Optional[str] = None,
    day: Optional[int] = None,
) -> Iterator[PageComparison]:
    """Treatment-vs-control comparisons (same location, same time)."""
    subset = dataset.filter(
        category=category, granularity=granularity, query=query, day=day
    )
    for record in subset:
        if record.copy_index != 0:
            continue
        control = dataset.get(
            record.query, record.granularity, record.location_name, record.day, 1
        )
        if control is not None:
            yield compare_records(record, control)


def iter_treatment_pairs(
    dataset: SerpDataset,
    *,
    category: Optional[str] = None,
    granularity: Optional[str] = None,
    query: Optional[str] = None,
    day: Optional[int] = None,
    copy_index: int = 0,
) -> Iterator[PageComparison]:
    """All-location-pair comparisons at one moment (copy vs same copy)."""
    subset = dataset.filter(
        category=category, granularity=granularity, query=query, day=day
    )
    grouped: Dict[tuple, List[SerpRecord]] = {}
    for record in subset:
        if record.copy_index != copy_index:
            continue
        grouped.setdefault((record.query, record.granularity, record.day), []).append(
            record
        )
    for records in grouped.values():
        records.sort(key=lambda r: r.location_name)
        for a, b in itertools.combinations(records, 2):
            yield compare_records(a, b)


@dataclass
class LocationCoverage:
    """How completely one location was crawled."""

    location_name: str
    collected: int = 0
    """Pages that made it into the dataset."""
    lost: int = 0
    """Queries recorded in the failure log instead."""
    lost_by_kind: Dict[str, int] = field(default_factory=dict)
    """Loss broken down by :class:`~repro.faults.plan.FailureKind` value."""

    @property
    def expected(self) -> int:
        """Queries the schedule issued for this location."""
        return self.collected + self.lost

    @property
    def coverage(self) -> float:
        """Fraction of expected pages actually collected (1.0 if none
        were expected)."""
        if self.expected == 0:
            return 1.0
        return self.collected / self.expected


def per_location_coverage(
    dataset: SerpDataset, failures: Iterable = ()
) -> Dict[str, LocationCoverage]:
    """Per-location crawl completeness, keyed by qualified location name.

    ``failures`` is the study's :class:`~repro.core.runner.CrawlFailure`
    log (anything with ``location_name`` and ``kind`` attributes works).
    Together with the dataset it reconstructs exactly what the schedule
    asked for, so ``collected + lost`` needs no external round count —
    and the function works on any filtered subset as well.
    """
    coverage: Dict[str, LocationCoverage] = {}

    def entry(location_name: str) -> LocationCoverage:
        if location_name not in coverage:
            coverage[location_name] = LocationCoverage(location_name)
        return coverage[location_name]

    for record in dataset:
        entry(record.location_name).collected += 1
    for failure in failures:
        slot = entry(failure.location_name)
        slot.lost += 1
        kind = getattr(failure, "kind", "unknown")
        slot.lost_by_kind[kind] = slot.lost_by_kind.get(kind, 0) + 1
    return coverage
