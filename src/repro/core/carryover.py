"""Session-carryover measurement — why the paper waits 11 minutes.

Prior work found Google personalizes on searches made within the last
10 minutes (paper §2.2, noise control #3).  This experiment measures
that carryover directly: a *primed* browser issues a priming query and
then the target query after a configurable wait (cookies retained),
while a *fresh* browser issues only the target query.  The edit
distance between their result pages, swept over wait times, shows the
contamination and its cutoff — and therefore why the paper's 11-minute
spacing (plus cookie clearing) is sufficient.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.browser import MobileBrowser, Network
from repro.core.metrics import edit_distance, jaccard_index
from repro.core.parser import parse_serp_html
from repro.engine.calibration import EngineCalibration
from repro.engine.datacenters import DatacenterCluster
from repro.engine.frontend import SearchEngine
from repro.geo.coords import LatLon
from repro.geo.cuyahoga import CUYAHOGA_CENTER
from repro.net.dns import DNSResolver
from repro.net.geoip import GeoIPDatabase
from repro.net.machines import MachineFleet
from repro.queries.corpus import build_corpus
from repro.seeding import derive_seed
from repro.stats.summaries import MeanStd, summarize
from repro.web.world import WebWorld

__all__ = ["CarryoverPoint", "CarryoverResult", "run_carryover_experiment"]

#: Priming/target pairs where the primer's top results are topically
#: adjacent to the target query (brand → category).
DEFAULT_QUERY_PAIRS: List[Tuple[str, str]] = [
    ("Starbucks", "Coffee"),
    ("McDonalds", "Burger"),
    ("KFC", "Fast Food"),
    ("Subway", "Restaurant"),
]


@dataclass(frozen=True)
class CarryoverPoint:
    """Contamination at one wait time."""

    wait_minutes: float
    edit: MeanStd
    jaccard: MeanStd

    @property
    def contaminated(self) -> bool:
        """Whether any contamination is visible at this wait."""
        return self.edit.mean > 0.0


@dataclass(frozen=True)
class CarryoverResult:
    """The full wait-time sweep."""

    points: List[CarryoverPoint]
    window_minutes: float

    def cutoff_wait(self) -> Optional[float]:
        """The first swept wait with zero mean contamination."""
        for point in self.points:
            if not point.contaminated:
                return point.wait_minutes
        return None

    def render(self) -> str:
        """A text table of contamination vs. wait time."""
        lines = [
            "Session carryover: primed vs fresh browser, same target query",
            f"(engine session window: {self.window_minutes:.0f} minutes)",
            f"{'wait (min)':>10s} {'edit distance':>14s} {'jaccard':>8s}",
        ]
        for point in self.points:
            lines.append(
                f"{point.wait_minutes:10.1f} {point.edit.mean:14.2f} "
                f"{point.jaccard.mean:8.3f}"
            )
        cutoff = self.cutoff_wait()
        if cutoff is not None:
            lines.append(
                f"carryover gone at {cutoff:.0f}-minute waits — the paper's "
                "11-minute spacing clears the window."
            )
        return "\n".join(lines)


def run_carryover_experiment(
    seed: int,
    *,
    waits_minutes: Sequence[float] = (1.0, 3.0, 5.0, 8.0, 9.5, 11.0, 15.0),
    query_pairs: Optional[Sequence[Tuple[str, str]]] = None,
    gps: LatLon = CUYAHOGA_CENTER,
    calibration: Optional[EngineCalibration] = None,
) -> CarryoverResult:
    """Sweep wait times and measure history contamination.

    For every (priming, target) pair and wait ``w``: a primed browser
    searches the priming query at t₀ and the target at t₀+w without
    clearing cookies; a fresh browser searches the target at t₀+w.
    Nonce-derived noise is eliminated by comparing both browsers against
    the *same* request identity — the pages differ only through session
    state.

    Args:
        seed: Master seed (world + engine).
        waits_minutes: Wait times to sweep (paper's design point: 11).
        query_pairs: (priming, target) query texts; defaults to
            brand → category pairs.
        gps: Fixed location for every request.
        calibration: Engine tunables.
    """
    if not waits_minutes:
        raise ValueError("need at least one wait time")
    pairs = list(query_pairs) if query_pairs is not None else list(DEFAULT_QUERY_PAIRS)
    if not pairs:
        raise ValueError("need at least one query pair")

    calibration = calibration or EngineCalibration()
    world = WebWorld(derive_seed(seed, "world"))
    cluster = DatacenterCluster()
    resolver = DNSResolver()
    cluster.install_into(resolver)
    resolver.pin(cluster.hostname, cluster[0].frontend_ip)
    geoip = GeoIPDatabase()
    fleet = MachineFleet.crawl_fleet(count=4)
    geoip.register_fleet(fleet)
    engine = SearchEngine(
        world,
        cluster,
        geoip,
        corpus=build_corpus(),
        calibration=calibration,
        seed=derive_seed(seed, "engine"),
    )
    network = Network(resolver, engine)

    points: List[CarryoverPoint] = []
    base_time = 0.0
    for wait in waits_minutes:
        edits: List[float] = []
        jaccards: List[float] = []
        for pair_index, (priming, target) in enumerate(pairs):
            # Distinct epochs per (wait, pair) keep sessions independent.
            t0 = base_time
            base_time += 24 * 60.0

            # A shared nonce namespace pins both browsers to identical
            # per-request noise draws (A/B bucket, card gates), so the
            # only remaining difference is the primed browser's session
            # state.  Cookie identities stay distinct.
            namespace = f"carryover:{wait}:{pair_index}"
            primed = MobileBrowser(
                f"{namespace}:primed", fleet[0], network, nonce_namespace=namespace
            )
            fresh = MobileBrowser(
                f"{namespace}:fresh", fleet[1], network, nonce_namespace=namespace
            )
            primed.geolocation.set(gps)
            fresh.geolocation.set(gps)

            primed.search(priming, t0)  # keep cookies: the contamination
            fresh._request_counter += 1  # align request counters/nonces

            primed_page = parse_serp_html(primed.search(target, t0 + wait).html)
            fresh_page = parse_serp_html(fresh.search(target, t0 + wait).html)
            edits.append(float(edit_distance(primed_page.urls(), fresh_page.urls())))
            jaccards.append(jaccard_index(primed_page.urls(), fresh_page.urls()))
        points.append(
            CarryoverPoint(
                wait_minutes=wait,
                edit=summarize(edits),
                jaccard=summarize(jaccards),
            )
        )
    return CarryoverResult(
        points=points, window_minutes=calibration.session_window_minutes
    )
