"""Personalization analysis (paper §3.2, Figures 5–7).

Personalization is measured by comparing *treatments to each other*
(all location pairs at one granularity, same query, same moment); any
differences above the noise floor are attributed to location.  The
paper's headline findings:

* local queries personalize heavily — 18–34% of results change and
  6–10 URLs are reordered (after subtracting noise);
* controversial and politician queries sit at the noise floor;
* personalization grows with distance, with the big jump between the
  county and state granularities;
* Maps explains only 18–27% of local-query differences — most changes
  hit "normal" results.
"""

from __future__ import annotations

from typing import Dict, List

from repro.core.comparisons import PageComparison, iter_treatment_pairs
from repro.core.datastore import SerpDataset
from repro.core.noise import NoiseAnalysis
from repro.core.parser import ResultType
from repro.stats.summaries import MeanStd, summarize

__all__ = ["PersonalizationCell", "PersonalizationAnalysis"]


class PersonalizationCell:
    """Metrics for one (category, granularity) cell of Fig. 5."""

    def __init__(self, comparisons: List[PageComparison]):
        if not comparisons:
            raise ValueError("no treatment pairs in this cell")
        self.comparisons = comparisons
        self.jaccard: MeanStd = summarize(c.jaccard for c in comparisons)
        self.edit: MeanStd = summarize(float(c.edit) for c in comparisons)

    def edit_component(self, result_type: ResultType) -> MeanStd:
        """Mean edit distance attributable to one result type (Fig. 7)."""
        return summarize(float(c.edit_by_type[result_type]) for c in self.comparisons)

    def edit_other(self) -> MeanStd:
        """Mean edit distance hitting "normal" results (Fig. 7's Other)."""
        return summarize(float(c.edit_other) for c in self.comparisons)

    def type_share(self, result_type: ResultType) -> float:
        """Fraction of all edit operations attributable to one type."""
        total = sum(c.edit for c in self.comparisons)
        if total == 0:
            return 0.0
        attributed = sum(c.edit_by_type[result_type] for c in self.comparisons)
        return attributed / total


class PersonalizationAnalysis:
    """All personalization aggregations over one collected dataset."""

    def __init__(self, dataset: SerpDataset):
        self.dataset = dataset
        self.noise = NoiseAnalysis(dataset)
        self._cells: Dict[tuple, PersonalizationCell] = {}

    def cell(self, category: str, granularity: str) -> PersonalizationCell:
        """The Fig. 5 cell for one (category, granularity)."""
        key = (category, granularity)
        cached = self._cells.get(key)
        if cached is None:
            cached = PersonalizationCell(
                list(
                    iter_treatment_pairs(
                        self.dataset, category=category, granularity=granularity
                    )
                )
            )
            self._cells[key] = cached
        return cached

    def net_edit(self, category: str, granularity: str) -> float:
        """Mean edit distance above the noise floor.

        The paper reads personalization as the gap between the Fig. 5
        bars and the Fig. 2 noise levels.
        """
        return max(
            0.0,
            self.cell(category, granularity).edit.mean
            - self.noise.noise_floor_edit(category, granularity),
        )

    def per_term(
        self, category: str, granularity: str
    ) -> Dict[str, PersonalizationCell]:
        """Per-query cells (Fig. 6's per-term breakdown)."""
        by_query: Dict[str, List[PageComparison]] = {}
        for comparison in iter_treatment_pairs(
            self.dataset, category=category, granularity=granularity
        ):
            by_query.setdefault(comparison.query, []).append(comparison)
        return {query: PersonalizationCell(pairs) for query, pairs in by_query.items()}

    def significance(self, category: str, granularity: str):
        """Mann–Whitney U test: personalization vs. the noise distribution.

        Compares the edit distances of all treatment pairs against the
        edit distances of all treatment/control pairs for the same
        (category, granularity).  A significant result is the formal
        version of a Fig. 5 bar clearing its noise floor.
        """
        from repro.core.comparisons import iter_noise_pairs
        from repro.stats.hypothesis_tests import mann_whitney_u

        treatment_edits = [float(c.edit) for c in self.cell(category, granularity).comparisons]
        noise_edits = [
            float(c.edit)
            for c in iter_noise_pairs(
                self.dataset, category=category, granularity=granularity
            )
        ]
        return mann_whitney_u(treatment_edits, noise_edits)

    def edit_confidence_interval(
        self, category: str, granularity: str, *, confidence: float = 0.95, seed: int = 0
    ):
        """Bootstrap CI for the mean personalization edit distance."""
        from repro.stats.hypothesis_tests import bootstrap_ci

        edits = [float(c.edit) for c in self.cell(category, granularity).comparisons]
        return bootstrap_ci(edits, confidence=confidence, seed=seed)

    def type_decomposition(
        self, category: str, granularity: str
    ) -> Dict[str, float]:
        """Fig. 7's stacked decomposition: Maps / News / Other means."""
        cell = self.cell(category, granularity)
        return {
            "maps": cell.edit_component(ResultType.MAPS).mean,
            "news": cell.edit_component(ResultType.NEWS).mean,
            "other": cell.edit_other().mean,
        }
