"""Page-depth experiment: does personalization persist beyond page 1?

The paper parses only the first page of results ("we save the first
page of search results"), where meta-cards live and users look.  A
natural follow-up the library supports: request deeper pages via the
frontend's pagination and measure location personalization per depth.

In the simulated engine — as on a real one — the first page of a
generic local query is dominated by nationally relevant sites with a
few local results, while deeper pages drain the *local* candidate pool;
so location differences do not fade with depth, they grow.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.browser import MobileBrowser, Network
from repro.core.metrics import edit_distance, jaccard_index
from repro.core.parser import parse_serp_html
from repro.engine.calibration import EngineCalibration
from repro.engine.datacenters import DatacenterCluster
from repro.engine.frontend import SearchEngine
from repro.geo.granularity import Granularity, select_study_locations
from repro.net.dns import DNSResolver
from repro.net.geoip import GeoIPDatabase
from repro.net.machines import MachineFleet
from repro.queries.corpus import build_corpus
from repro.queries.model import Query, QueryCategory
from repro.seeding import derive_seed
from repro.stats.summaries import MeanStd, summarize

__all__ = ["PageDepthCell", "PaginationResult", "run_pagination_experiment"]


@dataclass(frozen=True)
class PageDepthCell:
    """Cross-location personalization at one page depth."""

    page: int
    jaccard: MeanStd
    edit: MeanStd
    mean_links: float


@dataclass(frozen=True)
class PaginationResult:
    """The full depth sweep."""

    cells: List[PageDepthCell]
    location_count: int
    query_count: int

    def render(self) -> str:
        """A text table of personalization vs page depth."""
        lines = [
            "Personalization by result-page depth (cross-location pairs)",
            f"({self.query_count} local queries x {self.location_count} locations)",
            f"{'page':>5s} {'links/page':>11s} {'jaccard':>8s} {'edit':>6s}",
        ]
        for cell in self.cells:
            lines.append(
                f"{cell.page + 1:5d} {cell.mean_links:11.1f} "
                f"{cell.jaccard.mean:8.3f} {cell.edit.mean:6.2f}"
            )
        if len(self.cells) >= 2 and self.cells[1].jaccard.mean < self.cells[0].jaccard.mean:
            lines.append(
                "deeper pages are MORE location-specific: the local candidate "
                "pool drains below the fold."
            )
        return "\n".join(lines)


def run_pagination_experiment(
    seed: int,
    *,
    queries: Optional[List[Query]] = None,
    pages: Sequence[int] = (0, 1),
    location_count: int = 6,
    calibration: Optional[EngineCalibration] = None,
) -> PaginationResult:
    """Measure cross-location differences at several page depths.

    Args:
        seed: Master seed (world, engine, location sample).
        queries: Local queries to probe (default: 6 generic local terms).
        pages: Zero-based page indexes to sweep.
        location_count: State-granularity locations compared pairwise.
        calibration: Engine tunables.
    """
    if not pages:
        raise ValueError("need at least one page index")
    if location_count < 2:
        raise ValueError("need at least two locations")
    if queries is None:
        corpus = build_corpus()
        queries = [
            q for q in corpus.by_category(QueryCategory.LOCAL) if not q.is_brand
        ][:6]
    if not queries:
        raise ValueError("need at least one query")
    if calibration is None:
        # Deeper pages need a deeper candidate fetch, like a real
        # engine's larger retrieval window for start= offsets.
        calibration = EngineCalibration(
            poi_radius_miles=5.0, poi_candidate_limit=80
        )

    world_seed = derive_seed(seed, "world")
    from repro.web.world import WebWorld

    world = WebWorld(world_seed)
    cluster = DatacenterCluster()
    resolver = DNSResolver()
    cluster.install_into(resolver)
    resolver.pin(cluster.hostname, cluster[0].frontend_ip)
    geoip = GeoIPDatabase()
    fleet = MachineFleet.crawl_fleet(count=max(8, location_count))
    geoip.register_fleet(fleet)
    engine = SearchEngine(
        world,
        cluster,
        geoip,
        corpus=build_corpus(),
        calibration=calibration or EngineCalibration(),
        seed=derive_seed(seed, "engine"),
    )
    network = Network(resolver, engine)

    locations = select_study_locations(seed, state_count=location_count).locations(
        Granularity.NATIONAL
    )
    browsers: List[MobileBrowser] = []
    for index, region in enumerate(locations):
        browser = MobileBrowser(
            f"pagination:{region.qualified_name}",
            fleet[index % len(fleet)],
            network,
        )
        browser.geolocation.set(region.center)
        browsers.append(browser)

    cells: List[PageDepthCell] = []
    for page in sorted(pages):
        jaccards: List[float] = []
        edits: List[float] = []
        link_counts: List[int] = []
        for query_index, query in enumerate(queries):
            timestamp = query_index * 11.0
            page_urls: List[List[str]] = []
            for browser in browsers:
                crawl = browser.search(query.text, timestamp, page=page)
                browser.clear_cookies()
                if not crawl.ok:
                    raise RuntimeError("pagination crawl was rate-limited")
                urls = parse_serp_html(crawl.html).urls()
                page_urls.append(urls)
                link_counts.append(len(urls))
            for i in range(len(page_urls)):
                for j in range(i + 1, len(page_urls)):
                    jaccards.append(jaccard_index(page_urls[i], page_urls[j]))
                    edits.append(float(edit_distance(page_urls[i], page_urls[j])))
        cells.append(
            PageDepthCell(
                page=page,
                jaccard=summarize(jaccards),
                edit=summarize(edits),
                mean_links=summarize([float(c) for c in link_counts]).mean,
            )
        )
    return PaginationResult(
        cells=cells, location_count=len(locations), query_count=len(queries)
    )
