"""One-shot markdown report generation.

``generate_markdown`` turns a collected dataset into a self-contained
markdown report — every figure table, the noise/personalization
headlines, result-type attribution, consistency, and (optionally) the
content-analysis and positional extensions — the artifact you attach to
an audit.
"""

from __future__ import annotations

from typing import List, Optional

from repro.core.datastore import SerpDataset
from repro.core.parser import ResultType
from repro.core.report import CATEGORY_ORDER, GRANULARITY_ORDER, StudyReport

__all__ = ["generate_markdown"]


def _md_table(headers: List[str], rows: List[List[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join("---" for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def generate_markdown(
    dataset: SerpDataset,
    *,
    title: str = "Location-personalization audit",
    include_extensions: bool = True,
) -> str:
    """Render the full audit of ``dataset`` as markdown text."""
    report = StudyReport(dataset)
    analysis = report.personalization
    granularities = report.granularities()
    categories = report.categories()

    sections: List[str] = [f"# {title}", ""]
    sections.append(
        f"Dataset: {len(dataset)} pages — {len(dataset.queries())} queries, "
        f"{sum(len(dataset.locations(g)) for g in granularities)} locations, "
        f"{len(dataset.days())} days, categories: {', '.join(categories)}."
    )

    # -- headline -------------------------------------------------------------
    sections.append("\n## Headline: net personalization (edit ops above noise)\n")
    rows = []
    for category in categories:
        row = [category]
        for granularity in granularities:
            row.append(f"{analysis.net_edit(category, granularity):.2f}")
        rows.append(row)
    sections.append(_md_table(["category"] + granularities, rows))

    # -- noise -----------------------------------------------------------------
    sections.append("\n## Noise (treatment vs control)\n")
    rows = [
        [
            r["granularity"],
            r["category"],
            f"{r['jaccard_mean']:.3f}",
            f"{r['edit_mean']:.2f} ± {r['edit_std']:.2f}",
            str(r["pairs"]),
        ]
        for r in report.fig2_rows()
    ]
    sections.append(
        _md_table(["granularity", "category", "jaccard", "edit", "n"], rows)
    )

    # -- personalization ----------------------------------------------------------
    sections.append("\n## Personalization (all location pairs)\n")
    rows = [
        [
            r["granularity"],
            r["category"],
            f"{r['jaccard_mean']:.3f}",
            f"{r['edit_mean']:.2f}",
            f"{r['noise_edit']:.2f}",
        ]
        for r in report.fig5_rows()
    ]
    sections.append(
        _md_table(
            ["granularity", "category", "jaccard", "edit", "noise floor"], rows
        )
    )

    # -- attribution -----------------------------------------------------------------
    sections.append("\n## Result-type attribution (edit components)\n")
    rows = [
        [
            r["category"],
            r["granularity"],
            f"{r['maps']:.2f}",
            f"{r['news']:.2f}",
            f"{r['other']:.2f}",
        ]
        for r in report.fig7_rows()
    ]
    sections.append(_md_table(["category", "granularity", "maps", "news", "other"], rows))

    # -- most personalized terms ---------------------------------------------------------
    sections.append("\n## Most and least personalized terms (national)\n")
    national = "national" if "national" in granularities else granularities[-1]
    for category in categories:
        cells = analysis.per_term(category, national)
        ranked = sorted(cells.items(), key=lambda kv: -kv[1].edit.mean)
        top = ", ".join(f"{t} ({c.edit.mean:.1f})" for t, c in ranked[:3])
        bottom = ", ".join(f"{t} ({c.edit.mean:.1f})" for t, c in ranked[-3:])
        sections.append(f"* **{category}** — most: {top}; least: {bottom}")

    # -- consistency ----------------------------------------------------------------------
    if len(dataset.days()) >= 2:
        sections.append("\n## Consistency over days\n")
        from repro.core.consistency import ConsistencyAnalysis

        consistency = ConsistencyAnalysis(dataset)
        for granularity in granularities:
            stability = consistency.day_to_day_stability(granularity)
            sections.append(
                f"* {granularity}: max day-to-day movement "
                f"{stability:.2f} edit ops"
            )
        groups = consistency.cluster_groups(granularities[0], margin=1.0)
        if groups:
            rendered = "; ".join(
                "{" + ", ".join(n.split("/")[-1] for n in g) + "}" for g in groups
            )
            sections.append(f"* noise-floor clusters at {granularities[0]}: {rendered}")

    # -- extensions ---------------------------------------------------------------------------
    if include_extensions:
        sections.append("\n## Extensions\n")
        from repro.core.content import ContentAnalysis
        from repro.core.positions import PositionalAnalysis

        content = ContentAnalysis(dataset)
        for category in categories:
            try:
                locality = content.locality_share(category)
                sections.append(
                    f"* locality share ({category}): {locality.mean:.3f}"
                )
            except ValueError:
                pass
        positions = PositionalAnalysis(dataset)
        try:
            split = positions.top_vs_bottom(categories[-1], national, split=4)
            sections.append(
                f"* positional volatility ({categories[-1]}, {national}): "
                f"top-4 {split['top']:.2f} vs below {split['bottom']:.2f}"
            )
            overlap = positions.suggestion_overlap(categories[-1], national)
            sections.append(
                f"* suggestion-strip overlap ({categories[-1]}, {national}): "
                f"{overlap.mean:.3f}"
            )
        except ValueError:
            pass

    sections.append("")
    return "\n".join(sections)
