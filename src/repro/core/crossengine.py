"""Cross-engine auditing — the paper's "other search engines" extension.

The conclusion of the paper notes the methodology "can easily be
extended to other countries and search engines".  This module does the
engine half: it runs the *same* study design (same world, same
locations, same queries, same schedule) against two engines that differ
in ranking policy and markup dialect, then compares

* how strongly each engine personalizes by location (Fig. 5 per engine),
* how much the two engines' result sets overlap for identical
  (query, location, moment) probes.

Both engines rank the same synthetic web, so overlap is meaningful —
just as Google and Bing index the same underlying sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.datastore import SerpDataset
from repro.core.experiment import StudyConfig
from repro.core.metrics import jaccard_index
from repro.core.personalization import PersonalizationAnalysis
from repro.core.rank_metrics import rank_biased_overlap
from repro.core.runner import Study
from repro.engine.calibration import EngineCalibration
from repro.engine.dialect import BINGO, GOOGLE_LIKE, EngineDialect
from repro.stats.summaries import MeanStd, summarize

__all__ = ["EngineAudit", "CrossEngineComparison", "compare_engines", "BINGO_CALIBRATION"]

#: A plausibly different ranking policy for the second engine: a larger
#: local pack shown less often, stronger reliance on nationally scoped
#: results (weaker location keying), and a different noise profile.
BINGO_CALIBRATION = EngineCalibration(
    organic_slots=15,
    maps_prob_generic=0.55,
    maps_card_size=4,
    state_perturb_local_generic=0.20,
    metro_perturb_local_generic=0.16,
    ab_jitter_local=0.10,
    ab_jitter_national=0.05,
    poi_radius_miles=3.5,
    snap_cell_miles=3.0,
    index_bias=0.9,
)


@dataclass(frozen=True)
class EngineAudit:
    """One engine's personalization summary."""

    engine: str
    dataset: SerpDataset
    local_edit_by_granularity: Dict[str, float]
    local_net_by_granularity: Dict[str, float]
    noise_edit_local: float

    @classmethod
    def from_dataset(cls, engine: str, dataset: SerpDataset) -> "EngineAudit":
        """Summarise one engine's collected dataset."""
        analysis = PersonalizationAnalysis(dataset)
        granularities = dataset.granularities()
        return cls(
            engine=engine,
            dataset=dataset,
            local_edit_by_granularity={
                g: analysis.cell("local", g).edit.mean for g in granularities
            },
            local_net_by_granularity={
                g: analysis.net_edit("local", g) for g in granularities
            },
            noise_edit_local=analysis.noise.cell(
                "local", granularities[0]
            ).edit.mean,
        )


@dataclass(frozen=True)
class CrossEngineComparison:
    """Result of auditing two engines side by side."""

    audits: Tuple[EngineAudit, EngineAudit]
    overlap: MeanStd
    """Jaccard overlap between the two engines' pages for identical
    (query, granularity, location, day) probes."""

    overlap_by_category: Dict[str, MeanStd]

    rbo: MeanStd
    """Rank-Biased Overlap between the engines' pages — order-sensitive,
    so it separates 'same links, different ranking' from 'same page'."""

    def more_personalized_engine(self, granularity: str = "national") -> str:
        """Name of the engine with the higher net local personalization."""
        a, b = self.audits
        return (
            a.engine
            if a.local_net_by_granularity[granularity]
            >= b.local_net_by_granularity[granularity]
            else b.engine
        )

    def render(self) -> str:
        """A text table of the comparison."""
        a, b = self.audits
        granularities = sorted(
            a.local_edit_by_granularity,
            key=["county", "state", "national"].index,
        )
        lines = ["Cross-engine audit (same world, same probes)"]
        lines.append(f"{'granularity':12s} {a.engine:>14s} {b.engine:>14s}   (net local edit)")
        for granularity in granularities:
            lines.append(
                f"{granularity:12s} "
                f"{a.local_net_by_granularity[granularity]:14.2f} "
                f"{b.local_net_by_granularity[granularity]:14.2f}"
            )
        lines.append(
            f"cross-engine result overlap: {self.overlap.mean:.3f} ± "
            f"{self.overlap.std:.3f} (Jaccard), {self.rbo.mean:.3f} (RBO)"
        )
        for category, stats in sorted(self.overlap_by_category.items()):
            lines.append(f"  {category:13s} {stats.mean:.3f}")
        return "\n".join(lines)


def _pairwise_overlap(
    dataset_a: SerpDataset, dataset_b: SerpDataset
) -> Tuple[MeanStd, Dict[str, MeanStd], MeanStd]:
    values: List[float] = []
    rbo_values: List[float] = []
    by_category: Dict[str, List[float]] = {}
    for record in dataset_a:
        if record.copy_index != 0:
            continue
        twin = dataset_b.get(
            record.query,
            record.granularity,
            record.location_name,
            record.day,
            record.copy_index,
        )
        if twin is None:
            continue
        value = jaccard_index(record.urls, twin.urls)
        values.append(value)
        rbo_values.append(rank_biased_overlap(record.urls, twin.urls))
        by_category.setdefault(record.category, []).append(value)
    if not values:
        raise ValueError("datasets share no probes to compare")
    return (
        summarize(values),
        {category: summarize(vals) for category, vals in by_category.items()},
        summarize(rbo_values),
    )


def compare_engines(
    base_config: StudyConfig,
    *,
    dialects: Sequence[EngineDialect] = (GOOGLE_LIKE, BINGO),
    calibrations: Optional[Sequence[EngineCalibration]] = None,
) -> CrossEngineComparison:
    """Run the study against two engines and compare them.

    Args:
        base_config: The shared design (seed, queries, locations,
            schedule).  The same seed means both engines rank the same
            synthetic web from the same vantage points.
        dialects: Exactly two engine dialects.
        calibrations: Matching ranking policies; defaults to the study
            calibration for the first engine and
            :data:`BINGO_CALIBRATION` for the second.
    """
    if len(dialects) != 2:
        raise ValueError("compare_engines needs exactly two dialects")
    if calibrations is None:
        calibrations = (base_config.calibration, BINGO_CALIBRATION)
    if len(calibrations) != 2:
        raise ValueError("need one calibration per dialect")

    datasets: List[SerpDataset] = []
    audits: List[EngineAudit] = []
    for dialect, calibration in zip(dialects, calibrations):
        config = base_config.with_overrides(dialect=dialect, calibration=calibration)
        dataset = Study(config).run()
        datasets.append(dataset)
        audits.append(EngineAudit.from_dataset(dialect.name, dataset))

    overlap, by_category, rbo = _pairwise_overlap(datasets[0], datasets[1])
    return CrossEngineComparison(
        audits=(audits[0], audits[1]),
        overlap=overlap,
        overlap_by_category=by_category,
        rbo=rbo,
    )
