"""The headless-browser model (the PhantomJS stand-in).

The paper drives the *mobile* search frontend from PhantomJS, overriding
the JavaScript Geolocation API so the page reports arbitrary GPS
coordinates (paper §2.2).  :class:`MobileBrowser` reproduces that
contract:

* a fixed **fingerprint** (the paper presented Safari 8 on iOS and kept
  every attribute identical across treatments);
* a **cookie jar** that can be cleared after every query (killing the
  engine's session personalization and location memory);
* a **GeolocationOverride** whose coordinates are handed to the search
  page, exactly like the injected JS shim;
* DNS resolution through a resolver that may be *pinned* to one
  datacenter.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.engine.frontend import SearchEngine
from repro.engine.request import ResponseStatus, SearchRequest, SearchResponse
from repro.geo.coords import LatLon
from repro.net.dns import DNSResolver
from repro.net.machines import Machine
from repro.obs.trace import NULL_TRACER
from repro.seeding import stable_hash

__all__ = ["Fingerprint", "GeolocationOverride", "Network", "MobileBrowser", "CrawlResult"]

#: The User-Agent the paper's script presented.
SAFARI_8_IOS_UA = (
    "Mozilla/5.0 (iPhone; CPU iPhone OS 8_0 like Mac OS X) "
    "AppleWebKit/600.1.3 (KHTML, like Gecko) Version/8.0 Mobile/12A4345d Safari/600.1.4"
)


@dataclass(frozen=True)
class Fingerprint:
    """The browser attributes a server could fingerprint.

    All treatments in the study share one fingerprint so that nothing
    but location differs between them (paper §2.2, "Browser State").
    """

    user_agent: str = SAFARI_8_IOS_UA
    screen_width: int = 320
    screen_height: int = 568
    timezone: str = "America/New_York"
    language: str = "en-US"


@dataclass
class GeolocationOverride:
    """The injected Geolocation-API shim.

    When ``coords`` is set, any page asking for the device position
    receives these coordinates; when unset, the page gets no GPS fix
    (and the engine falls back to IP geolocation).
    """

    coords: Optional[LatLon] = None

    def set(self, coords: LatLon) -> None:
        """Point the device at ``coords``."""
        self.coords = coords

    def clear(self) -> None:
        """Remove the override (no GPS available)."""
        self.coords = None

    def get_current_position(self) -> Optional[LatLon]:
        """What ``navigator.geolocation.getCurrentPosition`` reports."""
        return self.coords


class Network:
    """Client-side plumbing: DNS resolution + request delivery.

    One engine instance serves every datacenter frontend IP; which IP a
    request reaches is decided here by the resolver — pinned or
    rotating — exactly the degree of freedom the paper controls with a
    static DNS mapping.

    ``engine`` is anything exposing the engine's serving surface
    (``.dialect`` and ``.handle()``): a bare
    :class:`~repro.engine.frontend.SearchEngine`, or a
    :class:`~repro.serve.gateway.Gateway` fronting a replica fleet.

    Unpinned DNS rotation is keyed on the request **nonce** — already a
    deterministic function of (browser, request ordinal) — rather than
    a shared lookup counter, so which frontend a browser's n-th query
    reaches never depends on how requests from *other* browsers
    interleave.  That independence is what lets the parallel crawl
    executor shard treatments across processes with byte-identical
    results in every DNS mode.
    """

    def __init__(self, resolver: DNSResolver, engine: SearchEngine):
        self.resolver = resolver
        self.engine = engine
        self.tracer = NULL_TRACER

    def submit(
        self,
        machine: Machine,
        query_text: str,
        timestamp_minutes: float,
        *,
        gps: Optional[LatLon],
        cookie_id: Optional[str],
        user_agent: str,
        nonce: int,
        page: int = 0,
    ) -> SearchResponse:
        """Resolve the engine's search hostname and deliver one request."""
        frontend_ip = self.resolver.resolve(
            self.engine.dialect.hostname, query_id=nonce
        )
        if self.tracer.enabled:
            self.tracer.event(
                "net.dns", at=timestamp_minutes, ip=str(frontend_ip)
            )
        request = SearchRequest(
            query_text=query_text,
            client_ip=machine.ip,
            frontend_ip=frontend_ip,
            timestamp_minutes=timestamp_minutes,
            gps=gps,
            cookie_id=cookie_id,
            user_agent=user_agent,
            nonce=nonce,
            page=page,
        )
        return self.engine.handle(request)


@dataclass(frozen=True)
class CrawlResult:
    """What one scripted query saves to disk: the raw page."""

    query_text: str
    html: str
    ok: bool
    timestamp_minutes: float
    status: ResponseStatus = ResponseStatus.OK
    """The HTTP-level outcome (``ok`` is ``status is OK``, kept for
    compatibility with older call sites)."""


class MobileBrowser:
    """One headless browser instance bound to a crawl machine."""

    def __init__(
        self,
        browser_id: str,
        machine: Machine,
        network: Network,
        *,
        fingerprint: Optional[Fingerprint] = None,
        nonce_namespace: Optional[str] = None,
    ):
        self.browser_id = browser_id
        self.machine = machine
        self.network = network
        self.fingerprint = fingerprint or Fingerprint()
        # Request nonces derive from this namespace.  Distinct browsers
        # normally get distinct nonce streams (their A/B noise differs),
        # but controlled experiments can share a namespace to pin two
        # browsers to identical per-request noise draws while keeping
        # separate cookie identities.
        self._nonce_namespace = nonce_namespace or browser_id
        self.geolocation = GeolocationOverride()
        self._cookie_generation = 0
        self._cookie_id: Optional[str] = self._new_cookie_id()
        self._request_counter = 0
        self.restarts = 0

    # -- cookie jar ----------------------------------------------------------

    @property
    def cookie_id(self) -> Optional[str]:
        """The current cookie identity presented to the engine."""
        return self._cookie_id

    def clear_cookies(self) -> None:
        """Drop all cookies; the next request starts a fresh session."""
        self._cookie_generation += 1
        self._cookie_id = self._new_cookie_id()

    def disable_cookies(self) -> None:
        """Send no cookies at all."""
        self._cookie_id = None

    def _new_cookie_id(self) -> str:
        return f"{self.browser_id}#g{self._cookie_generation}"

    # -- crash recovery ------------------------------------------------------

    def restart(self) -> None:
        """Relaunch after a crash: fresh process, fresh cookie jar.

        The geolocation override survives (the crawl script re-injects
        it on launch) and the request counter does *not* reset — nonces
        are per-browser ordinals over the browser's lifetime, which
        keeps every post-restart request's identity independent of how
        many crashes preceded it.
        """
        self.restarts += 1
        self._cookie_generation += 1
        self._cookie_id = self._new_cookie_id()

    # -- checkpointing -------------------------------------------------------

    def capture_state(self) -> list:
        """JSON-able snapshot of the browser's mutable identity."""
        return [
            self._request_counter,
            self._cookie_generation,
            self._cookie_id,
            self.restarts,
        ]

    def restore_state(self, state: list) -> None:
        """Inverse of :meth:`capture_state`."""
        counter, generation, cookie_id, restarts = state
        self._request_counter = counter
        self._cookie_generation = generation
        self._cookie_id = cookie_id
        self.restarts = restarts

    # -- searching ------------------------------------------------------------

    def search(
        self, query_text: str, timestamp_minutes: float, *, page: int = 0
    ) -> CrawlResult:
        """Load the search page, run one query, save the result HTML.

        The Geolocation override (if set) is what the page reports as
        the device position.  ``page`` follows the frontend's "Next"
        pagination (0 = first page, the study's scope).
        """
        self._request_counter += 1
        nonce = stable_hash(
            "request-nonce", self._nonce_namespace, self._request_counter
        )
        response = self.network.submit(
            self.machine,
            query_text,
            timestamp_minutes,
            gps=self.geolocation.get_current_position(),
            cookie_id=self._cookie_id,
            user_agent=self.fingerprint.user_agent,
            nonce=nonce,
            page=page,
        )
        return CrawlResult(
            query_text=query_text,
            html=response.html,
            ok=response.ok,
            timestamp_minutes=timestamp_minutes,
            status=response.status,
        )
