"""Comparison metrics for pages of search results (paper §2.3).

Two metrics, exactly as the paper defines them:

* **Jaccard index** over the *sets* of result URLs — 1 means the two
  pages contain the same results (order ignored), 0 means no overlap.
* **Edit distance** over the *sequences* of result URLs — "the number
  of additions, deletions, and swaps necessary to make two lists
  identical", i.e. Damerau–Levenshtein distance (optimal string
  alignment variant, which counts a transposition as one operation).
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["jaccard_index", "damerau_levenshtein", "edit_distance"]


def jaccard_index(a: Sequence[str], b: Sequence[str]) -> float:
    """Jaccard index of the URL *sets* of two result pages.

    Two empty pages are defined as identical (1.0), matching the
    convention needed when type-filtering removes every result.

    >>> jaccard_index(["x", "y"], ["y", "x"])
    1.0
    >>> jaccard_index(["x"], ["y"])
    0.0
    """
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    union = set_a | set_b
    return len(set_a & set_b) / len(union)


def damerau_levenshtein(a: Sequence[str], b: Sequence[str]) -> int:
    """Damerau–Levenshtein distance between two result sequences.

    Optimal string alignment: insertions, deletions, substitutions, and
    adjacent transpositions each cost 1 (a transposition models two
    results swapping places on the page).

    >>> damerau_levenshtein(["a", "b", "c"], ["a", "c", "b"])
    1
    >>> damerau_levenshtein(["a", "b"], ["a", "b", "c"])
    1
    """
    len_a, len_b = len(a), len(b)
    if len_a == 0:
        return len_b
    if len_b == 0:
        return len_a
    # Classic O(n·m) DP with one extra diagonal for transpositions.
    previous2 = [0] * (len_b + 1)
    previous = list(range(len_b + 1))
    for i in range(1, len_a + 1):
        current = [i] + [0] * len_b
        for j in range(1, len_b + 1):
            substitution_cost = 0 if a[i - 1] == b[j - 1] else 1
            current[j] = min(
                previous[j] + 1,  # deletion
                current[j - 1] + 1,  # insertion
                previous[j - 1] + substitution_cost,  # substitution
            )
            if (
                i > 1
                and j > 1
                and a[i - 1] == b[j - 2]
                and a[i - 2] == b[j - 1]
            ):
                current[j] = min(current[j], previous2[j - 2] + 1)  # transposition
        previous2, previous = previous, current
    return previous[len_b]


def edit_distance(a: Sequence[str], b: Sequence[str]) -> int:
    """Alias for :func:`damerau_levenshtein` (the paper's "edit distance")."""
    return damerau_levenshtein(a, b)
